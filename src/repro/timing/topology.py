"""Interconnect topology descriptors: link enumeration, routing, fingerprints.

Every fabric the interconnect can simulate is described here in one place:

- :func:`directed_links` enumerates the *real* directed link IDs of a
  configured system — the element namespace that failure traces
  (:mod:`repro.faults.traces`) address, so a trace generated for one fabric
  can never silently target links that do not exist in another;
- :func:`ring_hops` is the ring's deterministic routing function (shortest
  direction, ties broken clockwise);
- :func:`fingerprint_fields` / :func:`topology_fingerprint` reduce a
  :class:`~repro.config.SystemConfig`'s fabric to a canonical field dict and
  a stable content hash. The hash is embedded in every generated failure
  trace; loaders refuse a trace whose fingerprint does not match the system
  it is replayed against (LinkGuardian's trace-generator contract).

Link ID conventions (stable — traces serialize them):

==========  ==============================  =======================
topology    link IDs                        count
==========  ==============================  =======================
``p2p``     ``link{i}->{j}`` for all i!=j   n*(n-1)
``bus``     ``bus``                         1
``ring``    ``ring{i}->{j}``, j = i+-1 mod  2n
``switch``  ``up{i}`` and ``down{i}``       2n
==========  ==============================  =======================
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Tuple

from ..config import (TOPOLOGY_P2P, TOPOLOGY_RING, TOPOLOGY_SHARED_BUS,
                      TOPOLOGY_SWITCH, SystemConfig)
from ..errors import ConfigError


def ring_link_id(a: int, b: int) -> str:
    """ID of the directed ring hop from GPU ``a`` to its neighbour ``b``."""
    return f"ring{a}->{b}"


def switch_uplink(gpu: int) -> str:
    """ID of ``gpu``'s uplink port into the crossbar."""
    return f"up{gpu}"


def switch_downlink(gpu: int) -> str:
    """ID of the crossbar's downlink port into ``gpu``."""
    return f"down{gpu}"


def ring_hops(src: int, dst: int, num_gpus: int) -> List[Tuple[int, int]]:
    """Directed hop sequence a ring message takes from ``src`` to ``dst``.

    Routes along the shorter direction; an exact tie (even rings, antipodal
    pair) goes clockwise so routing stays deterministic.
    """
    if src == dst:
        return []
    clockwise = (dst - src) % num_gpus
    counter = (src - dst) % num_gpus
    step = 1 if clockwise <= counter else -1
    hops: List[Tuple[int, int]] = []
    here = src
    while here != dst:
        nxt = (here + step) % num_gpus
        hops.append((here, nxt))
        here = nxt
    return hops


def directed_links(config: SystemConfig) -> Tuple[str, ...]:
    """All directed link IDs of the configured fabric, in a stable order."""
    n = config.num_gpus
    kind = config.link.topology
    if kind == TOPOLOGY_P2P:
        return tuple(f"link{i}->{j}" for i in range(n) for j in range(n)
                     if i != j)
    if kind == TOPOLOGY_SHARED_BUS:
        return ("bus",)
    if kind == TOPOLOGY_RING:
        links: List[str] = []
        for g in range(n):
            links.append(ring_link_id(g, (g + 1) % n))
            links.append(ring_link_id(g, (g - 1) % n))
        return tuple(links)
    if kind == TOPOLOGY_SWITCH:
        links = []
        for g in range(n):
            links.append(switch_uplink(g))
            links.append(switch_downlink(g))
        return tuple(links)
    raise ConfigError(f"unknown topology {kind!r}")


def transfer_links(config: SystemConfig, src: int, dst: int) -> Tuple[str, ...]:
    """Link IDs a ``src`` -> ``dst`` transfer crosses, in traversal order."""
    kind = config.link.topology
    if kind == TOPOLOGY_P2P:
        return (f"link{src}->{dst}",)
    if kind == TOPOLOGY_SHARED_BUS:
        return ("bus",)
    if kind == TOPOLOGY_RING:
        return tuple(ring_link_id(a, b)
                     for a, b in ring_hops(src, dst, config.num_gpus))
    if kind == TOPOLOGY_SWITCH:
        return (switch_uplink(src), switch_downlink(dst))
    raise ConfigError(f"unknown topology {kind!r}")


def fingerprint_fields(config: SystemConfig) -> Dict[str, object]:
    """Canonical identifying fields of the configured fabric.

    Everything that changes which links exist or how they behave is
    included; anything that does not (tile size, cost model, fault plan)
    is not — the same trace must replay against any workload on the same
    fabric.
    """
    link = config.link
    fields: Dict[str, object] = {
        "kind": link.topology,
        "num_gpus": config.num_gpus,
        "bandwidth_gb_per_s": link.bandwidth_gb_per_s,
        "latency_cycles": link.latency_cycles,
        "ideal": link.ideal,
        "num_links": len(directed_links(config)),
    }
    if link.topology == TOPOLOGY_SHARED_BUS:
        fields["bus_bandwidth_x"] = link.bus_bandwidth_x
    if link.topology == TOPOLOGY_SWITCH:
        fields["switch_latency_cycles"] = link.switch_latency_cycles
        fields["switch_oversubscription"] = link.switch_oversubscription
    return fields


def topology_fingerprint(config: SystemConfig) -> str:
    """Stable 16-hex-digit content hash of :func:`fingerprint_fields`."""
    canon = json.dumps(fingerprint_fields(config), sort_keys=True,
                       separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:16]
