"""Execution timeline recording and ASCII Gantt rendering.

Wrap any scheme run in :func:`record_timeline` to capture per-GPU stage
spans and inter-GPU transfers from the DES, then render them as an ASCII
occupancy chart — the quickest way to *see* where a scheme stalls (the
staggered composition phases, GPUpd's sequential exchange, barrier idle):

    with record_timeline() as timeline:
        result = scheme.run(trace)
    print(timeline.render(width=100))

Recording is opt-in and costs nothing when inactive: the engine and the
interconnect consult :func:`current` (a module-level slot) per span.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..stats import (STAGE_COMPOSITION, STAGE_DISTRIBUTION, STAGE_FRAGMENT,
                     STAGE_GEOMETRY, STAGE_PROJECTION, STAGE_SYNC)

#: one glyph per stage in the Gantt rendering
STAGE_GLYPHS = {
    STAGE_GEOMETRY: "G",
    STAGE_FRAGMENT: "f",
    STAGE_PROJECTION: "p",
    STAGE_DISTRIBUTION: "d",
    STAGE_COMPOSITION: "C",
    STAGE_SYNC: "s",
    "transfer": "=",
}


@dataclass(frozen=True)
class Span:
    """One contiguous activity interval on one lane."""

    lane: str          # "gpu3" or "link2->5"
    stage: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TimelineRecorder:
    """Accumulates spans; renders them as a per-lane occupancy chart."""

    spans: List[Span] = field(default_factory=list)

    def record(self, lane: str, stage: str, start: float,
               end: float) -> None:
        if end > start:
            self.spans.append(Span(lane, stage, start, end))

    # -- queries ------------------------------------------------------------

    @property
    def end_time(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def lanes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.lane, None)
        return sorted(seen, key=_lane_key)

    def busy_time(self, lane: str) -> float:
        """Total un-overlapped busy time on a lane."""
        intervals = sorted((s.start, s.end) for s in self.spans
                           if s.lane == lane)
        total, cursor = 0.0, float("-inf")
        for start, end in intervals:
            start = max(start, cursor)
            if end > start:
                total += end - start
                cursor = end
        return total

    def utilization(self, lane: str) -> float:
        horizon = self.end_time
        if horizon == 0:
            return 0.0
        return self.busy_time(lane) / horizon

    # -- rendering ------------------------------------------------------------

    def render(self, width: int = 80, lanes: Optional[List[str]] = None,
               show_legend: bool = True) -> str:
        """ASCII Gantt: one row per lane, '.' = idle, glyphs per stage.

        When multiple stages occupy the same cell, the one covering most of
        the cell wins.
        """
        horizon = self.end_time
        chosen = lanes if lanes is not None else self.lanes()
        lines = []
        if horizon <= 0 or not chosen:
            return "(empty timeline)"
        cell = horizon / width
        label_width = max(len(lane) for lane in chosen)
        for lane in chosen:
            weights: List[Dict[str, float]] = [dict() for _ in range(width)]
            for span in self.spans:
                if span.lane != lane:
                    continue
                first = int(span.start / cell)
                last = min(int(span.end / cell), width - 1)
                for index in range(first, last + 1):
                    cell_start = index * cell
                    overlap = (min(span.end, cell_start + cell)
                               - max(span.start, cell_start))
                    if overlap > 0:
                        bucket = weights[index]
                        bucket[span.stage] = bucket.get(span.stage, 0.0) \
                            + overlap
            row = "".join(
                STAGE_GLYPHS.get(max(bucket, key=bucket.get), "?")
                if bucket else "."
                for bucket in weights)
            busy = self.utilization(lane)
            lines.append(f"{lane:>{label_width}} |{row}| {100 * busy:5.1f}%")
        if show_legend:
            legend = "  ".join(f"{glyph}={stage}"
                               for stage, glyph in STAGE_GLYPHS.items())
            lines.append(f"{'':>{label_width}}  0 {'-' * (width - 14)} "
                         f"{horizon:,.0f} cycles")
            lines.append(legend)
        return "\n".join(lines)


def _lane_key(lane: str):
    digits = "".join(ch for ch in lane if ch.isdigit())
    return (lane.rstrip("0123456789->"), int(digits) if digits else -1)


_ACTIVE: List[TimelineRecorder] = []


def current() -> Optional[TimelineRecorder]:
    """The innermost active recorder, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextlib.contextmanager
def record_timeline() -> Iterator[TimelineRecorder]:
    """Activate a recorder for the dynamic extent of the block."""
    recorder = TimelineRecorder()
    _ACTIVE.append(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.pop()
