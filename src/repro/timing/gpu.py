"""Per-GPU execution engine: a two-stage (geometry -> fragment) pipeline.

Mirrors the macro-structure of Fig 1(c): the geometry front-end (PolyMorph
engines + vertex-shading SMs) feeds rasterization/fragment back-end work
through a queue, so geometry of draw *i+1* overlaps fragment processing of
draw *i* — the overlap that makes the geometry stage the frame-rate limiter
in geometry-bound workloads (Fig 9's observation).

The geometry stage optionally reports triangle-completion progress in chunks
of ``update_interval`` triangles; this feeds CHOPIN's draw-command scheduler
statistics (Fig 10, sensitivity in Fig 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from ..sim import Event, Simulator, Store
from ..stats import (STAGE_FRAGMENT, STAGE_GEOMETRY, GPUStats)
from .costs import CostModel
from . import timeline


@dataclass
class DrawWork:
    """One draw command's timed work on one GPU."""

    draw_id: int
    triangles: int
    geometry_cycles: float
    fragment_cycles: float
    fragments: int = 0
    geometry_stage: str = STAGE_GEOMETRY
    fragment_stage: str = STAGE_FRAGMENT


class GPUEngine:
    """Geometry front-end plus pipelined fragment back-end for one GPU."""

    def __init__(self, sim: Simulator, gpu_id: int, costs: CostModel,
                 stats: GPUStats, update_interval: int = 1,
                 on_triangles: Optional[Callable[[int, int], None]] = None,
                 ) -> None:
        self.sim = sim
        self.gpu_id = gpu_id
        self.costs = costs
        self.stats = stats
        self.update_interval = max(1, update_interval)
        self.on_triangles = on_triangles
        self._queue: Store = Store(sim, name=f"gpu{gpu_id}-frag")
        self._in_flight = 0
        self._drain_waiters: List[Event] = []
        sim.process(self._fragment_loop(), name=f"gpu{gpu_id}-fragment",
                    daemon=True)

    # -- geometry front-end (runs inside the caller's process) --------------

    def geometry(self, work: DrawWork) -> Generator:
        """Process fragment: run one draw's geometry stage, then enqueue its
        fragment work. Reports triangle progress in update-interval chunks."""
        triangles = work.triangles
        span_start = self.sim.now
        if triangles > 0 and work.geometry_cycles > 0:
            per_tri = work.geometry_cycles / triangles
            reported = 0
            while reported < triangles:
                chunk = min(self.update_interval, triangles - reported)
                yield self.sim.timeout(chunk * per_tri)
                reported += chunk
                if self.on_triangles is not None:
                    self.on_triangles(self.gpu_id, chunk)
        elif triangles > 0 and self.on_triangles is not None:
            self.on_triangles(self.gpu_id, triangles)
        recorder = timeline.current()
        if recorder is not None:
            recorder.record(f"gpu{self.gpu_id}", work.geometry_stage,
                            span_start, self.sim.now)
        self.stats.stage_cycles[work.geometry_stage] += work.geometry_cycles
        self.stats.triangles_processed += triangles
        self.stats.draws_executed += 1
        self._in_flight += 1
        self._queue.put(work)

    def run_draws(self, works: List[DrawWork]) -> Generator:
        """Process fragment: run a sequence of draws' geometry back-to-back."""
        for work in works:
            yield from self.geometry(work)

    # -- fragment back-end ---------------------------------------------------

    def _fragment_loop(self) -> Generator:
        while True:
            work = yield self._queue.get()
            span_start = self.sim.now
            if work.fragment_cycles > 0:
                yield self.sim.timeout(work.fragment_cycles)
                recorder = timeline.current()
                if recorder is not None:
                    recorder.record(f"gpu{self.gpu_id}",
                                    work.fragment_stage, span_start,
                                    self.sim.now)
            self.stats.stage_cycles[work.fragment_stage] += work.fragment_cycles
            self._in_flight -= 1
            if self._in_flight == 0 and len(self._queue) == 0:
                waiters, self._drain_waiters = self._drain_waiters, []
                for event in waiters:
                    event.succeed()

    def drain(self) -> Event:
        """Event that fires when all submitted work has left the pipeline."""
        event = Event(self.sim)
        if self._in_flight == 0 and len(self._queue) == 0:
            event.succeed()
        else:
            self._drain_waiters.append(event)
        return event

    def busy_work(self, cycles: float, stage: str) -> Generator:
        """Process fragment: occupy this GPU for non-draw work (composition,
        projection, etc.), attributing the cycles to ``stage``."""
        if cycles > 0:
            span_start = self.sim.now
            yield self.sim.timeout(cycles)
            recorder = timeline.current()
            if recorder is not None:
                recorder.record(f"gpu{self.gpu_id}", stage, span_start,
                                self.sim.now)
        self.stats.stage_cycles[stage] += cycles
