"""Cycle-level timing models: costs, GPU pipeline engine, interconnect,
timeline recording."""

from .costs import CostModel
from .gpu import DrawWork, GPUEngine
from .interconnect import Interconnect
from .timeline import Span, TimelineRecorder, record_timeline

__all__ = ["CostModel", "DrawWork", "GPUEngine", "Interconnect", "Span",
           "TimelineRecorder", "record_timeline"]
