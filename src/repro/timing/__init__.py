"""Cycle-level timing models: costs, GPU pipeline engine, interconnect,
topology descriptors, timeline recording."""

from .costs import CostModel
from .gpu import DrawWork, GPUEngine
from .interconnect import Interconnect
from .timeline import Span, TimelineRecorder, record_timeline
from .topology import (directed_links, fingerprint_fields, ring_hops,
                       topology_fingerprint, transfer_links)

__all__ = ["CostModel", "DrawWork", "GPUEngine", "Interconnect", "Span",
           "TimelineRecorder", "directed_links", "fingerprint_fields",
           "record_timeline", "ring_hops", "topology_fingerprint",
           "transfer_links"]
