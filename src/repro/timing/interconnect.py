"""Inter-GPU interconnect timing model.

Point-to-point links between every GPU pair (the NVLink/NVSwitch topology of
NVIDIA DGX, §V), modeled with three contention points:

- a per-GPU **egress port** — a GPU streams one outbound message at a time;
- a per-GPU **ingress port** — a GPU drains one inbound message at a time;
- the directed link itself (implicit: with single egress/ingress ports the
  pairwise links never contend beyond the ports).

A transfer claims the sender's egress, propagates head latency, then queues
FIFO at the receiver's ingress. An optional ``gate`` event models the naive
direct-send failure mode (§IV-E): the receiver does not drain until it has
finished rendering, so queued messages pin their senders' egress ports —
exactly the congestion the image composition scheduler avoids.

With ``LinkConfig.ideal`` transfers are free (but traffic is still counted),
for the upper-bound variants of Fig 5.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..config import SystemConfig
from ..errors import SimulationError
from ..sim import Event, Resource, Simulator
from ..stats import RunStats
from . import timeline


class Interconnect:
    """DES model of the all-to-all inter-GPU fabric."""

    def __init__(self, sim: Simulator, config: SystemConfig,
                 stats: RunStats) -> None:
        self.sim = sim
        self.config = config
        self.stats = stats
        n = config.num_gpus
        self.egress = [Resource(sim, name=f"egress{g}") for g in range(n)]
        self.ingress = [Resource(sim, name=f"ingress{g}") for g in range(n)]
        self._bytes_per_cycle = config.link.bandwidth_bytes_per_cycle(
            config.gpu.frequency_hz)
        # Shared-bus ablation: all transfers serialize through one medium
        # of bus_bandwidth_x links' worth of aggregate bandwidth.
        from ..config import TOPOLOGY_SHARED_BUS
        self._bus: Optional[Resource] = None
        if (config.link.topology == TOPOLOGY_SHARED_BUS
                and not config.link.ideal):
            self._bus = Resource(sim, name="bus")
            self._bytes_per_cycle *= config.link.bus_bandwidth_x

    def occupancy_cycles(self, num_bytes: float) -> float:
        if self.config.link.ideal:
            return 0.0
        return num_bytes / self._bytes_per_cycle

    def transfer(self, src: int, dst: int, num_bytes: float, category: str,
                 gate: Optional[Event] = None,
                 receive_cycles: float = 0.0,
                 ports_released: Optional[Event] = None) -> Generator:
        """Process: move ``num_bytes`` from ``src`` to ``dst``.

        Timeline: claim the sender's egress and the receiver's ingress
        (FIFO), stream for ``num_bytes / bandwidth`` cycles, release both
        ports, then pay the head latency (the last byte propagating) and any
        ``receive_cycles`` of post-receive work (e.g., ROP composition) off
        the ports — so back-to-back transfers pipeline their latencies.

        ``gate`` models the naive direct-send failure mode (§IV-E): while
        the gate is pending the message sits in the network with both ports
        pinned — the congestion the composition scheduler avoids.

        ``ports_released`` (if given) fires the moment both ports free up,
        letting a scheduler start the next pairing while this message's tail
        is still in flight.
        """
        if src == dst:
            raise SimulationError("transfer to self")
        self.stats.add_traffic(src, category, num_bytes)
        if self.config.link.ideal:
            if ports_released is not None:
                ports_released.succeed()
            if receive_cycles:
                yield self.sim.timeout(receive_cycles)
            return

        egress_req = self.egress[src].request()
        yield egress_req
        try:
            if gate is not None and not gate.processed:
                # Receiver not ready: the message parks in the network,
                # pinning the sender's egress — everything queued behind it
                # stalls (the naive direct-send congestion of §IV-E). The
                # receiver's ingress is only claimed once the gate opens, so
                # ungated traffic to the same receiver still drains.
                yield gate
            ingress_req = self.ingress[dst].request()
            yield ingress_req
            bus_req = None
            try:
                if self._bus is not None:
                    bus_req = self._bus.request()
                    yield bus_req
                span_start = self.sim.now
                yield self.sim.timeout(self.occupancy_cycles(num_bytes))
                recorder = timeline.current()
                if recorder is not None:
                    recorder.record(f"link{src}->{dst}", "transfer",
                                    span_start, self.sim.now)
            finally:
                if bus_req is not None:
                    self._bus.release(bus_req)
                self.ingress[dst].release(ingress_req)
        finally:
            self.egress[src].release(egress_req)
            if ports_released is not None and not ports_released.triggered:
                ports_released.succeed()
        yield self.sim.timeout(self.config.link.latency_cycles)
        if receive_cycles:
            receive_start = self.sim.now
            yield self.sim.timeout(receive_cycles)
            recorder = timeline.current()
            if recorder is not None:
                recorder.record(f"gpu{dst}", "composition",
                                receive_start, self.sim.now)

    def broadcast(self, src: int, num_bytes_each: float,
                  category: str) -> Generator:
        """Process: send ``num_bytes_each`` from ``src`` to every other GPU.

        Messages go out back-to-back through the single egress port (their
        latencies overlap); completes when the last is delivered.
        """
        done = []
        for dst in range(self.config.num_gpus):
            if dst == src:
                continue
            done.append(self.sim.process(
                self.transfer(src, dst, num_bytes_each, category)))
        if done:
            yield self.sim.all_of(done)
