"""Inter-GPU interconnect timing model.

The default fabric is point-to-point links between every GPU pair (the
NVLink/NVSwitch topology of NVIDIA DGX, §V), modeled with three contention
points:

- a per-GPU **egress port** — a GPU streams one outbound message at a time;
- a per-GPU **ingress port** — a GPU drains one inbound message at a time;
- the directed link itself (implicit: with single egress/ingress ports the
  pairwise links never contend beyond the ports).

``LinkConfig.topology`` swaps in three alternative fabrics (see
:mod:`repro.timing.topology` for the link namespace and routing):

- ``bus`` — every transfer serializes through one shared medium of
  ``bus_bandwidth_x`` links' worth of aggregate bandwidth;
- ``ring`` — messages hop store-and-forward along the shortest ring
  direction, claiming each directed hop link in turn (hop contention) and
  paying the head latency once per hop;
- ``switch`` — a single crossbar: the per-GPU egress/ingress ports are the
  switch ports, transfers pay two wire hops plus
  ``switch_latency_cycles`` of traversal, and a backplane resource admits
  ``num_gpus / switch_oversubscription`` simultaneous streams.

A transfer claims the sender's egress, propagates head latency, then queues
FIFO at the receiver's ingress. An optional ``gate`` event models the naive
direct-send failure mode (§IV-E): the receiver does not drain until it has
finished rendering, so queued messages pin their senders' egress ports —
exactly the congestion the image composition scheduler avoids.

With ``LinkConfig.ideal`` transfers are free (but traffic is still counted),
for the upper-bound variants of Fig 5.

Fault injection (``SystemConfig.faults``): each streamed message may be
dropped (detected by acknowledgement timeout) or corrupted (detected by CRC
at the receiver); the link retransmits with exponential backoff up to the
plan's retry budget, holding its ports while it does — link-level
retransmission occupies the channel, which is why transient errors hurt
more than their raw probability suggests. Degraded-bandwidth windows scale
the streaming rate of any transfer that starts inside them. All retry
counters land in :class:`~repro.stats.RunStats`.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, Optional, Tuple

from ..analysis.sanitizer import ACCESS_WRITE
from ..config import SystemConfig
from ..errors import FaultError, SimulationError
from ..faults.plan import (OUTCOME_CORRUPT, OUTCOME_DROP, OUTCOME_OK,
                           FaultInjector, FaultPlan)
from ..sim import Event, Resource, Simulator
from ..stats import RunStats
from . import timeline

#: sentinel: take the fault plan from ``config.faults``
_FROM_CONFIG = object()


class Interconnect:
    """DES model of the all-to-all inter-GPU fabric."""

    def __init__(self, sim: Simulator, config: SystemConfig,
                 stats: RunStats,
                 fault_plan: Optional[FaultPlan] = _FROM_CONFIG) -> None:
        self.sim = sim
        self.config = config
        self.stats = stats
        n = config.num_gpus
        self.egress = [Resource(sim, name=f"egress{g}") for g in range(n)]
        self.ingress = [Resource(sim, name=f"ingress{g}") for g in range(n)]
        self._bytes_per_cycle = config.link.bandwidth_bytes_per_cycle(
            config.gpu.frequency_hz)
        if fault_plan is _FROM_CONFIG:
            fault_plan = config.faults
        self.fault_plan: Optional[FaultPlan] = fault_plan
        self._injector: Optional[FaultInjector] = None
        if fault_plan is not None and fault_plan.affects_links:
            self._injector = FaultInjector(fault_plan)
        # Shared-bus ablation: all transfers serialize through one medium
        # of bus_bandwidth_x links' worth of aggregate bandwidth.
        from ..config import (TOPOLOGY_RING, TOPOLOGY_SHARED_BUS,
                              TOPOLOGY_SWITCH)
        from .topology import ring_link_id
        self._bus: Optional[Resource] = None
        if (config.link.topology == TOPOLOGY_SHARED_BUS
                and not config.link.ideal):
            self._bus = Resource(sim, name="bus")
            self._bytes_per_cycle *= config.link.bus_bandwidth_x
        # Ring: one Resource per directed hop link; messages claim the hops
        # of their (shortest-direction) path one at a time.
        self._ring: Dict[Tuple[int, int], Resource] = {}
        if config.link.topology == TOPOLOGY_RING and not config.link.ideal:
            for g in range(n):
                for nb in ((g + 1) % n, (g - 1) % n):
                    self._ring[(g, nb)] = Resource(
                        sim, name=ring_link_id(g, nb))
        # Switch: the egress/ingress ports are the crossbar ports; the
        # backplane bounds simultaneous streams when oversubscribed.
        self._backplane: Optional[Resource] = None
        if config.link.topology == TOPOLOGY_SWITCH and not config.link.ideal:
            capacity = max(1, round(n / config.link.switch_oversubscription))
            if capacity < n:
                self._backplane = Resource(sim, capacity=capacity,
                                           name="backplane")

    def occupancy_cycles(self, num_bytes: float,
                         at: Optional[float] = None) -> float:
        """Cycles to stream ``num_bytes``; ``at`` applies any degraded-
        bandwidth window in effect at that start cycle."""
        if self.config.link.ideal:
            return 0.0
        rate = self._bytes_per_cycle
        if at is not None and self._injector is not None:
            rate *= self.fault_plan.bandwidth_factor_at(at)
        return num_bytes / rate

    def head_latency_cycles(self, src: int, dst: int) -> float:
        """Head (propagation) latency of one ``src`` -> ``dst`` message.

        p2p/bus pay the link latency once; the ring pays it per
        store-and-forward hop; the switch pays two wire hops plus the
        crossbar traversal.
        """
        link = self.config.link
        if link.ideal:
            return 0.0
        from ..config import TOPOLOGY_RING, TOPOLOGY_SWITCH
        if link.topology == TOPOLOGY_RING:
            from .topology import ring_hops
            return link.latency_cycles * len(
                ring_hops(src, dst, self.config.num_gpus))
        if link.topology == TOPOLOGY_SWITCH:
            return 2.0 * link.latency_cycles + link.switch_latency_cycles
        return float(link.latency_cycles)

    def transfer(self, src: int, dst: int, num_bytes: float, category: str,
                 gate: Optional[Event] = None,
                 receive_cycles: float = 0.0,
                 ports_released: Optional[Event] = None) -> Generator:
        """Process: move ``num_bytes`` from ``src`` to ``dst``.

        Timeline: claim the sender's egress and the receiver's ingress
        (FIFO), stream for ``num_bytes / bandwidth`` cycles, release both
        ports, then pay the head latency (the last byte propagating) and any
        ``receive_cycles`` of post-receive work (e.g., ROP composition) off
        the ports — so back-to-back transfers pipeline their latencies.

        ``gate`` models the naive direct-send failure mode (§IV-E): while
        the gate is pending the message sits in the network with both ports
        pinned — the congestion the composition scheduler avoids.

        ``ports_released`` (if given) fires the moment both ports free up,
        letting a scheduler start the next pairing while this message's tail
        is still in flight.

        Injected link errors retransmit here with exponential backoff; the
        ports (and shared bus, if any) stay claimed across retries. All
        port claims are released — or withdrawn, if still queued — even
        when the owning process dies mid-transfer (``Process.kill``), so a
        failed transfer can never pin a port forever.
        """
        if src == dst:
            raise SimulationError("transfer to self")
        self.stats.add_traffic(src, category, num_bytes)
        if self.config.link.ideal:
            if ports_released is not None:
                ports_released.succeed()
            if receive_cycles:
                yield self.sim.timeout(receive_cycles)
            return

        egress_req = self.egress[src].request()
        ingress_req = None
        bus_req = None
        backplane_req = None
        try:
            yield egress_req
            if gate is not None and not gate.processed:
                # Receiver not ready: the message parks in the network,
                # pinning the sender's egress — everything queued behind it
                # stalls (the naive direct-send congestion of §IV-E). The
                # receiver's ingress is only claimed once the gate opens, so
                # ungated traffic to the same receiver still drains.
                yield gate
            ingress_req = self.ingress[dst].request()
            yield ingress_req
            if self._bus is not None:
                bus_req = self._bus.request()
                yield bus_req
            if self._backplane is not None:
                backplane_req = self._backplane.request()
                yield backplane_req
            yield from self._stream_with_retries(src, dst, num_bytes)
            if num_bytes > 0:
                # The payload has landed in the receiver's framebuffer
                # region. With real links, the ingress FIFO plus a nonzero
                # streaming occupancy serializes deliveries to one GPU, so
                # this only flags genuinely overlapping writes (the ideal-
                # link fast path above records nothing: every transfer
                # lands at the same instant by design).
                self.sim.record_access(f"fb:gpu{dst}", ACCESS_WRITE)
        finally:
            if backplane_req is not None:
                self._backplane.withdraw(backplane_req)
            if bus_req is not None:
                self._bus.withdraw(bus_req)
            if ingress_req is not None:
                self.ingress[dst].withdraw(ingress_req)
            self.egress[src].withdraw(egress_req)
            if ports_released is not None and not ports_released.triggered:
                ports_released.succeed()
        yield self.sim.timeout(self.head_latency_cycles(src, dst))
        if receive_cycles:
            receive_start = self.sim.now
            yield self.sim.timeout(receive_cycles)
            recorder = timeline.current()
            if recorder is not None:
                recorder.record(f"gpu{dst}", "composition",
                                receive_start, self.sim.now)

    def _stream_once(self, src: int, dst: int,
                     num_bytes: float) -> Generator:
        """Stream the payload across the fabric once (no error handling).

        On the ring the message traverses its hop links store-and-forward,
        claiming each directed hop resource in turn — two messages crossing
        the same hop serialize there, which is exactly where ring fabrics
        congest. Hop claims are withdrawn even if the owning process dies
        mid-hop. Other fabrics stream in one span (the bus/backplane
        resources are claimed by the caller).
        """
        if self._ring:
            for a, b in self._ring_path(src, dst):
                hop = self._ring[(a, b)]
                hop_req = hop.request()
                try:
                    yield hop_req
                    hop_start = self.sim.now
                    yield self.sim.timeout(
                        self.occupancy_cycles(num_bytes, at=hop_start))
                    recorder = timeline.current()
                    if recorder is not None:
                        recorder.record(hop.name, "transfer",
                                        hop_start, self.sim.now)
                finally:
                    hop.withdraw(hop_req)
            return
        span_start = self.sim.now
        yield self.sim.timeout(self.occupancy_cycles(num_bytes,
                                                     at=span_start))
        recorder = timeline.current()
        if recorder is not None:
            recorder.record(f"link{src}->{dst}", "transfer",
                            span_start, self.sim.now)

    def _ring_path(self, src: int, dst: int):
        from .topology import ring_hops
        return ring_hops(src, dst, self.config.num_gpus)

    def _stream_with_retries(self, src: int, dst: int,
                             num_bytes: float) -> Generator:
        """Stream the payload, retransmitting on injected link errors."""
        attempt = 0
        while True:
            yield from self._stream_once(src, dst, num_bytes)
            if self._injector is None:
                return
            outcome = self._injector.transfer_outcome(src, dst)
            if outcome == OUTCOME_OK:
                return
            attempt += 1
            plan = self.fault_plan
            self.stats.link_retries += 1
            self.stats.retransmitted_bytes += num_bytes
            if outcome == OUTCOME_DROP:
                self.stats.dropped_transfers += 1
            else:
                self.stats.corrupted_transfers += 1
            if attempt > plan.retry_budget:
                raise FaultError(
                    f"link {src}->{dst} exhausted its retry budget of "
                    f"{plan.retry_budget} at cycle {self.sim.now} "
                    f"({self.stats.link_retries} total retries this run)")
            detect = (plan.drop_detection_cycles
                      if outcome == OUTCOME_DROP else 0.0)
            backoff = self._injector.backoff_cycles(attempt)
            self.stats.backoff_cycles += detect + backoff
            yield self.sim.timeout(detect + backoff)

    def broadcast(self, src: int, num_bytes_each: float, category: str,
                  targets: Optional[Iterable[int]] = None) -> Generator:
        """Process: send ``num_bytes_each`` from ``src`` to every other GPU.

        Messages go out back-to-back through the single egress port (their
        latencies overlap); completes when the last is delivered.
        ``targets`` restricts the recipients (degraded mode broadcasts only
        to surviving GPUs).
        """
        if targets is None:
            targets = range(self.config.num_gpus)
        done = []
        for dst in targets:
            if dst == src:
                continue
            done.append(self.sim.process(
                self.transfer(src, dst, num_bytes_each, category)))
        if done:
            yield self.sim.all_of(done)
