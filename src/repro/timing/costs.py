"""Cycle-cost model: functional counts -> pipeline-stage cycles.

Maps the paper's Table II resources onto stage throughputs:

- the **geometry** stage runs a draw's vertex shading/tessellation across the
  GPU's SMs: ``triangles * vertex_cost / num_sms`` cycles;
- the **fragment** stage (rasterization + shading + ROP) costs
  ``(triangles * raster_cost + fragments * pixel_cost) / num_rops`` cycles;
- GPUpd's **projection** phase is a position-only transform, a fixed fraction
  of full vertex shading (it skips attribute shading and tessellation);
- **composition** costs ``pixels * compose_cost / num_rops`` on the receiving
  GPU (the ROPs read, blend, and write each composed pixel, §IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GPUConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Stage-cycle cost model for one GPU."""

    gpu: GPUConfig
    raster_cost_per_triangle: float = 1.0      # unit: cycles/triangle
    compose_cost_per_pixel: float = 2.0        # unit: cycles/pixel
    #: projection does position transform only (GPUpd phase 1)
    projection_fraction: float = 0.3           # unit: 1
    #: driver cycles to issue one draw command to a GPU
    draw_issue_cost: float = 50.0              # unit: cycles/draw
    #: off-chip bytes touched per shaded fragment (texture reads + colour/
    #: depth read-modify-write), after L2 filtering
    fragment_memory_bytes: float = 24.0        # unit: bytes/fragment
    #: fraction of fragment memory traffic absorbed by the L2 (Table II's
    #: 6 MB cache); the remainder contends for DRAM bandwidth
    l2_hit_rate: float = 0.7                   # unit: 1
    #: enable the DRAM roofline on the fragment stage
    model_memory: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.projection_fraction <= 1.0:
            raise ConfigError("projection fraction must be in (0, 1]")
        if not 0.0 <= self.l2_hit_rate <= 1.0:
            raise ConfigError("L2 hit rate must be in [0, 1]")
        if self.fragment_memory_bytes < 0:
            raise ConfigError("fragment memory bytes cannot be negative")

    def geometry_cycles(self, triangles: int, vertex_cost: float) -> float:
        return triangles * vertex_cost / self.gpu.num_sms

    def dram_bytes_per_cycle(self) -> float:
        """Per-GPU DRAM bandwidth at the GPU clock (Table II: 2 TB/s for
        the whole 8-GPU system)."""
        return (self.gpu.dram_bandwidth_bytes_per_s
                / self.gpu.frequency_hz)

    def fragment_memory_cycles(self, fragments_shaded: int) -> float:
        """Cycles the fragment stage needs just to move its DRAM traffic."""
        if not self.model_memory:
            return 0.0
        miss_bytes = (fragments_shaded * self.fragment_memory_bytes
                      * (1.0 - self.l2_hit_rate))
        return miss_bytes / self.dram_bytes_per_cycle()

    def fragment_cycles(self, triangles: int, fragments_shaded: int,
                        pixel_cost: float) -> float:
        """Fragment-stage cycles: compute, rooflined by DRAM bandwidth.

        Compute and memory streams overlap in the ROPs/SMs, so the stage
        takes the *max* of the two (a classic roofline), not their sum.
        """
        raster = triangles * self.raster_cost_per_triangle
        shade = fragments_shaded * pixel_cost
        compute = (raster + shade) / self.gpu.num_rops
        return max(compute, self.fragment_memory_cycles(fragments_shaded))

    def projection_cycles(self, triangles: int, vertex_cost: float) -> float:
        return (triangles * vertex_cost * self.projection_fraction
                / self.gpu.num_sms)

    def compose_cycles(self, pixels: int) -> float:
        return pixels * self.compose_cost_per_pixel / self.gpu.num_rops
