"""Image-validation utilities: checksums, PSNR, cross-scheme verification.

The reproduction's central functional invariant — every SFR scheme renders
the single-GPU reference image — is enforced here in a reusable form:

    report = validate_schemes(trace, setup)
    assert report.all_identical

``image_checksum`` gives a stable fingerprint of the 8-bit quantized frame
(useful as a golden value in regression tests), and ``psnr`` quantifies any
deviation in dB when exact equality is not expected (e.g., across blending
orders that differ only in float rounding).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

from .framebuffer.framebuffer import Framebuffer
from .harness.runner import MAIN_SCHEMES, Setup, run
from .sfr.base import render_reference_image
from .traces.trace import Trace


def psnr(reference: Framebuffer, candidate: Framebuffer,
         peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    if reference.color.shape != candidate.color.shape:
        raise ValueError("image shapes differ")
    mse = float(np.mean((reference.color - candidate.color) ** 2))
    if mse == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / mse)


def image_checksum(image: Framebuffer) -> str:
    """SHA-256 of the 8-bit quantized RGBA frame (stable fingerprint)."""
    return hashlib.sha256(image.to_srgb_bytes().tobytes()).hexdigest()


@dataclass
class SchemeValidation:
    """One scheme's functional comparison against the reference."""

    scheme: str
    checksum: str
    psnr_db: float
    max_error: float

    @property
    def identical(self) -> bool:
        """Identical after 8-bit quantization (sub-quantum float noise ok)."""
        return self.max_error < 1.0 / 255.0


@dataclass
class ValidationReport:
    """Cross-scheme functional validation for one trace."""

    trace_name: str
    reference_checksum: str
    schemes: List[SchemeValidation] = field(default_factory=list)

    @property
    def all_identical(self) -> bool:
        return all(entry.identical for entry in self.schemes)

    def by_scheme(self) -> Dict[str, SchemeValidation]:
        return {entry.scheme: entry for entry in self.schemes}

    def summary(self) -> str:
        lines = [f"validation: {self.trace_name} "
                 f"(reference {self.reference_checksum[:12]}...)"]
        for entry in self.schemes:
            verdict = "OK " if entry.identical else "DIFF"
            psnr_text = ("inf" if math.isinf(entry.psnr_db)
                         else f"{entry.psnr_db:.1f}")
            lines.append(f"  [{verdict}] {entry.scheme:<14} "
                         f"psnr={psnr_text:>6} dB  "
                         f"max_err={entry.max_error:.2e}")
        return "\n".join(lines)


def validate_schemes(trace: Trace, setup: Setup,
                     schemes: Iterable[str] = ("duplication",)
                     + tuple(MAIN_SCHEMES)) -> ValidationReport:
    """Run every scheme and compare its final image to the reference."""
    reference = render_reference_image(trace, setup.config)
    report = ValidationReport(trace_name=trace.name,
                              reference_checksum=image_checksum(reference))
    for scheme in schemes:
        result = run(scheme, trace, setup)
        report.schemes.append(SchemeValidation(
            scheme=scheme,
            checksum=image_checksum(result.image),
            psnr_db=psnr(reference, result.image),
            max_error=float(np.abs(reference.color
                                   - result.image.color).max()),
        ))
    return report
