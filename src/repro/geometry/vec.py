"""Small vector/matrix toolkit for the graphics pipeline.

Conventions (matching OpenGL/DirectX math as used in the paper's pipeline
description, Fig 1):

- column-vector convention: a point ``p`` transforms as ``M @ p``;
- right-handed view space, camera looking down -Z;
- clip space is the standard [-w, w]^3 cube; NDC depth maps to [0, 1] in the
  viewport transform (DirectX style), so *smaller depth is closer*.

Everything is float32 NumPy; helpers accept Python sequences.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

Array = np.ndarray


def vec3(x: float, y: float, z: float) -> Array:
    return np.array([x, y, z], dtype=np.float32)


def vec4(x: float, y: float, z: float, w: float = 1.0) -> Array:
    return np.array([x, y, z, w], dtype=np.float32)


def normalize(v: Array) -> Array:
    n = float(np.linalg.norm(v))
    if n == 0.0:
        raise ValueError("cannot normalize a zero vector")
    return (v / n).astype(np.float32)


def identity() -> Array:
    return np.eye(4, dtype=np.float32)


def translate(t: Sequence[float]) -> Array:
    m = identity()
    m[:3, 3] = t
    return m


def scale(s: Sequence[float]) -> Array:
    m = identity()
    m[0, 0], m[1, 1], m[2, 2] = s
    return m


def rotate_x(angle: float) -> Array:
    c, s = math.cos(angle), math.sin(angle)
    m = identity()
    m[1, 1], m[1, 2] = c, -s
    m[2, 1], m[2, 2] = s, c
    return m


def rotate_y(angle: float) -> Array:
    c, s = math.cos(angle), math.sin(angle)
    m = identity()
    m[0, 0], m[0, 2] = c, s
    m[2, 0], m[2, 2] = -s, c
    return m


def rotate_z(angle: float) -> Array:
    c, s = math.cos(angle), math.sin(angle)
    m = identity()
    m[0, 0], m[0, 1] = c, -s
    m[1, 0], m[1, 1] = s, c
    return m


def look_at(eye: Sequence[float], target: Sequence[float],
            up: Sequence[float] = (0.0, 1.0, 0.0)) -> Array:
    """Right-handed view matrix: camera at ``eye`` looking at ``target``."""
    eye_v = np.asarray(eye, dtype=np.float32)
    forward = normalize(np.asarray(target, dtype=np.float32) - eye_v)
    right = normalize(np.cross(forward, np.asarray(up, dtype=np.float32)))
    true_up = np.cross(right, forward)
    m = identity()
    m[0, :3] = right
    m[1, :3] = true_up
    m[2, :3] = -forward
    m[:3, 3] = -m[:3, :3] @ eye_v
    return m


def perspective(fov_y: float, aspect: float, near: float, far: float) -> Array:
    """Perspective projection; ``fov_y`` in radians, maps depth to [0, 1]."""
    if near <= 0 or far <= near:
        raise ValueError("require 0 < near < far")
    f = 1.0 / math.tan(fov_y / 2.0)
    m = np.zeros((4, 4), dtype=np.float32)
    m[0, 0] = f / aspect
    m[1, 1] = f
    m[2, 2] = far / (near - far)
    m[2, 3] = near * far / (near - far)
    m[3, 2] = -1.0
    return m


def orthographic(left: float, right: float, bottom: float, top: float,
                 near: float, far: float) -> Array:
    """Orthographic projection mapping the box to clip space, depth to [0,1]."""
    m = identity()
    m[0, 0] = 2.0 / (right - left)
    m[1, 1] = 2.0 / (top - bottom)
    m[2, 2] = 1.0 / (near - far)
    m[0, 3] = -(right + left) / (right - left)
    m[1, 3] = -(top + bottom) / (top - bottom)
    m[2, 3] = near / (near - far)
    return m
