"""Primitive and draw-command data model.

A :class:`DrawCommand` is the unit of work the paper's schedulers distribute:
a batch of triangles sharing one :class:`RenderState` (render target, depth
buffer, depth function, blend operator, transparency). A frame is a list of
draw commands; CHOPIN groups consecutive commands into composition groups at
state-change boundaries (paper section IV-A, events 1-5).

Triangle data is stored vectorized: ``positions`` has shape ``(T, 3, 3)``
(T triangles x 3 vertices x xyz) and ``colors`` has shape ``(T, 3, 4)``
(per-vertex RGBA, premultiplied-alpha for transparent draws).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import PipelineError


class DepthFunc(enum.Enum):
    """Fragment occlusion test functions (paper event 4 boundaries)."""

    NEVER = "never"
    LESS = "less"
    LEQUAL = "lequal"
    EQUAL = "equal"
    GEQUAL = "gequal"
    GREATER = "greater"
    NOTEQUAL = "notequal"
    ALWAYS = "always"


class BlendOp(enum.Enum):
    """Pixel composition operators (paper section II-D).

    All are associative; none except MIN/MAX-style depth selection are
    commutative, which is exactly the property CHOPIN exploits (section II-D).
    """

    REPLACE = "replace"   # opaque write (implicit depth-select composition)
    OVER = "over"         # Porter-Duff over, premultiplied alpha
    ADDITIVE = "add"
    MULTIPLY = "mul"


@dataclass(frozen=True)
class RenderState:
    """Pipeline state attached to a draw command.

    The five composition-group boundary events of section IV-A are all
    derivable from consecutive pairs of these states (plus frame swaps).
    """

    render_target: int = 0
    depth_buffer: int = 0
    depth_write: bool = True
    depth_func: DepthFunc = DepthFunc.LESS
    blend_op: BlendOp = BlendOp.REPLACE
    #: whether the early depth/stencil test may run before the pixel shader
    #: (disabled when the shader discards fragments or writes depth, Fig 15)
    early_z: bool = True

    @property
    def transparent(self) -> bool:
        """Transparent draws blend rather than overwrite."""
        return self.blend_op is not BlendOp.REPLACE


@dataclass
class DrawCommand:
    """A batch of triangles with uniform state and shader costs.

    ``vertex_cost`` and ``pixel_cost`` model the per-triangle geometry-stage
    and per-fragment shading cost in cycles on a single SM/ROP lane; real
    draws vary widely in both (paper Fig 9), so the trace generator draws
    them from per-draw distributions.
    """

    draw_id: int
    positions: np.ndarray          # (T, 3, 3) float32, world space
    colors: np.ndarray             # (T, 3, 4) float32 RGBA
    state: RenderState = field(default_factory=RenderState)
    vertex_cost: float = 8.0       # cycles per triangle in geometry stage
    pixel_cost: float = 2.0        # cycles per shaded fragment
    texture_id: Optional[int] = None

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float32)
        self.colors = np.asarray(self.colors, dtype=np.float32)
        if self.positions.ndim != 3 or self.positions.shape[1:] != (3, 3):
            raise PipelineError(
                f"positions must be (T, 3, 3), got {self.positions.shape}")
        if self.colors.shape != self.positions.shape[:2] + (4,):
            raise PipelineError(
                f"colors must be (T, 3, 4) matching positions, "
                f"got {self.colors.shape}")
        if self.vertex_cost <= 0 or self.pixel_cost <= 0:
            raise PipelineError("shader costs must be positive")

    @property
    def num_triangles(self) -> int:
        return int(self.positions.shape[0])

    @property
    def transparent(self) -> bool:
        return self.state.transparent

    @property
    def fingerprint(self) -> str:
        """Content address of this draw: geometry, state and shader inputs.

        Deliberately excludes ``draw_id`` — two draws with identical
        content hash identically, which is what lets the artifact store
        share geometry-phase output across schemes and traces. Computed
        once and cached on the instance (draws are immutable by
        convention after trace construction).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            state = self.state
            header = "|".join((
                str(self.texture_id), repr(float(self.vertex_cost)),
                repr(float(self.pixel_cost)), str(state.render_target),
                str(state.depth_buffer), str(int(state.depth_write)),
                state.depth_func.value, state.blend_op.value,
                str(int(state.early_z))))
            digest = hashlib.sha256()
            digest.update(header.encode())
            digest.update(np.ascontiguousarray(self.positions).tobytes())
            digest.update(np.ascontiguousarray(self.colors).tobytes())
            cached = digest.hexdigest()
            self.__dict__["_fingerprint"] = cached
        return cached

    def split(self, num_parts: int) -> list["DrawCommand"]:
        """Divide into ``num_parts`` contiguous sub-draws (order-preserving).

        Used by CHOPIN's transparent-group path ("evenly divide draws",
        Fig 7) and by GPUpd's initial 1/N primitive partitioning. Parts may
        be empty when there are fewer triangles than parts.
        """
        if num_parts <= 0:
            raise PipelineError("num_parts must be positive")
        bounds = np.linspace(0, self.num_triangles, num_parts + 1).astype(int)
        parts = []
        for i in range(num_parts):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            parts.append(DrawCommand(
                draw_id=self.draw_id,
                positions=self.positions[lo:hi],
                colors=self.colors[lo:hi],
                state=self.state,
                vertex_cost=self.vertex_cost,
                pixel_cost=self.pixel_cost,
                texture_id=self.texture_id,
            ))
        return parts


def make_triangle(v0, v1, v2, color=(1.0, 1.0, 1.0, 1.0)) -> DrawCommand:
    """Convenience: a single-triangle draw command with a flat colour."""
    positions = np.array([[v0, v1, v2]], dtype=np.float32)
    colors = np.tile(np.asarray(color, dtype=np.float32), (1, 3, 1))
    return DrawCommand(draw_id=0, positions=positions, colors=colors)


def fullscreen_quad(color=(0.0, 0.0, 0.0, 1.0), depth: float = 0.999,
                    draw_id: int = 0) -> DrawCommand:
    """A background quad (two triangles) covering the whole screen in NDC.

    The paper calls these out explicitly: background draws have trivially few
    triangles, which is why CHOPIN reverts to duplication below the
    composition-group threshold (Fig 7 step 2).
    """
    x0, y0, x1, y1 = -1.0, -1.0, 1.0, 1.0
    quad = np.array([
        [[x0, y0, depth], [x1, y0, depth], [x1, y1, depth]],
        [[x0, y0, depth], [x1, y1, depth], [x0, y1, depth]],
    ], dtype=np.float32)
    colors = np.tile(np.asarray(color, dtype=np.float32), (2, 3, 1))
    return DrawCommand(draw_id=draw_id, positions=quad, colors=colors,
                       vertex_cost=4.0, pixel_cost=1.0)
