"""Vertex transformation: world space -> clip space -> NDC -> screen space.

This implements the fixed-function half of the paper's geometry stage
(Fig 1(b), stage 1): vertex shading is modeled as a matrix transform plus a
per-draw cost, tessellation is pre-expanded by the trace generator, and
culling/clipping lives in :mod:`repro.geometry.clipping`.

All functions are vectorized over triangles: positions are ``(T, 3, 3)``,
clip-space coordinates ``(T, 3, 4)``.
"""

from __future__ import annotations

import numpy as np

from ..errors import PipelineError

#: Minimum w after projection; vertices closer than this are near-clipped.
MIN_W = 1e-6


def transform_positions(positions: np.ndarray, mvp: np.ndarray) -> np.ndarray:
    """Apply a 4x4 model-view-projection matrix to (T, 3, 3) positions.

    Returns clip-space homogeneous coordinates of shape (T, 3, 4).
    """
    positions = np.asarray(positions, dtype=np.float32)
    mvp = np.asarray(mvp, dtype=np.float32)
    if mvp.shape != (4, 4):
        raise PipelineError(f"mvp must be 4x4, got {mvp.shape}")
    t, v = positions.shape[0], positions.shape[1]
    homogeneous = np.concatenate(
        [positions, np.ones((t, v, 1), dtype=np.float32)], axis=2)
    # (T, 3, 4) @ (4, 4)^T
    return homogeneous @ mvp.T


def perspective_divide(clip: np.ndarray) -> np.ndarray:
    """Clip space -> normalized device coordinates (x, y in [-1,1], z in [0,1]).

    Vertices with non-positive ``w`` must have been near-clipped first;
    they are clamped here to keep the math finite but will produce degenerate
    triangles that the rasterizer rejects.
    """
    w = np.maximum(clip[..., 3:4], MIN_W)
    return (clip[..., :3] / w).astype(np.float32)


def to_screen(ndc: np.ndarray, width: int, height: int) -> tuple:
    """NDC -> pixel coordinates and depth.

    Returns ``(xy, depth)`` where ``xy`` is (T, 3, 2) pixel coordinates with
    y growing downward (raster convention) and ``depth`` is (T, 3) in [0, 1].
    """
    if width <= 0 or height <= 0:
        raise PipelineError("viewport dimensions must be positive")
    xy = np.empty(ndc.shape[:2] + (2,), dtype=np.float32)
    xy[..., 0] = (ndc[..., 0] + 1.0) * 0.5 * width
    xy[..., 1] = (1.0 - ndc[..., 1]) * 0.5 * height
    depth = ndc[..., 2].astype(np.float32)
    return xy, depth


def triangle_screen_bounds(xy: np.ndarray) -> np.ndarray:
    """Axis-aligned bounding boxes (T, 4) as [xmin, ymin, xmax, ymax]."""
    mins = xy.min(axis=1)
    maxs = xy.max(axis=1)
    return np.concatenate([mins, maxs], axis=1)
