"""Geometry substrate: 3D math, primitives, vertex transforms, clipping."""

from .primitives import (BlendOp, DepthFunc, DrawCommand, RenderState,
                         fullscreen_quad, make_triangle)
from .transform import (perspective_divide, to_screen, transform_positions,
                        triangle_screen_bounds)
from .clipping import backface_cull_mask, clip_near_plane, frustum_cull_mask
from . import vec

__all__ = [
    "BlendOp",
    "DepthFunc",
    "DrawCommand",
    "RenderState",
    "backface_cull_mask",
    "clip_near_plane",
    "frustum_cull_mask",
    "fullscreen_quad",
    "make_triangle",
    "perspective_divide",
    "to_screen",
    "transform_positions",
    "triangle_screen_bounds",
    "vec",
]
