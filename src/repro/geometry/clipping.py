"""Frustum culling and near-plane clipping in clip space.

Like real GPUs, we do *guard-band* clipping: triangles entirely outside any
frustum plane are culled; triangles crossing the near plane are properly
clipped (Sutherland-Hodgman, yielding one or two triangles); triangles merely
overhanging the side planes are left to the rasterizer's scissor.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

NEAR_EPS = 1e-5


def frustum_cull_mask(clip: np.ndarray) -> np.ndarray:
    """Boolean mask (T,) of triangles fully outside one frustum plane.

    Clip-space inside test (DirectX-style depth): ``-w <= x, y <= w`` and
    ``0 <= z <= w``. A triangle is culled when all three vertices are outside
    the *same* plane.
    """
    x, y, z, w = (clip[..., 0], clip[..., 1], clip[..., 2], clip[..., 3])
    outside = np.stack([
        (x < -w).all(axis=1),
        (x > w).all(axis=1),
        (y < -w).all(axis=1),
        (y > w).all(axis=1),
        (z < 0).all(axis=1),
        (z > w).all(axis=1),
    ])
    return outside.any(axis=0)


def backface_cull_mask(clip: np.ndarray) -> np.ndarray:
    """Mask of back-facing or zero-area triangles (counter-clockwise = front).

    Computed from the signed area in NDC; triangles with any near-plane
    vertex (w <= eps) are conservatively kept for the clipper.
    """
    w = np.maximum(clip[..., 3], NEAR_EPS)
    ndc_x = clip[..., 0] / w
    ndc_y = clip[..., 1] / w
    ax = ndc_x[:, 1] - ndc_x[:, 0]
    ay = ndc_y[:, 1] - ndc_y[:, 0]
    bx = ndc_x[:, 2] - ndc_x[:, 0]
    by = ndc_y[:, 2] - ndc_y[:, 0]
    area2 = ax * by - ay * bx
    behind = (clip[..., 3] <= NEAR_EPS).any(axis=1)
    return (area2 <= 0) & ~behind


def clip_near_plane(clip: np.ndarray,
                    colors: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Clip triangles against the near plane ``z >= 0`` in clip space.

    Returns new ``(clip, colors)`` arrays. Triangles fully in front pass
    through untouched; fully-behind triangles are dropped; straddling
    triangles are Sutherland-Hodgman clipped into one or two triangles with
    attributes interpolated in clip space (correct for perspective).
    """
    z = clip[..., 2]
    inside = z >= 0.0
    all_in = inside.all(axis=1)
    none_in = ~inside.any(axis=1)
    easy = all_in
    hard = ~all_in & ~none_in

    kept_clip = [clip[easy]]
    kept_col = [colors[easy]]

    for tri_clip, tri_col, tri_in in zip(clip[hard], colors[hard], inside[hard]):
        poly_pos, poly_col = _clip_polygon(tri_clip, tri_col, tri_in)
        # Fan-triangulate the clipped polygon (3 or 4 vertices).
        for i in range(1, len(poly_pos) - 1):
            kept_clip.append(np.stack(
                [poly_pos[0], poly_pos[i], poly_pos[i + 1]])[None])
            kept_col.append(np.stack(
                [poly_col[0], poly_col[i], poly_col[i + 1]])[None])

    if not kept_clip:
        return (np.empty((0, 3, 4), dtype=np.float32),
                np.empty((0, 3, 4), dtype=np.float32))
    return (np.concatenate(kept_clip).astype(np.float32),
            np.concatenate(kept_col).astype(np.float32))


def _clip_polygon(tri_clip: np.ndarray, tri_col: np.ndarray,
                  inside: np.ndarray) -> Tuple[list, list]:
    """Sutherland-Hodgman step for one straddling triangle."""
    out_pos, out_col = [], []
    for i in range(3):
        j = (i + 1) % 3
        p_i, p_j = tri_clip[i], tri_clip[j]
        c_i, c_j = tri_col[i], tri_col[j]
        if inside[i]:
            out_pos.append(p_i)
            out_col.append(c_i)
        if inside[i] != inside[j]:
            # Intersection with z = 0: t such that z_i + t (z_j - z_i) = 0.
            denom = p_j[2] - p_i[2]
            t = -p_i[2] / denom
            out_pos.append(p_i + t * (p_j - p_i))
            out_col.append(c_i + t * (c_j - c_i))
    return out_pos, out_col
