"""Depth/stencil test functions (paper Fig 1(b) stage 3, section IV-A event 4).

The comparison runs vectorized over fragment arrays: ``depth_test`` returns a
boolean pass mask given the incoming fragment depths and the depth-buffer
values they compete with.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..errors import PipelineError
from ..geometry.primitives import DepthFunc

_COMPARATORS: Dict[DepthFunc, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    DepthFunc.NEVER: lambda new, cur: np.zeros_like(new, dtype=bool),
    DepthFunc.LESS: lambda new, cur: new < cur,
    DepthFunc.LEQUAL: lambda new, cur: new <= cur,
    DepthFunc.EQUAL: lambda new, cur: new == cur,
    DepthFunc.GEQUAL: lambda new, cur: new >= cur,
    DepthFunc.GREATER: lambda new, cur: new > cur,
    DepthFunc.NOTEQUAL: lambda new, cur: new != cur,
    DepthFunc.ALWAYS: lambda new, cur: np.ones_like(new, dtype=bool),
}

#: Clear value for depth buffers: the far plane under LESS-style tests.
DEPTH_CLEAR = 1.0


def depth_test(func: DepthFunc, new_depth: np.ndarray,
               current_depth: np.ndarray) -> np.ndarray:
    """Boolean mask of fragments passing ``func`` against the buffer."""
    try:
        comparator = _COMPARATORS[func]
    except KeyError:
        raise PipelineError(f"unknown depth function: {func!r}")
    return comparator(np.asarray(new_depth), np.asarray(current_depth))


def is_order_independent(func: DepthFunc) -> bool:
    """Whether depth-compositing with ``func`` commutes across sub-images.

    LESS/LEQUAL (and their GREATER duals) reduce to min/max selection, which
    is commutative — the property that lets CHOPIN compose opaque sub-images
    out-of-order (section II-D). EQUAL/NOTEQUAL depend on the buffer history
    and do not commute.
    """
    return func in (DepthFunc.LESS, DepthFunc.LEQUAL,
                    DepthFunc.GREATER, DepthFunc.GEQUAL,
                    DepthFunc.ALWAYS, DepthFunc.NEVER)
