"""Framebuffer substrate: colour/depth surfaces and depth-test functions."""

from .depth import DEPTH_CLEAR, depth_test, is_order_independent
from .framebuffer import Framebuffer, SurfacePool

__all__ = [
    "DEPTH_CLEAR",
    "Framebuffer",
    "SurfacePool",
    "depth_test",
    "is_order_independent",
]
