"""Framebuffers, depth buffers, and render-target management.

A :class:`Framebuffer` is one colour surface (RGBA float32, premultiplied
alpha) plus a depth surface. A :class:`SurfacePool` owns the numbered render
targets and depth buffers a trace refers to (paper section IV-A event 2
boundaries switch between them), mirroring what each GPU's memory would hold.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import PipelineError
from .depth import DEPTH_CLEAR


class Framebuffer:
    """A colour + depth surface pair of fixed resolution."""

    def __init__(self, width: int, height: int,
                 clear_color: Tuple[float, float, float, float] = (0, 0, 0, 0)):
        if width <= 0 or height <= 0:
            raise PipelineError("framebuffer dimensions must be positive")
        self.width = width
        self.height = height
        self.clear_color = clear_color
        self.color = np.empty((height, width, 4), dtype=np.float32)
        self.depth = np.empty((height, width), dtype=np.float32)
        self.clear()

    def clear(self) -> None:
        self.color[:] = np.asarray(self.clear_color, dtype=np.float32)
        self.depth[:] = DEPTH_CLEAR

    def copy(self) -> "Framebuffer":
        dup = Framebuffer(self.width, self.height, self.clear_color)
        dup.color[:] = self.color
        dup.depth[:] = self.depth
        return dup

    @property
    def num_pixels(self) -> int:
        return self.width * self.height

    def size_bytes(self, pixel_bytes: int = 8) -> int:
        """Wire size of the full surface (colour + depth)."""
        return self.num_pixels * pixel_bytes

    def same_image(self, other: "Framebuffer", tol: float = 1e-4) -> bool:
        """Colour equality within tolerance (blending order introduces ULPs)."""
        if (self.width, self.height) != (other.width, other.height):
            return False
        return bool(np.allclose(self.color, other.color, atol=tol))

    def max_color_error(self, other: "Framebuffer") -> float:
        return float(np.abs(self.color - other.color).max())

    def to_srgb_bytes(self) -> np.ndarray:
        """Quantize to 8-bit RGBA for image dumps (no gamma, clamped)."""
        return (np.clip(self.color, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)

    def write_ppm(self, path: str) -> None:
        """Dump the colour buffer as a binary PPM (RGB, alpha dropped)."""
        rgb = self.to_srgb_bytes()[..., :3]
        header = f"P6\n{self.width} {self.height}\n255\n".encode("ascii")
        with open(path, "wb") as fh:
            fh.write(header)
            fh.write(rgb.tobytes())


class SurfacePool:
    """Numbered render targets and depth buffers for one GPU.

    Surfaces are created lazily on first use, as a driver would allocate
    them; ``reset`` clears everything between frames.
    """

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self._targets: Dict[int, Framebuffer] = {}
        self._depths: Dict[int, np.ndarray] = {}

    def render_target(self, target_id: int) -> Framebuffer:
        if target_id not in self._targets:
            self._targets[target_id] = Framebuffer(self.width, self.height)
        return self._targets[target_id]

    def depth_buffer(self, buffer_id: int) -> np.ndarray:
        if buffer_id not in self._depths:
            buf = np.full((self.height, self.width), DEPTH_CLEAR,
                          dtype=np.float32)
            self._depths[buffer_id] = buf
        return self._depths[buffer_id]

    def install_render_target(self, target_id: int, fb: Framebuffer) -> None:
        """Bind an externally created surface as a numbered render target.

        CHOPIN's transparent-group path uses this to render a group into a
        fresh layer (cleared to the blend operator's identity) while leaving
        the persistent target untouched (Fig 7 step 3).
        """
        if (fb.width, fb.height) != (self.width, self.height):
            raise PipelineError("installed target size mismatch")
        self._targets[target_id] = fb

    def install_depth_buffer(self, buffer_id: int, depth: np.ndarray) -> None:
        """Bind an externally provided depth surface (e.g., a synced copy)."""
        if depth.shape != (self.height, self.width):
            raise PipelineError("installed depth size mismatch")
        self._depths[buffer_id] = depth

    @property
    def target_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._targets))

    def reset(self) -> None:
        for fb in self._targets.values():
            fb.clear()
        for depth in self._depths.values():
            depth[:] = DEPTH_CLEAR
