"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from :class:`ReproError`
so callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class FaultError(ReproError):
    """An injected fault could not be recovered from (e.g., a transfer
    exhausted its retry budget, or a fail-stop left no survivors)."""


class PipelineError(ReproError):
    """The graphics pipeline was driven with invalid inputs."""


class CompositionError(ReproError):
    """Image composition was requested with incompatible operands."""


class SchedulingError(ReproError):
    """A scheduler (draw-command or composition) hit an invalid state."""


class TraceError(ReproError):
    """A workload trace is malformed or inconsistent."""
