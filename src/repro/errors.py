"""Exception hierarchy and exit-code registry for the repro package.

Every error raised on purpose by this library derives from :class:`ReproError`
so callers can catch library failures without masking programming errors.

The module also owns the CLI exit-code contract: the ``EXIT_*``
constants, the :data:`EXIT_CODES` isinstance ladder (most specific
first) that maps every taxonomy class to a deterministic exit code, and
the :data:`GENERIC_EXIT` allowlist recording which classes *deliberately*
fall through to the generic catch-all code. ``repro.cli`` consumes this
registry via :func:`exit_code_for`, and the deep-lint error-contract
pass (:mod:`repro.analysis.contract`) checks it stays total, collision-
free, and documented.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class TraceFingerprintError(ConfigError):
    """A failure trace was generated for a different fabric than the one it
    is being replayed against (topology fingerprint mismatch).

    Subclasses :class:`ConfigError` — the trace *is* configuration — but is
    distinguishable so the CLI can map it to its own exit code and print
    which identifying fields disagree."""

    def __init__(self, message: str, mismatched_fields: tuple = ()):
        super().__init__(message)
        self.mismatched_fields = tuple(mismatched_fields)


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class WatchdogError(SimulationError):
    """The virtual-time watchdog tripped: a single :meth:`Simulator.run`
    advanced more than its configured ``watchdog_cycles`` budget without
    finishing (livelock — e.g. an unbounded retry loop that keeps feeding
    the event queue, which the drain-based deadlock check can never see).

    Subclasses :class:`SimulationError` so generic handlers treat a trip
    like any other wedged simulation; the serve daemon catches it
    specifically and degrades instead of crashing."""


class RaceConditionError(SimulationError):
    """The race sanitizer observed same-cycle conflicting accesses to a
    shared resource by distinct processes (see ``repro.analysis.sanitizer``).

    Subclasses :class:`SimulationError` so existing handlers and exit-code
    mapping treat a flagged race like any other simulation failure."""


class FaultError(ReproError):
    """An injected fault could not be recovered from (e.g., a transfer
    exhausted its retry budget, or a fail-stop left no survivors)."""


class PipelineError(ReproError):
    """The graphics pipeline was driven with invalid inputs."""


class CompositionError(ReproError):
    """Image composition was requested with incompatible operands."""


class SchedulingError(ReproError):
    """A scheduler (draw-command or composition) hit an invalid state."""


class TraceError(ReproError):
    """A workload trace is malformed or inconsistent."""


class HarnessError(ReproError):
    """The experiment harness (job engine, journal, CLI glue) failed."""


class JobTimeout(HarnessError):
    """A supervised job exceeded its wall-clock budget and was killed.

    Transient: the engine retries these (slow machine, scheduler hiccup)
    until the retry budget is exhausted.
    """


class WorkerCrashed(HarnessError):
    """A worker subprocess died without reporting a result (signal,
    ``os._exit``, OOM kill).

    Transient: the engine retries these until the retry budget is
    exhausted.
    """


class ServeError(ReproError):
    """The frame-serving daemon (see :mod:`repro.serve`) failed."""


class ServeOverloadError(ServeError):
    """A serve run breached its declared SLO gates (shed rate or tail
    latency above the ``--max-shed-rate`` / ``--max-p99-x`` bounds).

    Carries the measured metrics so the CLI's exit-8 report can say by
    how much the gate was missed, not just that it was."""

    def __init__(self, message: str, shed_rate: float = 0.0,
                 p99_cycles: float = 0.0):
        super().__init__(message)
        self.shed_rate = shed_rate
        self.p99_cycles = p99_cycles


class RetryBudgetExhausted(HarnessError):
    """A job failed on every allowed attempt.

    Terminal: carries the spec fingerprint and the classified cause of the
    last attempt so reports can say *why* a cell is FAILED.
    """

    def __init__(self, message: str, fingerprint: str = "",
                 last_error: str = "", attempts: int = 0):
        super().__init__(message)
        self.fingerprint = fingerprint
        self.last_error = last_error
        self.attempts = attempts


# -- CLI exit-code registry ---------------------------------------------------
#
# Single source of truth for ``python -m repro`` exit codes. ``cli.py``
# re-exports these names for backward compatibility; the error-contract
# lint pass parses this block to prove every taxonomy class maps
# deterministically.

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_CONFIG = 2
EXIT_PARTIAL = 3
EXIT_TIMEOUT = 4
EXIT_CRASH = 5
EXIT_BUDGET = 6
EXIT_FINGERPRINT = 7
EXIT_OVERLOAD = 8
EXIT_DEGRADED = 9
EXIT_FAULT = 10
EXIT_SCHEDULING = 11

#: typed failure -> distinct exit code (most specific first; the
#: trailing ReproError entry is the generic catch-all)
EXIT_CODES = ((RetryBudgetExhausted, EXIT_BUDGET), (JobTimeout, EXIT_TIMEOUT),
              (WorkerCrashed, EXIT_CRASH),
              (TraceFingerprintError, EXIT_FINGERPRINT),
              (ServeOverloadError, EXIT_OVERLOAD),
              (WatchdogError, EXIT_DEGRADED),
              (FaultError, EXIT_FAULT),
              (SchedulingError, EXIT_SCHEDULING),
              (ConfigError, EXIT_CONFIG), (ReproError, EXIT_ERROR))

#: taxonomy classes that *deliberately* map to the generic catch-all
#: exit code (EXIT_ERROR); subclasses inherit the decision unless they
#: appear in the ladder themselves. Checked by the contract lint pass:
#: a class in neither EXIT_CODES nor (transitively) this set is flagged.
GENERIC_EXIT = frozenset({
    "SimulationError",   # kernel misuse: a bug, not an outcome
    "PipelineError",     # driven with invalid inputs: a bug
    "CompositionError",  # incompatible operands: a bug
    "TraceError",        # malformed workload trace
    "HarnessError",      # engine glue; its job outcomes map specifically
    "ServeError",        # daemon internals; SLO breaches map specifically
})


def exit_code_for(exc: ReproError) -> int:
    """Deterministic CLI exit code for a typed library failure."""
    for exc_type, code in EXIT_CODES:
        if isinstance(exc, exc_type):
            return code
    return EXIT_ERROR  # non-ReproError caller mistake: generic failure
