"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from :class:`ReproError`
so callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class TraceFingerprintError(ConfigError):
    """A failure trace was generated for a different fabric than the one it
    is being replayed against (topology fingerprint mismatch).

    Subclasses :class:`ConfigError` — the trace *is* configuration — but is
    distinguishable so the CLI can map it to its own exit code and print
    which identifying fields disagree."""

    def __init__(self, message: str, mismatched_fields: tuple = ()):
        super().__init__(message)
        self.mismatched_fields = tuple(mismatched_fields)


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class WatchdogError(SimulationError):
    """The virtual-time watchdog tripped: a single :meth:`Simulator.run`
    advanced more than its configured ``watchdog_cycles`` budget without
    finishing (livelock — e.g. an unbounded retry loop that keeps feeding
    the event queue, which the drain-based deadlock check can never see).

    Subclasses :class:`SimulationError` so generic handlers treat a trip
    like any other wedged simulation; the serve daemon catches it
    specifically and degrades instead of crashing."""


class RaceConditionError(SimulationError):
    """The race sanitizer observed same-cycle conflicting accesses to a
    shared resource by distinct processes (see ``repro.analysis.sanitizer``).

    Subclasses :class:`SimulationError` so existing handlers and exit-code
    mapping treat a flagged race like any other simulation failure."""


class FaultError(ReproError):
    """An injected fault could not be recovered from (e.g., a transfer
    exhausted its retry budget, or a fail-stop left no survivors)."""


class PipelineError(ReproError):
    """The graphics pipeline was driven with invalid inputs."""


class CompositionError(ReproError):
    """Image composition was requested with incompatible operands."""


class SchedulingError(ReproError):
    """A scheduler (draw-command or composition) hit an invalid state."""


class TraceError(ReproError):
    """A workload trace is malformed or inconsistent."""


class HarnessError(ReproError):
    """The experiment harness (job engine, journal, CLI glue) failed."""


class JobTimeout(HarnessError):
    """A supervised job exceeded its wall-clock budget and was killed.

    Transient: the engine retries these (slow machine, scheduler hiccup)
    until the retry budget is exhausted.
    """


class WorkerCrashed(HarnessError):
    """A worker subprocess died without reporting a result (signal,
    ``os._exit``, OOM kill).

    Transient: the engine retries these until the retry budget is
    exhausted.
    """


class ServeError(ReproError):
    """The frame-serving daemon (see :mod:`repro.serve`) failed."""


class ServeOverloadError(ServeError):
    """A serve run breached its declared SLO gates (shed rate or tail
    latency above the ``--max-shed-rate`` / ``--max-p99-x`` bounds).

    Carries the measured metrics so the CLI's exit-8 report can say by
    how much the gate was missed, not just that it was."""

    def __init__(self, message: str, shed_rate: float = 0.0,
                 p99_cycles: float = 0.0):
        super().__init__(message)
        self.shed_rate = shed_rate
        self.p99_cycles = p99_cycles


class RetryBudgetExhausted(HarnessError):
    """A job failed on every allowed attempt.

    Terminal: carries the spec fingerprint and the classified cause of the
    last attempt so reports can say *why* a cell is FAILED.
    """

    def __init__(self, message: str, fingerprint: str = "",
                 last_error: str = "", attempts: int = 0):
        super().__init__(message)
        self.fingerprint = fingerprint
        self.last_error = last_error
        self.attempts = attempts
