"""Draw-command scheduling (paper §IV-D, Fig 10).

The draw-command scheduler keeps, per GPU, the number of *scheduled* and
*processed* geometry-stage triangles; each new draw goes to the GPU with the
fewest remaining (scheduled - processed) triangles. Processed counts arrive
from the GPUs in chunks of ``update_interval`` triangles (the Fig 18
sensitivity knob). A round-robin scheduler is included as the strawman the
paper measures in Fig 8, and an oracle longest-processing-time scheduler as
an ablation upper bound.

The transparent-group path does not use dynamic scheduling: to preserve
primitive order it splits the group's primitives into equal contiguous
chunks (§IV-C step 4), implemented by :func:`even_split_by_triangles`.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from ..errors import SchedulingError
from ..geometry.primitives import DrawCommand


class DrawScheduler:
    """Interface: pick a GPU for each issued draw command."""

    name = "base"

    def __init__(self, num_gpus: int) -> None:
        if num_gpus <= 0:
            raise SchedulingError("need at least one GPU")
        self.num_gpus = num_gpus
        #: fail-stopped GPUs; ``pick`` never selects these (degraded mode)
        self.disabled: Set[int] = set()

    def disable_gpu(self, gpu: int) -> None:
        """Remove a fail-stopped GPU from scheduling consideration.

        Disabling survives :meth:`reset` — a dead GPU stays dead across
        composition groups.
        """
        if not 0 <= gpu < self.num_gpus:
            raise SchedulingError(f"cannot disable unknown GPU{gpu}")
        self.disabled.add(gpu)
        if len(self.disabled) == self.num_gpus:
            raise SchedulingError("every GPU is disabled; nothing can "
                                  "execute draws")

    def eligible_gpus(self) -> List[int]:
        return [g for g in range(self.num_gpus) if g not in self.disabled]

    def pick(self, triangles: int) -> int:
        raise NotImplementedError

    def report_processed(self, gpu: int, triangles: int) -> None:
        """Progress feedback from the geometry stage (may be ignored)."""

    def reset(self) -> None:
        """Forget cross-group state (schedulers persist across groups)."""


class RoundRobinScheduler(DrawScheduler):
    """Naive rotation — the load-imbalance strawman of Fig 8."""

    name = "round-robin"

    def __init__(self, num_gpus: int) -> None:
        super().__init__(num_gpus)
        self._next = 0

    def pick(self, triangles: int) -> int:
        gpu = self._next
        while gpu in self.disabled:
            gpu = (gpu + 1) % self.num_gpus
        self._next = (gpu + 1) % self.num_gpus
        return gpu

    def reset(self) -> None:
        self._next = 0


class LeastRemainingTrianglesScheduler(DrawScheduler):
    """CHOPIN's scheduler: fewest remaining geometry-stage triangles wins.

    ``scheduled`` increments at issue; ``processed`` increments as the GPU
    reports geometry progress (chunked by the engine's update interval).
    The remaining-triangle count is the workload estimate the paper justifies
    with Fig 9 (geometry triangle rate tracks whole-pipeline triangle rate).
    """

    name = "least-remaining"

    def __init__(self, num_gpus: int) -> None:
        super().__init__(num_gpus)
        self.scheduled = [0] * num_gpus
        self.processed = [0] * num_gpus

    def remaining(self, gpu: int) -> int:
        return self.scheduled[gpu] - self.processed[gpu]

    def pick(self, triangles: int) -> int:
        gpu = min(self.eligible_gpus(), key=self.remaining)
        self.scheduled[gpu] += triangles
        return gpu

    def report_processed(self, gpu: int, triangles: int) -> None:
        self.processed[gpu] += triangles
        if self.processed[gpu] > self.scheduled[gpu]:
            raise SchedulingError(
                f"GPU{gpu} reported more processed than scheduled triangles")

    def reset(self) -> None:
        self.scheduled = [0] * self.num_gpus
        self.processed = [0] * self.num_gpus


class SampledRateScheduler(DrawScheduler):
    """OO-VR-style static estimation (§IV-D's second strawman).

    Implements the Wimmer-Wonka heuristic ``t = c1*#tv + c2*#pix`` with
    ``c1``/``c2`` *sampled from the first few draw commands* and reused for
    the rest of the frame — the approach the paper rejects because "these
    parameters vary substantially, and such samples form a poor estimate
    for the dynamic execution state of the whole system."

    ``estimates`` must align with the draws that will be ``pick``ed, in
    order; construction helpers live on the CHOPIN scheme, which knows the
    cost model.
    """

    name = "sampled-rate"

    def __init__(self, num_gpus: int, estimates: Sequence[float]) -> None:
        super().__init__(num_gpus)
        self._estimates = list(estimates)
        self._cursor = 0
        self.load = [0.0] * num_gpus

    def pick(self, triangles: int) -> int:
        if self._cursor >= len(self._estimates):
            raise SchedulingError("sampled scheduler ran out of estimates")
        estimate = self._estimates[self._cursor]
        self._cursor += 1
        gpu = min(self.eligible_gpus(), key=self.load.__getitem__)
        self.load[gpu] += estimate
        return gpu

    def reset(self) -> None:
        self.load = [0.0] * self.num_gpus
        self._cursor = 0


class OracleLPTScheduler(DrawScheduler):
    """Ablation: offline longest-processing-time assignment by *total* draw
    cost (geometry + fragment estimate), which the paper deems unrealistic
    (exact runtimes are unknown before execution). Used to bound how much
    headroom remains above the triangle heuristic."""

    name = "oracle-lpt"

    def __init__(self, num_gpus: int, costs: Sequence[float]) -> None:
        super().__init__(num_gpus)
        self._costs = list(costs)
        self._cursor = 0
        self.load = [0.0] * num_gpus

    def pick(self, triangles: int) -> int:
        if self._cursor >= len(self._costs):
            raise SchedulingError("oracle scheduler ran out of cost entries")
        cost = self._costs[self._cursor]
        self._cursor += 1
        gpu = min(self.eligible_gpus(), key=self.load.__getitem__)
        self.load[gpu] += cost
        return gpu

    def reset(self) -> None:
        self.load = [0.0] * self.num_gpus
        self._cursor = 0


def even_split_by_triangles(draws: Sequence[DrawCommand],
                            num_gpus: int) -> List[List[DrawCommand]]:
    """Split a transparent group into ``num_gpus`` contiguous chunks.

    Chunks hold (nearly) equal triangle counts and preserve submission
    order; a draw straddling a chunk boundary is split with
    :meth:`DrawCommand.split` so primitive order is kept exactly.
    """
    if num_gpus <= 0:
        raise SchedulingError("need at least one GPU")
    total = sum(d.num_triangles for d in draws)
    chunks: List[List[DrawCommand]] = [[] for _ in range(num_gpus)]
    if total == 0:
        return chunks
    # Chunk k holds triangles [boundary[k], boundary[k+1]) of the
    # concatenated primitive stream.
    boundaries = [round(k * total / num_gpus) for k in range(num_gpus + 1)]
    gpu = 0
    placed = 0  # triangles placed so far, across all chunks
    for draw in draws:
        remaining_draw = draw
        while remaining_draw.num_triangles > 0:
            while placed >= boundaries[gpu + 1] and gpu < num_gpus - 1:
                gpu += 1
            space = boundaries[gpu + 1] - placed
            if gpu == num_gpus - 1 or remaining_draw.num_triangles <= space:
                chunks[gpu].append(remaining_draw)
                placed += remaining_draw.num_triangles
                break
            head, tail = _split_at(remaining_draw, space)
            if head.num_triangles:
                chunks[gpu].append(head)
                placed += head.num_triangles
            remaining_draw = tail
    return chunks


def _split_at(draw: DrawCommand, count: int) -> tuple:
    """Split one draw into (first ``count`` triangles, rest)."""
    head = DrawCommand(
        draw_id=draw.draw_id, positions=draw.positions[:count],
        colors=draw.colors[:count], state=draw.state,
        vertex_cost=draw.vertex_cost, pixel_cost=draw.pixel_cost,
        texture_id=draw.texture_id)
    tail = DrawCommand(
        draw_id=draw.draw_id, positions=draw.positions[count:],
        colors=draw.colors[count:], state=draw.state,
        vertex_cost=draw.vertex_cost, pixel_cost=draw.pixel_cost,
        texture_id=draw.texture_id)
    return head, tail
