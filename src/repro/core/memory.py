"""Per-scheme GPU memory-footprint model.

The paper's design choices are repeatedly justified by buffering costs:

- GPUpd distributes primitive IDs **sequentially** because unordered
  exchange "would need a large memory to buffer exchanged primitive IDs
  and a complex sorting structure to reorder them" (§III-A);
- CHOPIN's transparent groups need an **extra render target per GPU**
  because transparent sub-images cannot blend with the background
  independently (§IV-A/Fig 7);
- sort-middle buffers full post-geometry attributes.

This module turns those arguments into numbers: per-GPU bytes of surface
and staging memory each scheme requires on a given trace, beyond the
baseline framebuffer itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import SystemConfig
from ..traces.trace import Trace
from .grouping import split_into_groups
from .workflow import GroupMode, plan_frame

#: bytes per pixel of one colour surface (RGBA8)
COLOR_BYTES = 4
#: bytes per pixel of one depth/stencil surface (D24S8)
DEPTH_BYTES = 4


@dataclass
class MemoryFootprint:
    """Per-GPU memory requirement breakdown, in bytes."""

    scheme: str
    surfaces: int = 0          # render targets + depth buffers
    extra_targets: int = 0     # CHOPIN transparent-group layers
    staging: int = 0           # sub-image / primitive exchange buffers
    reorder: int = 0           # ID reorder buffers (unordered exchange)
    notes: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (self.surfaces + self.extra_targets + self.staging
                + self.reorder)

    def as_dict(self) -> Dict[str, int]:
        return {"surfaces": self.surfaces,
                "extra_targets": self.extra_targets,
                "staging": self.staging, "reorder": self.reorder,
                "total": self.total}


def _surface_bytes(trace: Trace) -> int:
    """One full-resolution colour + depth surface pair."""
    return trace.width * trace.height * (COLOR_BYTES + DEPTH_BYTES)


def _surface_count(trace: Trace) -> int:
    """Distinct render targets the frame draws into."""
    targets = {d.state.render_target for d in trace.frame.draws}
    return max(len(targets), 1)


def duplication_memory(trace: Trace, config: SystemConfig,
                       ) -> MemoryFootprint:
    """Conventional SFR: full surfaces everywhere (each GPU re-renders
    everything, and RT-switch broadcasts require full-size buffers)."""
    footprint = MemoryFootprint(scheme="duplication")
    footprint.surfaces = _surface_count(trace) * _surface_bytes(trace)
    return footprint


def gpupd_memory(trace: Trace, config: SystemConfig,
                 ordered: bool = True) -> MemoryFootprint:
    """GPUpd: surfaces + primitive-ID buffers.

    With the paper's *ordered* sequential exchange, a GPU only needs a
    small FIFO per source (IDs arrive in order and are consumed on the
    fly). An *unordered* exchange (the design GPUpd rejects) must buffer
    every received ID until the frame's order can be reconstructed —
    that's the "large memory + complex sorting structure" of §III-A.
    """
    footprint = MemoryFootprint(scheme="gpupd" if ordered
                                else "gpupd-unordered")
    footprint.surfaces = _surface_count(trace) * _surface_bytes(trace)
    id_bytes = config.primitive_id_bytes  # unit: bytes/triangle
    if ordered:
        # one in-flight batch per source GPU
        from ..harness.runner import GPUPD_BATCH_PRIMITIVES
        footprint.staging = (config.num_gpus * GPUPD_BATCH_PRIMITIVES
                             * id_bytes)
        footprint.notes.append("ordered exchange: per-source batch FIFOs")
    else:
        # worst case: every primitive's ID buffered for reordering
        footprint.reorder = trace.num_triangles * id_bytes * 2  # id + key
        footprint.notes.append(
            "unordered exchange: full-frame ID reorder buffer (§III-A)")
    return footprint


def sort_middle_memory(trace: Trace, config: SystemConfig,
                       attribute_bytes: int = 1152) -> MemoryFootprint:
    """Sort-middle: buffers full post-geometry attributes per batch."""
    footprint = MemoryFootprint(scheme="sort-middle")
    footprint.surfaces = _surface_count(trace) * _surface_bytes(trace)
    from ..harness.runner import GPUPD_BATCH_PRIMITIVES
    footprint.staging = (config.num_gpus * GPUPD_BATCH_PRIMITIVES
                         * attribute_bytes)
    footprint.notes.append("post-geometry attribute batches")
    return footprint


def chopin_memory(trace: Trace, config: SystemConfig) -> MemoryFootprint:
    """CHOPIN: surfaces + transparent-group layers + composition staging.

    Every GPU renders the *whole screen*, so local surfaces are full-size
    (same as duplication). Transparent groups allocate one extra
    full-screen colour layer per GPU (Fig 7 step 3); opaque composition
    stages at most one incoming sub-image region at a time (the scheduler
    pairs GPUs one-to-one).
    """
    footprint = MemoryFootprint(scheme="chopin")
    footprint.surfaces = _surface_count(trace) * _surface_bytes(trace)
    plans = plan_frame(split_into_groups(trace.frame), config)
    has_transparent = any(p.mode is GroupMode.TRANSPARENT_PARALLEL
                          for p in plans)
    if has_transparent:
        footprint.extra_targets = trace.width * trace.height * COLOR_BYTES
        footprint.notes.append("one extra layer for transparent groups")
    # staging: one incoming sub-image region (own tiles) during composition
    own_pixels = trace.width * trace.height // config.num_gpus
    footprint.staging = own_pixels * (COLOR_BYTES + DEPTH_BYTES)
    return footprint


def memory_comparison(trace: Trace,
                      config: SystemConfig) -> Dict[str, MemoryFootprint]:
    """All schemes' per-GPU footprints on one trace."""
    return {
        "duplication": duplication_memory(trace, config),
        "gpupd": gpupd_memory(trace, config, ordered=True),
        "gpupd-unordered": gpupd_memory(trace, config, ordered=False),
        "sort-middle": sort_middle_memory(trace, config),
        "chopin": chopin_memory(trace, config),
    }
