"""CHOPIN's core contribution: grouping, schedulers, workflow, HW model."""

from .grouping import (BOUNDARY_BLEND_OP, BOUNDARY_DEPTH_FUNC,
                       BOUNDARY_DEPTH_WRITE, BOUNDARY_FRAME, BOUNDARY_TARGET,
                       CompositionGroup, boundary_reason, split_into_groups)
from .draw_scheduler import (DrawScheduler, LeastRemainingTrianglesScheduler,
                             OracleLPTScheduler, RoundRobinScheduler,
                             SampledRateScheduler, even_split_by_triangles)
from .composition_scheduler import (CompositionStatus,
                                    ImageCompositionScheduler,
                                    adjacency_pairs)
from .workflow import (GroupMode, GroupPlan, PipelineWindow, WorkflowSummary,
                       plan_frame, plan_group, plan_trace_frame,
                       summarize_plan)
from .hardware import (composition_scheduler_size_bytes,
                       composition_scheduler_traffic_bytes,
                       draw_scheduler_size_bytes,
                       draw_scheduler_traffic_bytes)

__all__ = [
    "BOUNDARY_BLEND_OP",
    "BOUNDARY_DEPTH_FUNC",
    "BOUNDARY_DEPTH_WRITE",
    "BOUNDARY_FRAME",
    "BOUNDARY_TARGET",
    "CompositionGroup",
    "CompositionStatus",
    "DrawScheduler",
    "GroupMode",
    "GroupPlan",
    "ImageCompositionScheduler",
    "LeastRemainingTrianglesScheduler",
    "OracleLPTScheduler",
    "PipelineWindow",
    "RoundRobinScheduler",
    "SampledRateScheduler",
    "WorkflowSummary",
    "adjacency_pairs",
    "boundary_reason",
    "composition_scheduler_size_bytes",
    "composition_scheduler_traffic_bytes",
    "draw_scheduler_size_bytes",
    "draw_scheduler_traffic_bytes",
    "even_split_by_triangles",
    "plan_frame",
    "plan_group",
    "plan_trace_frame",
    "split_into_groups",
    "summarize_plan",
]
