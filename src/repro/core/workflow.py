"""Composition-group workflow decisions (paper Fig 7).

For every composition group, CHOPIN decides:

1. if the group has fewer primitives than the composition threshold, revert
   to primitive duplication (the composition cost would dominate the saved
   redundant geometry — background quads are the canonical case);
2. otherwise, if the group is transparent: allocate an extra render target
   per GPU (sub-images cannot blend with the background independently),
   split the primitives evenly and contiguously across GPUs, and compose
   adjacent sub-images asynchronously;
3. otherwise (opaque): schedule draws dynamically and compose out-of-order.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from ..config import SystemConfig
from ..errors import ConfigError
from ..geometry.primitives import DrawCommand
from .draw_scheduler import even_split_by_triangles
from .grouping import CompositionGroup


class GroupMode(enum.Enum):
    """How a composition group executes (the three Fig 7 exits)."""

    DUPLICATE = "duplicate"          # below threshold: conventional SFR
    OPAQUE_PARALLEL = "opaque"       # scheduled draws, out-of-order compose
    TRANSPARENT_PARALLEL = "transparent"  # even split, adjacent compose


@dataclass
class GroupPlan:
    """The resolved execution plan for one composition group."""

    group: CompositionGroup
    mode: GroupMode
    #: contiguous per-GPU draw chunks (transparent mode only)
    chunks: Optional[List[List[DrawCommand]]] = None
    #: whether an extra render target per GPU is required (transparent mode)
    needs_extra_target: bool = False

    @property
    def accelerated(self) -> bool:
        """Whether this group uses parallel image composition."""
        return self.mode is not GroupMode.DUPLICATE


def plan_group(group: CompositionGroup, config: SystemConfig,
               threshold: Optional[int] = None) -> GroupPlan:
    """Apply the Fig 7 workflow to one group."""
    limit = config.composition_threshold if threshold is None else threshold
    if group.num_triangles < limit:
        return GroupPlan(group=group, mode=GroupMode.DUPLICATE)
    if group.transparent:
        chunks = even_split_by_triangles(group.draws, config.num_gpus)
        return GroupPlan(group=group, mode=GroupMode.TRANSPARENT_PARALLEL,
                         chunks=chunks, needs_extra_target=True)
    from ..framebuffer.depth import is_order_independent
    if not group.depth_write or not is_order_independent(group.depth_func):
        # Without recorded depth (or with an order-dependent test like
        # EQUAL), opaque sub-images cannot be depth-composited out of order;
        # fall back to conventional duplication for safety.
        return GroupPlan(group=group, mode=GroupMode.DUPLICATE)
    return GroupPlan(group=group, mode=GroupMode.OPAQUE_PARALLEL)


def plan_frame(groups: List[CompositionGroup], config: SystemConfig,
               threshold: Optional[int] = None) -> List[GroupPlan]:
    """Plan every group of a frame."""
    return [plan_group(g, config, threshold) for g in groups]


def plan_trace_frame(trace, config: SystemConfig,
                     threshold: Optional[int] = None) -> List[GroupPlan]:
    """Group and plan a trace's frame, via the render service's store.

    The grouping + Fig 7 decisions depend only on the trace content, the
    GPU count and the composition threshold, so the plan is a cacheable
    artifact like any other: CHOPIN's functional prep, ``inspect`` and
    the experiments all share one computation per configuration.
    """
    from ..render import render_service
    from .grouping import split_into_groups

    limit = config.composition_threshold if threshold is None else threshold
    return render_service().cached(
        "plan",
        {"trace": trace.fingerprint, "num_gpus": config.num_gpus,
         "threshold": limit},
        lambda: plan_frame(split_into_groups(trace.frame), config, limit))


class PipelineWindow:
    """Bounded window of in-flight groups for one GPU (cross-group pipeline).

    A group is *in flight* from the moment its rendering finished until its
    composition completes; the window bounds how many such groups a GPU may
    hold concurrently (= how many sub-image buffers it keeps). The DES layer
    calls :meth:`push` with each group's composition-done event and waits on
    :meth:`admit_gate` before starting the next group's rendering:

    - ``depth=None`` — unbounded: composition always drains behind
      rendering (the paper's fully overlapped Fig 3 behaviour);
    - ``depth=1`` — the next group's rendering waits for the previous
      group's composition: a hard per-GPU group barrier;
    - ``depth=k`` — rendering runs at most ``k`` groups ahead of this GPU's
      own composition chain.

    Entries are events with a ``processed`` flag (duck-typed so the core
    tier stays independent of the sim kernel). Compositions complete in
    CGID order per GPU, so the head of the deque is always the oldest
    pending group.
    """

    def __init__(self, depth: Optional[int]) -> None:
        if depth is not None and depth < 1:
            raise ConfigError("pipeline window depth must be >= 1 (or None "
                              "for an unbounded window)")
        self.depth = depth
        self._pending: Deque = deque()
        #: groups pushed through the window over its lifetime
        self.admitted = 0
        #: admissions that found the window full (caller had to wait)
        self.stalls = 0

    def admit_gate(self):
        """Event to wait on before starting another group (None = go)."""
        while self._pending and self._pending[0].processed:
            self._pending.popleft()
        if self.depth is None or len(self._pending) < self.depth:
            return None
        self.stalls += 1
        return self._pending[0]

    def push(self, composition_done) -> None:
        """Register a freshly rendered group's composition-done event."""
        self._pending.append(composition_done)
        self.admitted += 1

    def pending(self) -> int:
        """Groups currently in flight (rendered, composition pending)."""
        while self._pending and self._pending[0].processed:
            self._pending.popleft()
        return len(self._pending)


@dataclass
class WorkflowSummary:
    """Coverage statistics of a frame plan (§VI-E's accelerated-group data)."""

    total_groups: int = 0
    accelerated_groups: int = 0
    duplicated_groups: int = 0
    accelerated_triangles: int = 0
    total_triangles: int = 0
    transparent_groups: int = 0
    reasons: List[str] = field(default_factory=list)

    @property
    def triangle_coverage(self) -> float:
        """Fraction of primitives in accelerated groups (92.44% at 4096)."""
        if self.total_triangles == 0:
            return 0.0
        return self.accelerated_triangles / self.total_triangles


def summarize_plan(plans: List[GroupPlan]) -> WorkflowSummary:
    summary = WorkflowSummary()
    for plan in plans:
        summary.total_groups += 1
        summary.total_triangles += plan.group.num_triangles
        summary.reasons.append(plan.group.boundary_reason)
        if plan.accelerated:
            summary.accelerated_groups += 1
            summary.accelerated_triangles += plan.group.num_triangles
        else:
            summary.duplicated_groups += 1
        if plan.mode is GroupMode.TRANSPARENT_PARALLEL:
            summary.transparent_groups += 1
    return summary
