"""The image composition scheduler (paper §IV-E, Fig 11/12, Table I).

Tracks per-GPU composition status in a table with exactly the paper's
fields:

=============  ====================================================
Field          Meaning
=============  ====================================================
CGID           Composition Group ID
Ready          Ready to compose with others?
Receiving      Receiving pixels from another GPU?
Sending        Sending pixels to another GPU?
SentGPUs       GPUs the sub-image has been sent to (bit vector)
ReceivedGPUs   GPUs we have composed with (bit vector)
=============  ====================================================

A pair (sender -> receiver) may start only when (Fig 12): both are Ready in
the same CGID, the receiver has not yet composed with that sender, the
sender is not Sending, and the receiver is not Receiving. For transparent
groups only *adjacent* partners (in the current reduction tree) are
eligible, since transparent sub-images cannot be composed fully
out-of-order (§II-D).

The table supports a *window* of in-flight composition groups: each row
carries its own CGID, so different GPUs may be composing different groups
concurrently (cross-group pipelining). Groups are admitted with
``open_group`` (optionally bounded by ``window``), rows move forward with
``advance`` — which fully resets the row, so no Sent/Received state can
leak from one group into the next — and ``retire_group`` frees the slot
once every participant finished. Pairing is safe across the window because
a GPU only advances past a group after exchanging with *all* of its
partners there: no remaining participant can still need it as a sender.
``start_group`` keeps the legacy single-active-group behaviour (reset every
row onto one CGID).

The scheduler is a passive table; the DES layer drives it through
``mark_ready`` / ``begin`` / ``complete`` and waits on ``wait_change``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.sanitizer import ACCESS_ARBITRATED
from ..errors import SchedulingError
from ..sim import Event, Simulator


@dataclass
class CompositionStatus:
    """One GPU's row in the scheduler table (paper Table I)."""

    cgid: int = 0
    ready: bool = False
    receiving: bool = False
    sending: bool = False
    sent_gpus: Set[int] = field(default_factory=set)
    received_gpus: Set[int] = field(default_factory=set)

    def reset(self) -> None:
        self.ready = False
        self.receiving = False
        self.sending = False
        self.sent_gpus.clear()
        self.received_gpus.clear()

    def size_bits(self, num_gpus: int, cgid_bits: int = 8) -> int:
        """Hardware cost of this row (§VI-F)."""
        return cgid_bits + 3 + 2 * num_gpus


class ImageCompositionScheduler:
    """Centralized pairing of GPUs for sub-image exchange."""

    def __init__(self, num_gpus: int,
                 sim: Optional[Simulator] = None,
                 window: Optional[int] = None) -> None:
        if num_gpus <= 0:
            raise SchedulingError("need at least one GPU")
        if window is not None and window < 1:
            raise SchedulingError("scheduler window must be >= 1 (or None "
                                  "for an unbounded in-flight group window)")
        self.num_gpus = num_gpus
        self.sim = sim
        self.table = [CompositionStatus() for _ in range(num_gpus)]
        #: bound on concurrently open CGIDs (None = unbounded)
        self.window = window
        #: in-flight CGIDs, in admission order
        self._open: List[int] = []
        #: per-CGID partner restriction (None entry = all-to-all)
        self._group_allowed: Dict[int, Optional[List[Set[int]]]] = {}
        #: fail-stopped GPUs, removed from every group's partner sets
        self._excluded: Set[int] = set()
        #: high-water mark of concurrently open groups (for RunStats)
        self.groups_peak = 0
        self._waiters: List[Event] = []

    def _record_table_access(self) -> None:
        """Report a scheduler-table mutation to the race sanitizer.

        Recorded as arbitrated: the table is a centralized arbiter whose
        pairing decisions are deterministic (sorted partner scan, FIFO
        notify), so same-cycle updates from several GPUs are the intended
        operating mode, not a race.
        """
        if self.sim is not None:
            self.sim.record_access("scheduler:table", ACCESS_ARBITRATED)

    # -- group window --------------------------------------------------------

    def open_group(self, cgid: int,
                   allowed_partners: Optional[List[Set[int]]] = None) -> None:
        """Admit a composition group into the in-flight window.

        Each open group carries its own partner restriction, so a fail-stop
        repair can narrow one in-flight group to its survivor set without
        touching the groups pipelined behind it.
        """
        if cgid in self._open:
            raise SchedulingError(f"group {cgid} is already in flight")
        if self.window is not None and len(self._open) >= self.window:
            raise SchedulingError(
                f"cannot open group {cgid}: window of {self.window} "
                f"in-flight groups is full ({self._open})")
        if allowed_partners is not None:
            if len(allowed_partners) != self.num_gpus:
                raise SchedulingError("allowed_partners must cover every GPU")
        self._open.append(cgid)
        self._group_allowed[cgid] = allowed_partners
        if len(self._open) > self.groups_peak:
            self.groups_peak = len(self._open)

    def retire_group(self, cgid: int) -> None:
        """Close a finished group, freeing its window slot."""
        if cgid not in self._open:
            raise SchedulingError(f"group {cgid} is not in flight")
        self._open.remove(cgid)
        del self._group_allowed[cgid]

    def advance(self, gpu: int, cgid: int) -> None:
        """Move one GPU's row to an open group, *fully* resetting it.

        The full reset is load-bearing: a row that kept its previous
        Sent/Received vectors across the CGID change would satisfy
        ``gpu_done`` for the new group without exchanging a single
        sub-image (the cross-group state leak this table historically
        avoided by being rebuilt per group).
        """
        if cgid not in self._open:
            raise SchedulingError(
                f"GPU{gpu} cannot advance to group {cgid}: not in flight")
        self._record_table_access()
        row = self.table[gpu]
        row.reset()
        row.cgid = cgid

    def in_flight(self) -> Tuple[int, ...]:
        """Currently open CGIDs, in admission order."""
        return tuple(self._open)

    # -- table driving -------------------------------------------------------

    def start_group(self, cgid: int,
                    allowed_partners: Optional[List[Set[int]]] = None) -> None:
        """Begin a new *sole* composition phase (legacy single-group mode):
        drops any in-flight groups and resets every row onto ``cgid``."""
        self._open.clear()
        self._group_allowed.clear()
        self.open_group(cgid, allowed_partners)
        for row in self.table:
            row.reset()
            row.cgid = cgid

    def mark_ready(self, gpu: int) -> None:
        """GPU finished its draws and generated its sub-image (Fig 12 step 1)."""
        row = self.table[gpu]
        if row.ready:
            raise SchedulingError(f"GPU{gpu} marked ready twice")
        self._record_table_access()
        row.ready = True
        self._notify()

    def partners_of(self, gpu: int) -> Set[int]:
        """Partner set of this GPU *in its row's current group*."""
        if gpu in self._excluded:
            return set()
        allowed = self._group_allowed.get(self.table[gpu].cgid)
        if allowed is not None:
            base = allowed[gpu]
        else:
            base = {g for g in range(self.num_gpus) if g != gpu}
        if self._excluded:
            return base - self._excluded
        return base

    def find_sender_for(self, receiver: int) -> Optional[int]:
        """A sender this receiver may compose with now (Fig 12 conditions)."""
        row = self.table[receiver]
        if not row.ready or row.receiving:
            return None
        for sender in sorted(self.partners_of(receiver)):
            remote = self.table[sender]
            if (remote.ready and remote.cgid == row.cgid
                    and sender not in row.received_gpus
                    and not remote.sending):
                return sender
        return None

    def begin(self, sender: int, receiver: int) -> None:
        """Claim the pair: set Sending/Receiving (Fig 12 step 4)."""
        s, r = self.table[sender], self.table[receiver]
        if s.sending or r.receiving:
            raise SchedulingError("pair members already busy")
        if sender in r.received_gpus:
            raise SchedulingError("pair already composed")
        self._record_table_access()
        s.sending = True
        r.receiving = True

    def complete(self, sender: int, receiver: int) -> None:
        """Transfer done: clear flags, record Sent/Received (Fig 12 step 5)."""
        s, r = self.table[sender], self.table[receiver]
        if not s.sending or not r.receiving:
            raise SchedulingError("completing a pair that never began")
        self._record_table_access()
        s.sending = False
        r.receiving = False
        s.sent_gpus.add(receiver)
        r.received_gpus.add(sender)
        self._notify()

    def exclude_gpu(self, gpu: int) -> None:
        """Drop a fail-stopped GPU from every partner set (degraded mode).

        The exclusion spans *every* in-flight group — a dead GPU is dead for
        the whole window. Its row keeps whatever state it had, but no
        survivor will be paired with it any more and its own partner set
        empties, so :meth:`gpu_done` holds for it trivially.
        """
        if not 0 <= gpu < self.num_gpus:
            raise SchedulingError(f"cannot exclude unknown GPU{gpu}")
        self._record_table_access()
        self._excluded.add(gpu)
        self._notify()

    def extend_partners(self, gpu: int, partners: Set[int]) -> None:
        """Widen a GPU's allowed partner set in its row's current group
        (tree reductions grow reach)."""
        allowed = self._group_allowed.get(self.table[gpu].cgid)
        if allowed is None:
            return
        allowed[gpu] = set(partners)
        self._notify()

    # -- completion tests ----------------------------------------------------

    def gpu_done(self, gpu: int) -> bool:
        """All sends and receives for this GPU's partner set finished."""
        row = self.table[gpu]
        partners = self.partners_of(gpu)
        return (row.sent_gpus >= partners and row.received_gpus >= partners)

    def all_done(self) -> bool:
        return all(self.gpu_done(g) for g in range(self.num_gpus))

    # -- DES integration -----------------------------------------------------

    def wait_change(self) -> Event:
        """Event fired at the next table state change."""
        if self.sim is None:
            raise SchedulingError("scheduler built without a simulator")
        event = Event(self.sim)
        self._waiters.append(event)
        return event

    def _notify(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    # -- hardware accounting ---------------------------------------------------

    def table_size_bytes(self, cgid_bits: int = 8) -> int:
        """Total scheduler storage (§VI-F: 27 bytes for 8 GPUs)."""
        bits = sum(row.size_bits(self.num_gpus, cgid_bits)
                   for row in self.table)
        return (bits + 7) // 8


def adjacency_pairs(num_gpus: int) -> List[Tuple[int, int]]:
    """The adjacent-pair reduction tree for transparent groups.

    Returns (sender, receiver) pairs level by level: at each level, odd-rank
    survivors send to their even-rank left neighbours; receivers survive to
    the next level. Senders and receivers are *adjacent* in submission order
    at every level, which is what associativity permits.
    """
    pairs: List[Tuple[int, int]] = []
    survivors = list(range(num_gpus))
    while len(survivors) > 1:
        next_level = []
        for i in range(0, len(survivors) - 1, 2):
            receiver, sender = survivors[i], survivors[i + 1]
            pairs.append((sender, receiver))
            next_level.append(receiver)
        if len(survivors) % 2 == 1:
            next_level.append(survivors[-1])
        survivors = next_level
    return pairs
