"""The image composition scheduler (paper §IV-E, Fig 11/12, Table I).

Tracks per-GPU composition status in a table with exactly the paper's
fields:

=============  ====================================================
Field          Meaning
=============  ====================================================
CGID           Composition Group ID
Ready          Ready to compose with others?
Receiving      Receiving pixels from another GPU?
Sending        Sending pixels to another GPU?
SentGPUs       GPUs the sub-image has been sent to (bit vector)
ReceivedGPUs   GPUs we have composed with (bit vector)
=============  ====================================================

A pair (sender -> receiver) may start only when (Fig 12): both are Ready in
the same CGID, the receiver has not yet composed with that sender, the
sender is not Sending, and the receiver is not Receiving. For transparent
groups only *adjacent* partners (in the current reduction tree) are
eligible, since transparent sub-images cannot be composed fully
out-of-order (§II-D).

The scheduler is a passive table; the DES layer drives it through
``mark_ready`` / ``begin`` / ``complete`` and waits on ``wait_change``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..analysis.sanitizer import ACCESS_ARBITRATED
from ..errors import SchedulingError
from ..sim import Event, Simulator


@dataclass
class CompositionStatus:
    """One GPU's row in the scheduler table (paper Table I)."""

    cgid: int = 0
    ready: bool = False
    receiving: bool = False
    sending: bool = False
    sent_gpus: Set[int] = field(default_factory=set)
    received_gpus: Set[int] = field(default_factory=set)

    def reset(self) -> None:
        self.ready = False
        self.receiving = False
        self.sending = False
        self.sent_gpus.clear()
        self.received_gpus.clear()

    def size_bits(self, num_gpus: int, cgid_bits: int = 8) -> int:
        """Hardware cost of this row (§VI-F)."""
        return cgid_bits + 3 + 2 * num_gpus


class ImageCompositionScheduler:
    """Centralized pairing of GPUs for sub-image exchange."""

    def __init__(self, num_gpus: int,
                 sim: Optional[Simulator] = None) -> None:
        if num_gpus <= 0:
            raise SchedulingError("need at least one GPU")
        self.num_gpus = num_gpus
        self.sim = sim
        self.table = [CompositionStatus() for _ in range(num_gpus)]
        #: partner restriction for the current group (None = all-to-all)
        self._allowed: Optional[List[Set[int]]] = None
        self._waiters: List[Event] = []

    def _record_table_access(self) -> None:
        """Report a scheduler-table mutation to the race sanitizer.

        Recorded as arbitrated: the table is a centralized arbiter whose
        pairing decisions are deterministic (sorted partner scan, FIFO
        notify), so same-cycle updates from several GPUs are the intended
        operating mode, not a race.
        """
        if self.sim is not None:
            self.sim.record_access("scheduler:table", ACCESS_ARBITRATED)

    # -- table driving -------------------------------------------------------

    def start_group(self, cgid: int,
                    allowed_partners: Optional[List[Set[int]]] = None) -> None:
        """Begin a new composition phase; optionally restrict partners."""
        if allowed_partners is not None:
            if len(allowed_partners) != self.num_gpus:
                raise SchedulingError("allowed_partners must cover every GPU")
        self._allowed = allowed_partners
        for row in self.table:
            row.reset()
            row.cgid = cgid

    def mark_ready(self, gpu: int) -> None:
        """GPU finished its draws and generated its sub-image (Fig 12 step 1)."""
        row = self.table[gpu]
        if row.ready:
            raise SchedulingError(f"GPU{gpu} marked ready twice")
        self._record_table_access()
        row.ready = True
        self._notify()

    def partners_of(self, gpu: int) -> Set[int]:
        if self._allowed is not None:
            return self._allowed[gpu]
        return {g for g in range(self.num_gpus) if g != gpu}

    def find_sender_for(self, receiver: int) -> Optional[int]:
        """A sender this receiver may compose with now (Fig 12 conditions)."""
        row = self.table[receiver]
        if not row.ready or row.receiving:
            return None
        for sender in sorted(self.partners_of(receiver)):
            remote = self.table[sender]
            if (remote.ready and remote.cgid == row.cgid
                    and sender not in row.received_gpus
                    and not remote.sending):
                return sender
        return None

    def begin(self, sender: int, receiver: int) -> None:
        """Claim the pair: set Sending/Receiving (Fig 12 step 4)."""
        s, r = self.table[sender], self.table[receiver]
        if s.sending or r.receiving:
            raise SchedulingError("pair members already busy")
        if sender in r.received_gpus:
            raise SchedulingError("pair already composed")
        self._record_table_access()
        s.sending = True
        r.receiving = True

    def complete(self, sender: int, receiver: int) -> None:
        """Transfer done: clear flags, record Sent/Received (Fig 12 step 5)."""
        s, r = self.table[sender], self.table[receiver]
        if not s.sending or not r.receiving:
            raise SchedulingError("completing a pair that never began")
        self._record_table_access()
        s.sending = False
        r.receiving = False
        s.sent_gpus.add(receiver)
        r.received_gpus.add(sender)
        self._notify()

    def exclude_gpu(self, gpu: int) -> None:
        """Drop a fail-stopped GPU from every partner set (degraded mode).

        The dead GPU's row keeps whatever state it had, but no survivor will
        be paired with it any more and its own partner set empties, so
        :meth:`gpu_done` holds for it trivially.
        """
        if not 0 <= gpu < self.num_gpus:
            raise SchedulingError(f"cannot exclude unknown GPU{gpu}")
        self._record_table_access()
        if self._allowed is None:
            self._allowed = [
                {p for p in range(self.num_gpus) if p != g}
                for g in range(self.num_gpus)]
        for partners in self._allowed:
            partners.discard(gpu)
        self._allowed[gpu] = set()
        self._notify()

    def extend_partners(self, gpu: int, partners: Set[int]) -> None:
        """Widen a GPU's allowed partner set (tree reductions grow reach)."""
        if self._allowed is None:
            return
        self._allowed[gpu] = set(partners)
        self._notify()

    # -- completion tests ----------------------------------------------------

    def gpu_done(self, gpu: int) -> bool:
        """All sends and receives for this GPU's partner set finished."""
        row = self.table[gpu]
        partners = self.partners_of(gpu)
        return (row.sent_gpus >= partners and row.received_gpus >= partners)

    def all_done(self) -> bool:
        return all(self.gpu_done(g) for g in range(self.num_gpus))

    # -- DES integration -----------------------------------------------------

    def wait_change(self) -> Event:
        """Event fired at the next table state change."""
        if self.sim is None:
            raise SchedulingError("scheduler built without a simulator")
        event = Event(self.sim)
        self._waiters.append(event)
        return event

    def _notify(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    # -- hardware accounting ---------------------------------------------------

    def table_size_bytes(self, cgid_bits: int = 8) -> int:
        """Total scheduler storage (§VI-F: 27 bytes for 8 GPUs)."""
        bits = sum(row.size_bits(self.num_gpus, cgid_bits)
                   for row in self.table)
        return (bits + 7) // 8


def adjacency_pairs(num_gpus: int) -> List[Tuple[int, int]]:
    """The adjacent-pair reduction tree for transparent groups.

    Returns (sender, receiver) pairs level by level: at each level, odd-rank
    survivors send to their even-rank left neighbours; receivers survive to
    the next level. Senders and receivers are *adjacent* in submission order
    at every level, which is what associativity permits.
    """
    pairs: List[Tuple[int, int]] = []
    survivors = list(range(num_gpus))
    while len(survivors) > 1:
        next_level = []
        for i in range(0, len(survivors) - 1, 2):
            receiver, sender = survivors[i], survivors[i + 1]
            pairs.append((sender, receiver))
            next_level.append(receiver)
        if len(survivors) % 2 == 1:
            next_level.append(survivors[-1])
        survivors = next_level
    return pairs
