"""Composition-group splitting (paper §IV-A).

CHOPIN's software layer walks the frame's draw commands greedily (the paper
assumes Immediate Mode Rendering, so commands are never reordered) and
inserts a group boundary between two adjacent draws on any of:

1. swapping to the next frame             (implicit: one frame per call);
2. switching render target or depth buffer;
3. enabling/disabling depth-buffer updates;
4. changing the fragment occlusion (depth) test function;
5. changing the pixel composition (blend) operator.

Every draw inside a group therefore shares render target, depth buffer,
depth-write mode, depth function, and blend operator — the preconditions for
reordering/associative composition within the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SchedulingError
from ..geometry.primitives import BlendOp, DepthFunc, DrawCommand
from ..traces.trace import Frame

#: boundary-reason labels (why the *previous* group ended)
BOUNDARY_FRAME = "frame-swap"
BOUNDARY_TARGET = "render-target-or-depth-buffer-switch"
BOUNDARY_DEPTH_WRITE = "depth-write-toggle"
BOUNDARY_DEPTH_FUNC = "depth-func-change"
BOUNDARY_BLEND_OP = "blend-op-change"


@dataclass
class CompositionGroup:
    """A maximal run of draw commands with compatible composition state."""

    index: int
    draws: List[DrawCommand] = field(default_factory=list)
    boundary_reason: str = BOUNDARY_FRAME

    @property
    def num_draws(self) -> int:
        return len(self.draws)

    @property
    def num_triangles(self) -> int:
        return sum(d.num_triangles for d in self.draws)

    @property
    def transparent(self) -> bool:
        return self.draws[0].transparent

    @property
    def blend_op(self) -> BlendOp:
        return self.draws[0].state.blend_op

    @property
    def depth_func(self) -> DepthFunc:
        return self.draws[0].state.depth_func

    @property
    def render_target(self) -> int:
        return self.draws[0].state.render_target

    @property
    def depth_buffer(self) -> int:
        return self.draws[0].state.depth_buffer

    @property
    def depth_write(self) -> bool:
        return self.draws[0].state.depth_write

    def validate(self) -> None:
        """Every draw must share the group-defining state fields."""
        if not self.draws:
            raise SchedulingError(f"group {self.index} is empty")
        head = self.draws[0].state
        for draw in self.draws[1:]:
            state = draw.state
            same = (state.render_target == head.render_target
                    and state.depth_buffer == head.depth_buffer
                    and state.depth_write == head.depth_write
                    and state.depth_func == head.depth_func
                    and state.blend_op == head.blend_op)
            if not same:
                raise SchedulingError(
                    f"group {self.index}: draw {draw.draw_id} state differs")


def boundary_reason(prev: DrawCommand, nxt: DrawCommand) -> Optional[str]:
    """The §IV-A event splitting ``prev`` and ``nxt``, or None."""
    a, b = prev.state, nxt.state
    if a.render_target != b.render_target or a.depth_buffer != b.depth_buffer:
        return BOUNDARY_TARGET
    if a.depth_write != b.depth_write:
        return BOUNDARY_DEPTH_WRITE
    if a.depth_func != b.depth_func:
        return BOUNDARY_DEPTH_FUNC
    if a.blend_op != b.blend_op:
        return BOUNDARY_BLEND_OP
    return None


def split_into_groups(frame: Frame) -> List[CompositionGroup]:
    """Greedy grouping of one frame's draw list (CompGroupStart/End points)."""
    if not frame.draws:
        return []
    groups: List[CompositionGroup] = []
    current = CompositionGroup(index=0, draws=[frame.draws[0]])
    for draw in frame.draws[1:]:
        reason = boundary_reason(current.draws[-1], draw)
        if reason is None:
            current.draws.append(draw)
        else:
            groups.append(current)
            current = CompositionGroup(index=len(groups), draws=[draw],
                                       boundary_reason=reason)
    groups.append(current)
    for group in groups:
        group.validate()
    return groups
