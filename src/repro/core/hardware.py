"""Hardware-cost and scheduler-traffic models (paper §VI-D and §VI-F).

The paper's numbers for an 8-GPU system:

- draw-command scheduler table: 2 fields x 64 bits x 8 entries = **128 B**;
- image-composition scheduler table: per entry 8-bit CGID + 3 flag bits +
  two 8-bit GPU vectors -> 8 x 27 bits = 216 bits = **27 B**;
- draw-scheduler update traffic: one 4 B message per ``update_interval``
  triangles (4 KB per million triangles at interval 1024);
- composition-scheduler traffic: per GPU, one request + one response per
  partner plus one pair for the background: ``(n + n) * n * 4 = 512 B``.
"""

from __future__ import annotations

from ..errors import ConfigError

#: field widths the paper assumes
DRAW_SCHED_FIELD_BITS = 64
CGID_BITS = 8
MESSAGE_BYTES = 4


def draw_scheduler_size_bytes(num_gpus: int,
                              field_bits: int = DRAW_SCHED_FIELD_BITS) -> int:
    """Bytes of draw-scheduler table storage (two counters per GPU)."""
    if num_gpus <= 0:
        raise ConfigError("num_gpus must be positive")
    return num_gpus * 2 * field_bits // 8


def composition_scheduler_size_bytes(num_gpus: int,
                                     cgid_bits: int = CGID_BITS) -> int:
    """Bytes of composition-scheduler table storage (Table I fields)."""
    if num_gpus <= 0:
        raise ConfigError("num_gpus must be positive")
    bits_per_entry = cgid_bits + 3 + 2 * num_gpus
    return (num_gpus * bits_per_entry + 7) // 8


def draw_scheduler_traffic_bytes(total_triangles: int,
                                 update_interval: int = 1,
                                 message_bytes: int = MESSAGE_BYTES) -> int:
    """Progress-update traffic for a workload of ``total_triangles``."""
    if update_interval <= 0:
        raise ConfigError("update interval must be positive")
    messages = (total_triangles + update_interval - 1) // update_interval
    return messages * message_bytes


def composition_scheduler_traffic_bytes(
        num_gpus: int, message_bytes: int = MESSAGE_BYTES) -> int:
    """Ready/grant notification traffic for one composition phase.

    Each GPU exchanges a request/response pair per partner (n-1 partners)
    plus one pair for the background merge — the paper rounds this to
    ``(n + n) * n * message_bytes``.
    """
    if num_gpus <= 0:
        raise ConfigError("num_gpus must be positive")
    return (num_gpus + num_gpus) * num_gpus * message_bytes
