"""The paper's benchmark suite (Table III), as synthetic-trace specs.

=================================  ======  ===========  =======  ==========
Benchmark                          Abbr.   Resolution   # Draws  # Triangles
=================================  ======  ===========  =======  ==========
Call of Duty 2                     cod2    640 x 480     1005      219,950
Crysis                             cry     800 x 600     1427      800,948
GRID                               grid    1280 x 1024   2623      466,806
Mirror's Edge                      mirror  1280 x 1024   1257      381,422
Need for Speed: Undercover         nfs     1280 x 1024   1858      534,121
S.T.A.L.K.E.R.: Call of Pripyat    stal    1280 x 1024   1086      546,733
Unreal Tournament 3                ut3     1280 x 1024   1944      630,302
Wolfenstein                        wolf    640 x 480     1697      243,052
=================================  ======  ===========  =======  ==========

Per-benchmark personality knobs reflect behaviour the paper reports — e.g.
``grid`` has "many large triangles that cover big screen regions" (§VI-C),
which drives its outsized composition traffic, and ``ut3`` has the largest
depth-test sensitivity (Fig 15/16). Traces are generated at a chosen
:class:`~repro.traces.synthetic.TraceScale` and cached.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import TraceError
from .synthetic import SCALES, TraceScale, TraceSpec, synthesize
from .trace import Trace

TABLE3: Dict[str, TraceSpec] = {
    "cod2": TraceSpec(
        name="cod2", width=640, height=480, num_draws=1005,
        num_triangles=219_950, seed=0xC0D2,
        num_clusters=36, overdraw=4.0),
    "cry": TraceSpec(
        name="cry", width=800, height=600, num_draws=1427,
        num_triangles=800_948, seed=0xC47,
        num_clusters=48, overdraw=4.5, vertex_cost_log_sigma=0.8),
    "grid": TraceSpec(
        name="grid", width=1280, height=1024, num_draws=2623,
        num_triangles=466_806, seed=0x641D,
        num_clusters=32, overdraw=5.0, big_triangle_fraction=0.18),
    "mirror": TraceSpec(
        name="mirror", width=1280, height=1024, num_draws=1257,
        num_triangles=381_422, seed=0x312202,
        num_clusters=40, overdraw=3.5),
    "nfs": TraceSpec(
        name="nfs", width=1280, height=1024, num_draws=1858,
        num_triangles=534_121, seed=0x2F5,
        num_clusters=44, overdraw=4.0, transparent_fraction=0.07),
    "stal": TraceSpec(
        name="stal", width=1280, height=1024, num_draws=1086,
        num_triangles=546_733, seed=0x57A1,
        num_clusters=40, overdraw=4.0),
    "ut3": TraceSpec(
        name="ut3", width=1280, height=1024, num_draws=1944,
        num_triangles=630_302, seed=0x073,
        num_clusters=56, overdraw=5.5, early_z_disabled_fraction=0.08,
        cluster_spread=0.22),
    "wolf": TraceSpec(
        name="wolf", width=640, height=480, num_draws=1697,
        num_triangles=243_052, seed=0x301F,
        num_clusters=40, overdraw=4.0),
}

BENCHMARK_NAMES: Tuple[str, ...] = tuple(TABLE3)

_CACHE: Dict[Tuple[str, str], Trace] = {}


def load_benchmark(name: str, scale: str = "tiny") -> Trace:
    """Generate (or fetch from cache) one Table III benchmark trace."""
    if name not in TABLE3:
        raise TraceError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}")
    if scale not in SCALES:
        raise TraceError(f"unknown scale {scale!r}; choose from {list(SCALES)}")
    key = (name, scale)
    if key not in _CACHE:
        spec = SCALES[scale].apply(TABLE3[name])
        trace = synthesize(spec)
        trace.metadata["scale"] = scale
        _CACHE[key] = trace
    return _CACHE[key]


def load_benchmark_variant(name: str, scale: str = "tiny",
                           seed_offset: int = 0) -> Trace:
    """A re-seeded variant of a benchmark (same statistics, new sample).

    Used by the seed-sensitivity study: conclusions should not hinge on one
    particular random draw of the synthetic generator.
    """
    if seed_offset == 0:
        return load_benchmark(name, scale)
    if name not in TABLE3:
        raise TraceError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}")
    key = (name, scale, seed_offset)
    if key not in _CACHE:
        from dataclasses import replace
        spec = SCALES[scale].apply(
            replace(TABLE3[name], seed=TABLE3[name].seed + seed_offset))
        trace = synthesize(spec)
        trace.metadata["scale"] = scale
        trace.metadata["seed_offset"] = seed_offset
        _CACHE[key] = trace
    return _CACHE[key]


def load_suite(scale: str = "tiny",
               names: Tuple[str, ...] = BENCHMARK_NAMES) -> List[Trace]:
    """The full (or a named subset of the) benchmark suite."""
    return [load_benchmark(name, scale) for name in names]


def scale_for(scale: str) -> TraceScale:
    if scale not in SCALES:
        raise TraceError(f"unknown scale {scale!r}; choose from {list(SCALES)}")
    return SCALES[scale]


def clear_cache() -> None:
    """Drop cached traces (tests use this to control memory)."""
    _CACHE.clear()
