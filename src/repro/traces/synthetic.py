"""Synthetic game-trace generator.

The paper evaluates on single-frame traces captured from eight games
(Table III). Those traces are not redistributable, so we synthesize traces
with the same *statistics*, which is what the evaluation actually exercises:

- matching resolution, draw count, and triangle count;
- a **bimodal** per-draw triangle distribution (few-triangle background/UI
  draws vs. many-triangle object draws — the reason the composition-group
  threshold works, §VI-E);
- **spatial clustering** of objects (the source of inter-GPU load imbalance
  that the draw-command scheduler addresses, §IV-D);
- **front-to-back** opaque submission (what makes early-Z effective and what
  CHOPIN partially loses across GPUs, §VI-B), with back-to-front transparent
  draws at the end of the frame;
- per-draw shader cost variation (the reason static rendering-time estimates
  fail, Fig 9);
- state-change events (render-target switches, depth-write toggles, depth
  function and blend-operator changes) that induce composition-group
  boundaries (§IV-A events 1-5).

Everything is seeded and deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import TraceError
from ..geometry.primitives import (BlendOp, DepthFunc, DrawCommand,
                                   RenderState)
from .trace import Frame, Trace


@dataclass(frozen=True)
class TraceSpec:
    """Generator parameters for one synthetic benchmark trace."""

    name: str
    width: int
    height: int
    num_draws: int
    num_triangles: int
    seed: int
    #: fraction of draws that are transparent (games: a small fraction, §IV-C)
    transparent_fraction: float = 0.05
    #: fraction of transparent draws using ADDITIVE instead of OVER
    additive_fraction: float = 0.2
    #: fraction of draws that are tiny (UI / background, 2-8 triangles)
    tiny_draw_fraction: float = 0.25
    #: spatial clusters objects gather in (load-imbalance knob)
    num_clusters: int = 40
    cluster_spread: float = 0.35
    draw_spread: float = 0.10
    #: target total fragments / screen pixels for opaque object draws
    overdraw: float = 4.0
    #: fraction of object draws with 8x-larger triangles (grid's big-triangle
    #: behaviour, §VI-C)
    big_triangle_fraction: float = 0.0
    #: render-target switch events per frame (§IV-A event 2)
    rt_switches: int = 3
    num_render_targets: int = 3
    #: depth-write toggle runs per frame (§IV-A event 3)
    depth_toggle_events: int = 2
    #: depth-function change runs per frame (§IV-A event 4)
    depth_func_events: int = 1
    #: draws whose shader disables the early depth test (Fig 15 "other" bars)
    early_z_disabled_fraction: float = 0.05
    #: geometry-stage cycles per triangle, lognormal parameters (Fig 9)
    vertex_cost_log_mean: float = math.log(36.0)
    vertex_cost_log_sigma: float = 0.8
    #: fragment-shading cycles per fragment, lognormal parameters
    pixel_cost_log_mean: float = math.log(110.0)
    pixel_cost_log_sigma: float = 0.7
    #: multiplies vertex costs; used by scaling to preserve the
    #: geometry:fragment cycle ratio when triangles shrink faster than pixels
    cost_multiplier: float = 1.0
    #: distinct texture ids used by object draws (0 = untextured only)
    num_textures: int = 4


@dataclass(frozen=True)
class TraceScale:
    """Down-scaling of a paper-sized trace to keep Python runtimes sane.

    Triangles shrink by ``triangle_divisor``, draws by ``draw_divisor``, and
    each resolution axis by ``resolution_divisor``. Vertex costs are
    multiplied by ``triangle_divisor / resolution_divisor**2`` so that the
    aggregate geometry:fragment cycle ratio — which Fig 2/13/14 depend on —
    is preserved.
    """

    name: str
    triangle_divisor: int = 1
    draw_divisor: int = 1
    resolution_divisor: int = 1

    @property
    def cost_multiplier(self) -> float:
        return self.triangle_divisor / self.resolution_divisor ** 2

    def tile_size(self, base: int = 64) -> int:
        return max(4, base // self.resolution_divisor)

    def composition_threshold(self, base: int = 4096) -> int:
        return max(8, base // self.triangle_divisor)

    def draw_issue_cost(self, base: float = 50.0) -> float:
        """Driver cycles per issued draw. Draws shrink by draw_divisor while
        frame cycles shrink by resolution_divisor**2; rescale so the driver
        issue overhead keeps its paper-scale share of the frame."""
        return base * self.draw_divisor / self.resolution_divisor ** 2

    def primitive_id_bytes(self, base: int = 4) -> int:
        """Primitive IDs shrink with triangles but compute shrinks with
        pixels; scale the per-ID wire size to keep GPUpd's distribution
        weight (Fig 4) invariant under trace scaling."""
        return max(1, round(base * self.cost_multiplier))

    def apply(self, spec: TraceSpec) -> TraceSpec:
        from dataclasses import replace
        return replace(
            spec,
            width=max(32, spec.width // self.resolution_divisor),
            height=max(32, spec.height // self.resolution_divisor),
            num_draws=max(12, spec.num_draws // self.draw_divisor),
            num_triangles=max(200, spec.num_triangles // self.triangle_divisor),
            cost_multiplier=spec.cost_multiplier * self.cost_multiplier,
        )


SCALES = {
    "paper": TraceScale("paper", 1, 1, 1),
    "small": TraceScale("small", 16, 2, 2),
    "tiny": TraceScale("tiny", 64, 4, 4),
}


def synthesize(spec: TraceSpec) -> Trace:
    """Generate a single-frame trace from ``spec`` (deterministic in seed)."""
    if spec.num_draws < 8:
        raise TraceError("need at least 8 draws for a plausible frame")
    min_triangles = 2 * spec.num_draws  # unit: triangles # 2 per draw
    if spec.num_triangles < min_triangles:
        raise TraceError("need at least 2 triangles per draw on average")
    rng = np.random.default_rng(spec.seed)
    builder = _FrameBuilder(spec, rng)
    frame = builder.build()
    trace = Trace(name=spec.name, width=spec.width, height=spec.height,
                  frames=[frame],
                  metadata={"seed": spec.seed, "spec": spec})
    trace.validate()
    actual = trace.num_triangles
    if actual != spec.num_triangles:
        raise TraceError(
            f"generator bug: {actual} triangles, wanted {spec.num_triangles}")
    return trace


class _FrameBuilder:
    """Stateful helper that assembles one frame's draw list."""

    def __init__(self, spec: TraceSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        self.next_draw_id = 0
        self.clusters = rng.uniform(-0.75, 0.75, size=(spec.num_clusters, 2))

    def build(self) -> Frame:
        spec = self.spec
        n_transparent = max(1, int(round(spec.num_draws
                                         * spec.transparent_fraction)))
        n_tiny = max(1, int(round(spec.num_draws * spec.tiny_draw_fraction)))
        n_background = 1
        n_object = spec.num_draws - n_transparent - n_tiny - n_background
        if n_object < 4:
            raise TraceError("draw budget too small for object draws")

        tri_budget = spec.num_triangles - 2 * n_background
        tiny_counts = self.rng.integers(2, 9, size=n_tiny)
        tri_budget -= int(tiny_counts.sum())
        object_counts = self._partition_triangles(
            tri_budget, n_object + n_transparent)
        opaque_counts = object_counts[:n_object]
        transparent_counts = object_counts[n_object:]

        draws: List[DrawCommand] = [self._background()]
        draws.extend(self._object_draws(opaque_counts))
        self._apply_state_events(draws)
        draws.extend(self._tiny_draws(tiny_counts))
        draws.extend(self._transparent_draws(transparent_counts))
        return Frame(draws=draws)

    # -- draw-count partitioning -------------------------------------------

    def _partition_triangles(self, total: int, parts: int) -> np.ndarray:
        """Lognormal weights, integerized to sum exactly to ``total``."""
        weights = self.rng.lognormal(0.0, 1.3, size=parts)
        raw = weights / weights.sum() * (total - parts)
        counts = np.floor(raw).astype(int) + 1
        deficit = total - int(counts.sum())
        # Distribute the rounding remainder over the largest draws.
        order = np.argsort(-raw)
        for i in range(abs(deficit)):
            counts[order[i % parts]] += 1 if deficit > 0 else -1
        counts = np.maximum(counts, 1)
        # Final exact fix-up on the largest draw.
        counts[order[0]] += total - int(counts.sum())
        if counts.min() < 1 or int(counts.sum()) != total:
            raise TraceError("triangle partitioning failed")
        return counts

    # -- draw constructors ---------------------------------------------------

    def _take_id(self) -> int:
        draw_id = self.next_draw_id
        self.next_draw_id += 1
        return draw_id

    def _costs(self) -> tuple:
        """Correlated per-draw shader costs.

        A draw's material complexity drives both its vertex and pixel
        shaders, so the two costs share a common lognormal factor. This is
        what makes the geometry-stage triangle rate track the whole-pipeline
        triangle rate (paper Fig 9) — and hence what makes remaining-triangle
        feedback a usable load estimate for the draw-command scheduler.
        """
        spec = self.spec
        complexity = self.rng.lognormal(0.0, 0.55)
        vertex = float(np.clip(
            math.exp(spec.vertex_cost_log_mean) * complexity
            * self.rng.lognormal(0.0, spec.vertex_cost_log_sigma / 2),
            8.0, 2000.0)) * spec.cost_multiplier
        pixel = float(np.clip(
            math.exp(spec.pixel_cost_log_mean) * complexity
            * self.rng.lognormal(0.0, spec.pixel_cost_log_sigma / 2),
            8.0, 600.0))
        return vertex, pixel

    def _texture(self) -> Optional[int]:
        if self.spec.num_textures == 0 or self.rng.random() < 0.6:
            return None
        return int(self.rng.integers(0, self.spec.num_textures))

    def _background(self) -> DrawCommand:
        """Full-screen sky/backdrop: 2 triangles at the far plane."""
        color = self.rng.uniform(0.05, 0.35, size=3)
        quad = _quad(-1.0, -1.0, 1.0, 1.0, depth=0.998)
        colors = np.tile(np.append(color, 1.0).astype(np.float32), (2, 3, 1))
        return DrawCommand(draw_id=self._take_id(), positions=quad,
                           colors=colors,
                           state=RenderState(),
                           vertex_cost=40.0 * self.spec.cost_multiplier,
                           pixel_cost=1.0)

    def _draw_geometry(self, count: int, big: bool) -> tuple:
        """(footprint sigma, triangle edge) in NDC for a ``count``-triangle
        draw.

        Real scenes put most overdraw *inside* a draw (a mesh overlapping
        itself) while different draws cover mostly disjoint screen areas —
        which is why early-Z culling loses little when draws move to
        different GPUs (paper Fig 15: only 3-7% extra fragments). We model
        that: each draw gets a footprint proportional to its triangle share,
        and its triangles stack ``overdraw`` layers deep inside it.
        """
        spec = self.spec
        share = count / max(spec.num_triangles, 1)
        screen_area_ndc = 4.0  # [-1, 1]^2
        # Footprints cover ~75% of the screen between them (a bit of slack
        # keeps inter-draw overlap — the occlusion CHOPIN loses — rare),
        # while triangle sizes keep the nominal overdraw in total fragments.
        footprint_area = screen_area_ndc * share * 0.75
        tri_area = spec.overdraw * screen_area_ndc * share / max(count, 1)
        edge = math.sqrt(tri_area)
        if big:
            edge *= 4.0
        # Triangle centres spread over a half-extent such that the draw's
        # *effective* square — centre spread plus triangle size — matches the
        # footprint; otherwise small draws with relatively large triangles
        # would sprawl far past their share of the screen.
        half_extent = max((math.sqrt(footprint_area) - 2.0 * edge) / 2.0, 0.0)
        return half_extent, max(edge, 0.004)

    def _make_mesh(self, count: int, center: np.ndarray, depth: float,
                   edge: float, depth_jitter: float = 0.02,
                   spread: Optional[float] = None) -> tuple:
        """Clustered triangle soup around ``center`` at roughly ``depth``."""
        rng = self.rng
        if spread is None:
            centers = rng.normal(center, self.spec.draw_spread,
                                 size=(count, 2))
        else:
            # Bounded footprint: uniform placement inside the half-extent.
            centers = center + rng.uniform(-spread, spread, size=(count, 2))
        centers = np.clip(centers, -0.98, 0.98)
        offsets = rng.normal(0.0, edge, size=(count, 2, 2))
        verts = np.empty((count, 3, 3), dtype=np.float32)
        verts[:, 0, :2] = centers
        verts[:, 1, :2] = centers + offsets[:, 0]
        verts[:, 2, :2] = centers + offsets[:, 1]
        tri_depth = np.clip(
            depth + rng.normal(0.0, depth_jitter, size=(count, 1)),
            0.001, 0.995).astype(np.float32)
        verts[:, :, 2] = tri_depth  # flat triangles: same depth per triangle
        base = rng.uniform(0.15, 0.95, size=3)
        colors = np.empty((count, 3, 4), dtype=np.float32)
        colors[..., :3] = np.clip(
            base + rng.normal(0.0, 0.08, size=(count, 3, 3)), 0.0, 1.0)
        colors[..., 3] = 1.0
        return verts, colors

    def _object_draws(self, counts: np.ndarray) -> List[DrawCommand]:
        """Opaque scene geometry, submitted front-to-back."""
        spec = self.spec
        n = len(counts)
        # Front-to-back with noise: sorted depths, then locally shuffled.
        depths = np.sort(self.rng.uniform(0.05, 0.95, size=n))
        depths = np.clip(
            depths + self.rng.normal(0.0, 0.03, size=n), 0.01, 0.97)
        # Big-triangle draws model sky/road/terrain geometry: submitted
        # *early* (like a skybox) but at *far* depth. They cover many screen
        # tiles — grid's outsized composition traffic (§VI-C) — yet neither
        # occlude nor get occluded much, so depth-culling behaviour is
        # barely affected (grid is unremarkable in the paper's Fig 15).
        n_big = int(round(n * spec.big_triangle_fraction))
        big_flags = np.zeros(n, dtype=bool)
        if n_big:
            big_flags[:n_big] = True
            depths[:n_big] = np.sort(
                self.rng.uniform(0.85, 0.97, size=n_big))

        draws = []
        for i, count in enumerate(counts):
            cluster = self.clusters[self.rng.integers(0, spec.num_clusters)]
            center = np.clip(
                cluster + self.rng.normal(0.0, spec.cluster_spread, size=2),
                -0.9, 0.9)
            sigma, edge = self._draw_geometry(int(count), bool(big_flags[i]))
            verts, colors = self._make_mesh(
                int(count), center, float(depths[i]), edge, spread=sigma)
            vertex_cost, pixel_cost = self._costs()
            early_z = self.rng.random() >= spec.early_z_disabled_fraction
            draws.append(DrawCommand(
                draw_id=self._take_id(), positions=verts, colors=colors,
                state=RenderState(early_z=early_z),
                vertex_cost=vertex_cost, pixel_cost=pixel_cost,
                texture_id=self._texture()))
        return draws

    def _apply_state_events(self, draws: List[DrawCommand]) -> None:
        """Inject RT switches, depth-write toggles, depth-func changes.

        Each event converts a short run of consecutive object draws, creating
        the §IV-A group boundaries. Mutates draw states in place (index 0 is
        the background and is left alone).
        """
        from dataclasses import replace as dc_replace
        spec = self.spec
        n = len(draws)
        if n < 10:
            return

        def pick_run(run_len: int) -> range:
            start = int(self.rng.integers(1, max(2, n - run_len)))
            return range(start, min(start + run_len, n))

        for _ in range(spec.rt_switches):
            rt = int(self.rng.integers(1, max(2, spec.num_render_targets)))
            for i in pick_run(int(self.rng.integers(2, 6))):
                draws[i].state = dc_replace(
                    draws[i].state, render_target=rt, depth_buffer=rt)
        for _ in range(spec.depth_toggle_events):
            for i in pick_run(int(self.rng.integers(2, 5))):
                draws[i].state = dc_replace(draws[i].state, depth_write=False)
        for _ in range(spec.depth_func_events):
            for i in pick_run(int(self.rng.integers(2, 5))):
                draws[i].state = dc_replace(
                    draws[i].state, depth_func=DepthFunc.LEQUAL)

    def _tiny_draws(self, counts: np.ndarray) -> List[DrawCommand]:
        """UI / decal draws: very few triangles, near the camera."""
        draws = []
        for count in counts:
            center = self.rng.uniform(-0.9, 0.9, size=2)
            verts, colors = self._make_mesh(
                int(count), center, depth=float(self.rng.uniform(0.01, 0.05)),
                edge=0.04, depth_jitter=0.002)
            vertex_cost, pixel_cost = self._costs()
            draws.append(DrawCommand(
                draw_id=self._take_id(), positions=verts, colors=colors,
                state=RenderState(),
                vertex_cost=vertex_cost, pixel_cost=pixel_cost))
        return draws

    def _transparent_draws(self, counts: np.ndarray) -> List[DrawCommand]:
        """Transparent geometry at the end of the frame, back-to-front."""
        spec = self.spec
        n = len(counts)
        depths = np.sort(self.rng.uniform(0.1, 0.9, size=n))[::-1]
        n_additive = int(round(n * spec.additive_fraction))
        draws = []
        for i, count in enumerate(counts):
            # Additive draws (glow/particles) come last so each operator run
            # is contiguous -> one group per operator (§IV-A event 5).
            op = BlendOp.ADDITIVE if i >= n - n_additive else BlendOp.OVER
            cluster = self.clusters[self.rng.integers(0, spec.num_clusters)]
            center = np.clip(
                cluster + self.rng.normal(0.0, spec.cluster_spread, size=2),
                -0.9, 0.9)
            sigma, edge = self._draw_geometry(int(count), big=False)
            verts, colors = self._make_mesh(
                int(count), center, float(depths[i]), edge * 1.5,
                spread=sigma)
            alpha = float(self.rng.uniform(0.2, 0.6))
            if op is BlendOp.OVER:
                colors[..., :3] *= alpha  # premultiply
                colors[..., 3] = alpha
            else:
                colors[..., :3] *= 0.3    # additive glow intensity
                colors[..., 3] = 0.0
            vertex_cost, pixel_cost = self._costs()
            draws.append(DrawCommand(
                draw_id=self._take_id(), positions=verts, colors=colors,
                state=RenderState(depth_write=False, blend_op=op),
                vertex_cost=vertex_cost, pixel_cost=pixel_cost))
        return draws


def _quad(x0: float, y0: float, x1: float, y1: float,
          depth: float) -> np.ndarray:
    return np.array([
        [[x0, y0, depth], [x1, y0, depth], [x1, y1, depth]],
        [[x0, y0, depth], [x1, y1, depth], [x0, y1, depth]],
    ], dtype=np.float32)
