"""Workload traces: frames of draw commands, plus summary statistics.

A :class:`Trace` is what the paper calls a benchmark: one (or more) frames,
each a list of :class:`~repro.geometry.primitives.DrawCommand` in submission
order, at a fixed resolution. Traces are the input to every SFR scheme.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..errors import TraceError
from ..geometry.primitives import BlendOp, DrawCommand


@dataclass
class Frame:
    """One frame's draw commands, in submission order."""

    draws: List[DrawCommand] = field(default_factory=list)

    @property
    def num_draws(self) -> int:
        return len(self.draws)

    @property
    def num_triangles(self) -> int:
        return sum(d.num_triangles for d in self.draws)

    @property
    def num_transparent_draws(self) -> int:
        return sum(1 for d in self.draws if d.transparent)

    def __iter__(self) -> Iterator[DrawCommand]:
        return iter(self.draws)


@dataclass
class Trace:
    """A named workload at a fixed resolution."""

    name: str
    width: int
    height: int
    frames: List[Frame] = field(default_factory=list)
    #: generator metadata (seed, scale, target counts) for reproducibility
    metadata: Dict[str, object] = field(default_factory=dict)
    #: optional 4x4 model-view-projection matrix applied to every draw
    #: (None = geometry is already in NDC, the synthetic traces' convention)
    camera: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise TraceError("trace resolution must be positive")
        if self.camera is not None:
            self.camera = np.asarray(self.camera, dtype=np.float32)
            if self.camera.shape != (4, 4):
                raise TraceError("camera must be a 4x4 matrix")

    @property
    def frame(self) -> Frame:
        """The single frame of a single-frame trace (the paper's case)."""
        if len(self.frames) != 1:
            raise TraceError(
                f"trace {self.name!r} has {len(self.frames)} frames; "
                "use .frames for multi-frame traces")
        return self.frames[0]

    @property
    def num_draws(self) -> int:
        return sum(f.num_draws for f in self.frames)

    @property
    def num_triangles(self) -> int:
        return sum(f.num_triangles for f in self.frames)

    @property
    def resolution(self) -> str:
        return f"{self.width} x {self.height}"

    @property
    def fingerprint(self) -> str:
        """Content address of the trace: resolution, camera, every draw.

        The artifact store keys on this instead of ``id(trace)``, so
        cached work survives re-loading the same benchmark in another
        process (disk spill) while distinct traces can never collide.
        ``name`` and ``metadata`` are excluded — they do not affect
        rendering. Computed once and cached on the instance (traces are
        immutable by convention after construction).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            digest = hashlib.sha256()
            digest.update(f"{self.width}x{self.height}".encode())
            if self.camera is not None:
                digest.update(np.ascontiguousarray(self.camera).tobytes())
            for frame in self.frames:
                digest.update(b"|frame")
                for draw in frame.draws:
                    digest.update(
                        f"{draw.draw_id}:{draw.fingerprint}".encode())
            cached = digest.hexdigest()
            self.__dict__["_fingerprint"] = cached
        return cached

    def validate(self) -> None:
        """Consistency checks a well-formed trace must satisfy."""
        seen_ids = set()
        for frame in self.frames:
            for draw in frame.draws:
                if draw.draw_id in seen_ids:
                    raise TraceError(
                        f"duplicate draw id {draw.draw_id} in {self.name!r}")
                seen_ids.add(draw.draw_id)
                if draw.transparent and draw.state.depth_write:
                    raise TraceError(
                        f"draw {draw.draw_id}: transparent draws must not "
                        "write depth")

    def summary(self) -> Dict[str, object]:
        """The Table III row for this trace."""
        transparent = sum(f.num_transparent_draws for f in self.frames)
        return {
            "name": self.name,
            "resolution": self.resolution,
            "frames": len(self.frames),
            "draws": self.num_draws,
            "triangles": self.num_triangles,
            "transparent_draws": transparent,
        }


def triangle_histogram(trace: Trace, bins: List[int]) -> Dict[str, int]:
    """Histogram of per-draw triangle counts (bimodality check, §VI-E)."""
    edges = sorted(bins)
    counts = {f"<{edges[0]}": 0}
    for lo, hi in zip(edges, edges[1:]):
        counts[f"{lo}-{hi}"] = 0
    counts[f">={edges[-1]}"] = 0
    for frame in trace.frames:
        for draw in frame.draws:
            t = draw.num_triangles
            if t < edges[0]:
                counts[f"<{edges[0]}"] += 1
                continue
            if t >= edges[-1]:
                counts[f">={edges[-1]}"] += 1
                continue
            for lo, hi in zip(edges, edges[1:]):
                if lo <= t < hi:
                    counts[f"{lo}-{hi}"] += 1
                    break
    return counts


def transparent_runs(frame: Frame) -> List[List[DrawCommand]]:
    """Maximal runs of consecutive transparent draws sharing one operator."""
    runs: List[List[DrawCommand]] = []
    current: List[DrawCommand] = []
    current_op: BlendOp | None = None
    for draw in frame.draws:
        if draw.transparent and (not current or draw.state.blend_op is current_op):
            current.append(draw)
            current_op = draw.state.blend_op
        else:
            if current:
                runs.append(current)
            current = [draw] if draw.transparent else []
            current_op = draw.state.blend_op if draw.transparent else None
    if current:
        runs.append(current)
    return runs
