"""Trace serialization: save/load traces as compressed NPZ archives.

A trace file bundles, per draw, its vertex positions/colours and all
render-state fields as flat NumPy arrays, so loading never executes
anything but array slicing. The format is versioned; loaders reject
unknown versions rather than guessing.

    save_trace(trace, "cod2.npz")
    trace = load_trace("cod2.npz")
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Union

import numpy as np

from ..errors import TraceError
from ..geometry.primitives import (BlendOp, DepthFunc, DrawCommand,
                                   RenderState)
from .trace import Frame, Trace

FORMAT_VERSION = 1

_DEPTH_FUNCS = list(DepthFunc)
_BLEND_OPS = list(BlendOp)

PathLike = Union[str, pathlib.Path]


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write a trace to ``path`` as a compressed ``.npz`` archive."""
    draws: List[DrawCommand] = [d for frame in trace.frames
                                for d in frame.draws]
    frame_sizes = np.array([frame.num_draws for frame in trace.frames],
                           dtype=np.int64)
    tri_counts = np.array([d.num_triangles for d in draws], dtype=np.int64)
    if draws:
        positions = np.concatenate([d.positions.reshape(-1, 3, 3)
                                    for d in draws])
        colors = np.concatenate([d.colors.reshape(-1, 3, 4) for d in draws])
    else:
        positions = np.empty((0, 3, 3), dtype=np.float32)
        colors = np.empty((0, 3, 4), dtype=np.float32)

    def state_field(getter, dtype):
        return np.array([getter(d) for d in draws], dtype=dtype)

    header = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "width": trace.width,
        "height": trace.height,
        "metadata": {k: v for k, v in trace.metadata.items()
                     if isinstance(v, (str, int, float, bool))},
    }
    camera = (trace.camera if trace.camera is not None
              else np.zeros((0, 0), dtype=np.float32))
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"),
                             dtype=np.uint8),
        camera=camera,
        frame_sizes=frame_sizes,
        tri_counts=tri_counts,
        positions=positions.astype(np.float32),
        colors=colors.astype(np.float32),
        draw_ids=state_field(lambda d: d.draw_id, np.int64),
        vertex_costs=state_field(lambda d: d.vertex_cost, np.float64),
        pixel_costs=state_field(lambda d: d.pixel_cost, np.float64),
        texture_ids=state_field(
            lambda d: -1 if d.texture_id is None else d.texture_id,
            np.int64),
        render_targets=state_field(lambda d: d.state.render_target,
                                   np.int64),
        depth_buffers=state_field(lambda d: d.state.depth_buffer, np.int64),
        depth_writes=state_field(lambda d: d.state.depth_write, np.bool_),
        early_z=state_field(lambda d: d.state.early_z, np.bool_),
        depth_funcs=state_field(
            lambda d: _DEPTH_FUNCS.index(d.state.depth_func), np.int64),
        blend_ops=state_field(
            lambda d: _BLEND_OPS.index(d.state.blend_op), np.int64),
    )


def load_trace(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}")
    try:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
    except (KeyError, ValueError) as exc:
        raise TraceError(f"{path} is not a trace file: {exc}")
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {header.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})")

    tri_counts = archive["tri_counts"]
    positions = archive["positions"]
    colors = archive["colors"]
    offsets = np.concatenate([[0], np.cumsum(tri_counts)])
    if offsets[-1] != positions.shape[0]:
        raise TraceError(f"{path}: triangle data does not match counts")

    draws: List[DrawCommand] = []
    for i, count in enumerate(tri_counts):
        lo, hi = offsets[i], offsets[i + 1]
        texture = int(archive["texture_ids"][i])
        draws.append(DrawCommand(
            draw_id=int(archive["draw_ids"][i]),
            positions=positions[lo:hi],
            colors=colors[lo:hi],
            state=RenderState(
                render_target=int(archive["render_targets"][i]),
                depth_buffer=int(archive["depth_buffers"][i]),
                depth_write=bool(archive["depth_writes"][i]),
                depth_func=_DEPTH_FUNCS[int(archive["depth_funcs"][i])],
                blend_op=_BLEND_OPS[int(archive["blend_ops"][i])],
                early_z=bool(archive["early_z"][i]),
            ),
            vertex_cost=float(archive["vertex_costs"][i]),
            pixel_cost=float(archive["pixel_costs"][i]),
            texture_id=None if texture < 0 else texture,
        ))

    frames: List[Frame] = []
    cursor = 0
    for size in archive["frame_sizes"]:
        frames.append(Frame(draws=draws[cursor:cursor + int(size)]))
        cursor += int(size)

    camera = None
    if "camera" in archive and archive["camera"].size == 16:
        camera = archive["camera"].astype(np.float32)
    trace = Trace(name=header["name"], width=int(header["width"]),
                  height=int(header["height"]), frames=frames,
                  metadata=dict(header.get("metadata", {})),
                  camera=camera)
    trace.validate()
    return trace
