"""Stress and future-workload traces (paper §VI-G's trend argument).

Named extreme workloads built on the synthetic generator:

- ``micro_triangle`` — Unreal-Engine-5-style geometry: triangle count far
  above pixel count growth (the paper profiles Crysis Remastered at 12M
  triangles/frame and cites "a billion triangles per frame" as the near
  future). Sort-last schemes should *extend* their lead here.
- ``transparency_heavy`` — a third of the frame's draws blend; exercises
  the associative adjacent-pair composition path hard.
- ``fragment_bound`` — few, huge triangles at high overdraw: the regime
  that favours sort-first (fragment work splits perfectly by region).
- ``many_groups`` — frequent state changes: lots of small composition
  groups, stressing group-boundary overheads.

All return ordinary :class:`~repro.traces.trace.Trace` objects and work
with every scheme and the whole harness.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from ..errors import TraceError
from .synthetic import SCALES, TraceSpec, synthesize
from .trace import Trace

#: base spec stress workloads derive from (a mid-sized Table III-like frame)
_BASE = TraceSpec(name="stress-base", width=1280, height=1024,
                  num_draws=1600, num_triangles=500_000, seed=0x57E55)


def micro_triangle(scale: str = "tiny", detail: float = 4.0) -> Trace:
    """Triangle count scaled up ``detail``x at fixed resolution (§VI-G)."""
    if detail < 1.0:
        raise TraceError("detail factor must be >= 1")
    spec = replace(
        _BASE, name=f"micro-tri-{detail:g}x",
        num_triangles=int(_BASE.num_triangles * detail),
        num_draws=int(_BASE.num_draws * min(detail, 2.0)),
        overdraw=_BASE.overdraw,  # fragments pinned to the resolution
        seed=_BASE.seed + int(detail * 10))
    return synthesize(SCALES[scale].apply(spec))


def transparency_heavy(scale: str = "tiny") -> Trace:
    """A third of all draws are transparent, split across both operators."""
    spec = replace(_BASE, name="transparency-heavy",
                   transparent_fraction=0.33, additive_fraction=0.4,
                   seed=_BASE.seed + 1)
    return synthesize(SCALES[scale].apply(spec))


def fragment_bound(scale: str = "tiny") -> Trace:
    """Few triangles, heavy overdraw: the sort-first-friendly regime."""
    spec = replace(_BASE, name="fragment-bound",
                   num_triangles=_BASE.num_triangles // 8,
                   num_draws=_BASE.num_draws // 4,
                   overdraw=8.0, big_triangle_fraction=0.3,
                   seed=_BASE.seed + 2)
    return synthesize(SCALES[scale].apply(spec))


def many_groups(scale: str = "tiny") -> Trace:
    """Frequent state changes: one composition group every few draws."""
    spec = replace(_BASE, name="many-groups",
                   rt_switches=24, depth_toggle_events=12,
                   depth_func_events=8, num_render_targets=6,
                   seed=_BASE.seed + 3)
    return synthesize(SCALES[scale].apply(spec))


STRESS_WORKLOADS: Dict[str, Callable[[str], Trace]] = {
    "micro-triangle": micro_triangle,
    "transparency-heavy": transparency_heavy,
    "fragment-bound": fragment_bound,
    "many-groups": many_groups,
}

_STRESS_CACHE: Dict[tuple, Trace] = {}


def load_stress(name: str, scale: str = "tiny") -> Trace:
    """Generate (cached) one named stress workload."""
    if name not in STRESS_WORKLOADS:
        raise TraceError(f"unknown stress workload {name!r}; "
                         f"choose from {sorted(STRESS_WORKLOADS)}")
    key = (name, scale)
    if key not in _STRESS_CACHE:
        _STRESS_CACHE[key] = STRESS_WORKLOADS[name](scale)
    return _STRESS_CACHE[key]
