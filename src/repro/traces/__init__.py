"""Workload substrate: trace containers, synthetic generator, benchmarks."""

from .trace import Frame, Trace, transparent_runs, triangle_histogram
from .synthetic import SCALES, TraceScale, TraceSpec, synthesize
from .benchmarks import (BENCHMARK_NAMES, TABLE3, clear_cache, load_benchmark,
                         load_benchmark_variant, load_suite, scale_for)
from .stress import STRESS_WORKLOADS, load_stress

__all__ = [
    "BENCHMARK_NAMES",
    "Frame",
    "SCALES",
    "STRESS_WORKLOADS",
    "TABLE3",
    "Trace",
    "TraceScale",
    "TraceSpec",
    "clear_cache",
    "load_benchmark",
    "load_benchmark_variant",
    "load_stress",
    "load_suite",
    "scale_for",
    "synthesize",
    "transparent_runs",
    "triangle_histogram",
]
