"""A small discrete-event simulation kernel.

This is the substrate underneath the cycle-level timing model: a priority
queue of timestamped events, generator-based processes, and combinators for
waiting on several events. The API is intentionally close to SimPy's, which
keeps the timing models readable:

    def worker(sim):
        yield sim.timeout(10)          # advance 10 cycles
        done = sim.event()
        ...
        yield done                     # wait on an event

    sim = Simulator()
    sim.process(worker(sim))
    sim.run()

Time is measured in GPU cycles (floats, since transfers divide bytes by
bandwidth).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..analysis.sanitizer import ACCESS_WRITE, RaceSanitizer
from ..errors import SimulationError, WatchdogError


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, becomes *triggered* once :meth:`succeed` is
    called, and then runs its callbacks exactly once when the simulator
    processes it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_triggered", "_processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event; its callbacks run at the current sim time."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay=0.0)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that triggers automatically after ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        sim._schedule(self, delay=delay)


class AllOf(Event):
    """Triggers when every child event has triggered; value is their values."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._pending = 0
        self._events = list(events)
        for event in self._events:
            if event.processed:
                continue
            self._pending += 1
            event.callbacks.append(self._on_child)
        if self._pending == 0:
            self.succeed([e.value for e in self._events])

    def _on_child(self, _: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Triggers as soon as any child event triggers; value is that event."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        for event in self._events:
            if event.processed:
                self.succeed(event)
                return
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if not self.triggered:
            self.succeed(event)


def _describe_wait(event: Optional[Event]) -> str:
    """Human-readable description of what a process is suspended on."""
    if event is None:
        return "nothing (not yet started or already resuming)"
    resource = getattr(event, "resource", None)
    if resource is not None:
        label = resource.name or type(resource).__name__
        return f"a {type(event).__name__} on resource {label!r}"
    if isinstance(event, Process):
        return f"process {event.name!r}"
    if isinstance(event, Timeout):
        return f"a timeout of {event.delay}"
    return f"a pending {type(event).__name__}"


def _attach_process_name(exc: BaseException, name: str) -> None:
    """Prefix an in-process exception with the owning process's name, so a
    failure surfaces as e.g. ``[process 'chopin-gpu3'] ...`` instead of a
    bare callback traceback."""
    prefix = f"[process {name!r}]"
    if exc.args and isinstance(exc.args[0], str):
        if not exc.args[0].startswith("[process "):
            exc.args = (f"{prefix} {exc.args[0]}",) + exc.args[1:]
    else:
        exc.args = (prefix,) + exc.args


class Process(Event):
    """Wraps a generator; the process is itself an event that fires on return.

    The generator yields :class:`Event` instances; each time a yielded event
    is processed, the generator resumes with that event's value.

    ``daemon`` processes are service loops that legitimately outlive the
    event queue (e.g., a GPU engine's fragment loop); the deadlock watchdog
    in :meth:`Simulator.run` ignores them and only flags stuck non-daemon
    processes.
    """

    __slots__ = ("generator", "name", "daemon", "killed", "_waiting_on")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = "", daemon: bool = False) -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.daemon = daemon
        self.killed = False
        self._waiting_on: Optional[Event] = None
        sim._register_process(self)
        # Bootstrap: resume once the simulator starts (or immediately if
        # already running).
        Timeout(sim, 0.0).callbacks.append(self._resume)

    def _resume(self, event: Optional[Event]) -> None:
        value = event.value if event is not None else None
        self._waiting_on = None
        # Attribute any sanitizer-visible accesses made while the generator
        # body runs to this process.
        previous = self.sim._active_process
        self.sim._active_process = self
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            _attach_process_name(exc, self.name)
            raise
        finally:
            self.sim._active_process = previous
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event")
        self._waiting_on = target
        if target.processed:
            # Already happened; resume on the next tick at the same time.
            tick = Timeout(self.sim, 0.0)
            tick._value = target.value
            tick.callbacks.append(self._resume)
        else:
            target.callbacks.append(self._resume)

    def kill(self, value: Any = None) -> None:
        """Terminate the process (e.g., an injected fail-stop).

        Closes the generator, which raises ``GeneratorExit`` at its current
        suspension point so ``finally`` blocks run — this is what lets a
        dying transfer release its interconnect ports. The process event
        then succeeds with ``value`` so waiters are not stranded.
        """
        if self.triggered:
            return
        self.killed = True
        self.generator.close()
        self._waiting_on = None
        self.succeed(value)

    def describe_wait(self) -> str:
        return _describe_wait(self._waiting_on)


class Simulator:
    """The event loop: schedules events in (time, insertion-order) order.

    With ``sanitize=True`` the kernel carries a
    :class:`~repro.analysis.sanitizer.RaceSanitizer`; instrumented shared
    state (framebuffer regions, resources, scheduler tables) reports its
    accesses through :meth:`record_access`, attributed to whichever process
    is currently executing.
    """

    def __init__(self, sanitize: bool = False,
                 watchdog_cycles: Optional[float] = None) -> None:
        if watchdog_cycles is not None and watchdog_cycles <= 0:
            raise SimulationError(
                f"watchdog_cycles must be positive (got {watchdog_cycles})")
        self.now: float = 0.0
        self._queue: List[tuple] = []
        self._sequence = 0
        self._running = False
        self._processes: List[Process] = []
        self._active_process: Optional[Process] = None
        #: virtual-cycle budget for one run() call (None = unbounded); a
        #: run that would advance past it raises WatchdogError
        self.watchdog_cycles: Optional[float] = watchdog_cycles
        self.sanitizer: Optional[RaceSanitizer] = (
            RaceSanitizer() if sanitize else None)

    @property
    def active_process(self) -> Optional[Process]:
        """The process whose generator body is currently executing."""
        return self._active_process

    def record_access(self, resource: str, kind: str = ACCESS_WRITE,
                      process: Optional[str] = None) -> None:
        """Report an access on shared state to the sanitizer (no-op when
        the sanitizer is off, so call sites need no guards)."""
        if self.sanitizer is None:
            return
        if process is None:
            active = self._active_process
            process = active.name if active is not None else "<main>"
        self.sanitizer.record(resource, kind, process, self.now)

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "", daemon: bool = False) -> Process:
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event))
        self._sequence += 1

    def _register_process(self, process: Process) -> None:
        self._processes.append(process)

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        time, _, event = heapq.heappop(self._queue)
        if time < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = time
        event._run_callbacks()

    def run(self, until: Optional[float] = None,
            watchdog: bool = True) -> float:
        """Run until the queue drains (or until the given time); returns now.

        When the queue drains *naturally* (not via ``until``) while
        non-daemon processes are still unfinished, the protocol has wedged:
        silently returning would report a too-small, wrong cycle count. The
        watchdog instead raises :class:`SimulationError` naming every stuck
        process and what it is waiting on. Pass ``watchdog=False`` to get
        the old drain-and-return behaviour.

        When ``watchdog_cycles`` is configured on the simulator, a second
        guard covers *livelock*: if this run would advance more than that
        many cycles past its starting time, it raises
        :class:`~repro.errors.WatchdogError` naming the still-unfinished
        processes. The queue never drains in a livelock, so the drain
        check alone cannot catch it.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        budget: Optional[float] = None
        if self.watchdog_cycles is not None:
            budget = self.now + self.watchdog_cycles
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    break
                if budget is not None and self._queue[0][0] > budget:
                    stuck = self.stuck_processes()
                    details = "; ".join(
                        f"{p.name!r} waiting on {p.describe_wait()}"
                        for p in stuck) or "only daemon processes remain"
                    raise WatchdogError(
                        f"virtual-time watchdog tripped at cycle "
                        f"{self.now:,.0f}: next event at cycle "
                        f"{self._queue[0][0]:,.0f} exceeds the "
                        f"{self.watchdog_cycles:,.0f}-cycle budget; "
                        f"{details}")
                self.step()
        finally:
            self._running = False
        if watchdog and not self._queue:
            self._check_deadlock()
        return self.now

    def stuck_processes(self) -> List[Process]:
        """Non-daemon processes that have neither finished nor been killed."""
        return [p for p in self._processes
                if not p.triggered and not p.daemon]

    def _check_deadlock(self) -> None:
        stuck = self.stuck_processes()
        if not stuck:
            return
        details = "; ".join(
            f"{p.name!r} waiting on {p.describe_wait()}" for p in stuck)
        raise SimulationError(
            f"deadlock at cycle {self.now}: event queue drained with "
            f"{len(stuck)} unfinished process(es): {details}")
