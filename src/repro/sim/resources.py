"""Shared-resource primitives for the simulation kernel.

- :class:`Resource` — a FIFO-granted capacity (e.g., a link direction or a
  GPU ingress port). Processes ``yield resource.request()`` and must
  ``resource.release(req)`` when done.
- :class:`Store` — an unbounded FIFO of items, for message queues between
  processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from ..analysis.sanitizer import ACCESS_ARBITRATED
from ..errors import SimulationError
from .core import Event, Simulator


def _arbitrated(obj: Any) -> None:
    """Report an access through a FIFO-arbitrated primitive.

    Arbitrated accesses are recorded for the sanitizer's census but exempt
    from conflict detection: grant order here is deterministic by
    construction (FIFO / priority + insertion order), so same-cycle
    contention is the intended case, not a race.
    """
    label = f"{type(obj).__name__.lower()}:{obj.name or '<anon>'}"
    obj.sim.record_access(label, ACCESS_ARBITRATED)


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """A capacity-limited resource with FIFO grant order."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of currently granted requests."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        """Claim one unit; the returned event triggers once granted."""
        _arbitrated(self)
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(self)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit."""
        _arbitrated(self)
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that was never granted")
        if self._waiting:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed(self)

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request (no-op if already granted)."""
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def withdraw(self, request: Request) -> None:
        """Release the request if granted, cancel it if still queued.

        Safe to call from ``finally`` blocks regardless of how far the
        owning process got — this is what keeps a port from being pinned
        forever when the process holding (or awaiting) it dies mid-transfer.
        """
        if request in self._users:
            self.release(request)
        else:
            self.cancel(request)


class PriorityRequest(Request):
    """A claim with a priority (lower value = more urgent)."""

    __slots__ = ("priority", "order")

    def __init__(self, resource: "Resource", priority: int,
                 order: int) -> None:
        super().__init__(resource)
        self.priority = priority
        self.order = order


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are granted by priority.

    Ties break FIFO (by request order), preserving determinism. Useful for
    quality-of-service experiments — e.g., letting composition traffic
    pre-empt bulk synchronization at a port.
    """

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "") -> None:
        super().__init__(sim, capacity, name)
        self._sequence = 0

    def request(self, priority: int = 0) -> PriorityRequest:
        _arbitrated(self)
        req = PriorityRequest(self, priority, self._sequence)
        self._sequence += 1
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(self)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        _arbitrated(self)
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that was never granted")
        if self._waiting:
            nxt = min(self._waiting,
                      key=lambda r: (r.priority, r.order))
            self._waiting.remove(nxt)
            self._users.append(nxt)
            nxt.succeed(self)


class Barrier:
    """A reusable rendezvous for a fixed party count.

    Each participant yields ``barrier.wait()``; once the last arrives, all
    waiters release together and the barrier resets for the next cycle.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = "") -> None:
        if parties <= 0:
            raise SimulationError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._waiting: List[Event] = []

    def wait(self) -> Event:
        _arbitrated(self)
        event = Event(self.sim)
        self._waiting.append(event)
        if len(self._waiting) == self.parties:
            waiting, self._waiting = self._waiting, []
            for waiter in waiting:
                waiter.succeed()
        elif len(self._waiting) > self.parties:
            raise SimulationError("more waiters than barrier parties")
        return event


class Countdown:
    """A one-shot latch: fires its event after ``count`` arrivals."""

    def __init__(self, sim: Simulator, count: int, name: str = "") -> None:
        if count < 0:
            raise SimulationError("countdown count cannot be negative")
        self.sim = sim
        self.name = name
        self._remaining = count
        self.event = Event(sim)
        if count == 0:
            self.event.succeed()

    def arrive(self) -> None:
        _arbitrated(self)
        if self._remaining <= 0:
            raise SimulationError("countdown already completed")
        self._remaining -= 1
        if self._remaining == 0:
            self.event.succeed()


class Store:
    """An unbounded FIFO message queue between processes."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking one waiting getter if any."""
        _arbitrated(self)
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that triggers with the next item (immediately if available)."""
        _arbitrated(self)
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
