"""Discrete-event simulation kernel (mini-SimPy) used by the timing models."""

from .core import AllOf, AnyOf, Event, Process, Simulator, Timeout
from .resources import (Barrier, Countdown, PriorityRequest,
                        PriorityResource, Request, Resource, Store)

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Countdown",
    "Event",
    "PriorityRequest",
    "PriorityResource",
    "Process",
    "Request",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
]
