"""System configuration (paper Table II).

The defaults here mirror the simulated architecture of the paper:

====================================  =======================================
Structure                             Configuration
====================================  =======================================
GPU frequency                         1 GHz
Number of GPUs                        8
Number of SMs                         64 (8 per GPU)
Number of ROPs                        64 (8 per GPU)
SM configuration                      32 shader cores per SM, 4 texture units
L2 cache                              6 MB total
DRAM                                  2 TB/s, 8 channels x 8 banks
Composition-group primitive threshold 4096
Inter-GPU bandwidth                   64 GB/s (unidirectional)
Inter-GPU latency                     200 cycles
====================================  =======================================

Bandwidth is converted to bytes/cycle at the GPU clock: 64 GB/s at 1 GHz is
64 bytes per cycle per directed link.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .faults.plan import FaultPlan

GIGA = 1_000_000_000


@dataclass(frozen=True)
class GPUConfig:
    """Per-GPU resources and pipeline cost parameters.

    The cost parameters translate functional counts into cycles:

    - a draw command's geometry stage costs
      ``triangles * vertex_cost / num_sms`` cycles, where ``vertex_cost``
      is the draw's per-triangle shader cost (cycles on one SM);
    - its fragment stage costs ``fragments * pixel_cost / num_rops`` cycles.
    """

    num_sms: int = 8               # unit: 1
    num_rops: int = 8              # unit: 1
    shader_cores_per_sm: int = 32  # unit: 1
    texture_units_per_sm: int = 4  # unit: 1
    frequency_hz: int = GIGA       # unit: hertz
    l2_cache_bytes: int = 6 * 1024 * 1024 // 8  # share of the 6 MB total
    dram_bandwidth_bytes_per_s: int = 2 * 1000 * GIGA // 8  # unit: bytes/s

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.num_rops <= 0:
            raise ConfigError("a GPU needs at least one SM and one ROP")
        if self.frequency_hz <= 0:
            raise ConfigError("GPU frequency must be positive")


#: supported interconnect topologies
TOPOLOGY_P2P = "p2p"           # full point-to-point (DGX/NVSwitch-like)
TOPOLOGY_SHARED_BUS = "bus"    # one shared medium (PCIe-switch-like)
TOPOLOGY_RING = "ring"         # bidirectional ring, store-and-forward hops
TOPOLOGY_SWITCH = "switch"     # single crossbar, per-port contention

ALL_TOPOLOGIES = (TOPOLOGY_P2P, TOPOLOGY_SHARED_BUS, TOPOLOGY_RING,
                  TOPOLOGY_SWITCH)


@dataclass(frozen=True)
class LinkConfig:
    """Inter-GPU link (NVLink/XGMI style).

    ``bandwidth_bytes_per_cycle`` is per direction; ``latency_cycles`` is the
    fixed head latency added to every transfer. ``ideal`` marks the idealized
    variant used for upper-bound studies (zero latency, infinite bandwidth).

    ``topology`` selects the fabric: ``p2p`` gives every GPU pair its own
    channel (contention only at the per-GPU ports — the paper's DGX-like
    assumption, §V); ``bus`` funnels all transfers through one shared medium
    whose aggregate bandwidth is ``bus_bandwidth_x`` links' worth — an
    ablation for pre-NVLink systems; ``ring`` is a bidirectional ring where
    messages hop store-and-forward along the shortest direction, contending
    for each directed hop link; ``switch`` is a single crossbar — every GPU
    has one uplink and one downlink port, transfers pay two wire hops plus
    ``switch_latency_cycles`` of crossbar traversal, and the backplane
    admits ``num_gpus / switch_oversubscription`` simultaneous streams
    (1.0 = non-blocking).
    """

    bandwidth_gb_per_s: float = 64.0  # unit: bytes/s # GB scale, not dim.
    latency_cycles: int = 200         # unit: cycles
    ideal: bool = False
    topology: str = TOPOLOGY_P2P
    bus_bandwidth_x: float = 2.0      # unit: 1
    switch_latency_cycles: int = 100  # unit: cycles
    switch_oversubscription: float = 1.0  # unit: 1

    def __post_init__(self) -> None:
        if not self.ideal and self.bandwidth_gb_per_s <= 0:
            raise ConfigError("link bandwidth must be positive")
        if self.latency_cycles < 0:
            raise ConfigError("link latency cannot be negative")
        if self.topology not in ALL_TOPOLOGIES:
            raise ConfigError(f"unknown topology {self.topology!r} "
                              f"(known: {', '.join(ALL_TOPOLOGIES)})")
        if self.bus_bandwidth_x <= 0:
            raise ConfigError("bus bandwidth multiplier must be positive")
        if self.switch_latency_cycles < 0:
            raise ConfigError("switch latency cannot be negative")
        if self.switch_oversubscription < 1.0:
            raise ConfigError("switch oversubscription must be >= 1 "
                              "(1.0 = non-blocking crossbar)")

    def bandwidth_bytes_per_cycle(self, frequency_hz: int = GIGA) -> float:
        """Bytes per cycle in one direction at the given GPU clock."""
        if self.ideal:
            return float("inf")
        return self.bandwidth_gb_per_s * GIGA / frequency_hz

    def transfer_cycles(self, num_bytes: int, frequency_hz: int = GIGA) -> float:
        """Total cycles to move ``num_bytes`` across the link."""
        if self.ideal:
            return 0.0
        bpc = self.bandwidth_bytes_per_cycle(frequency_hz)
        return self.latency_cycles + num_bytes / bpc


@dataclass(frozen=True)
class SystemConfig:
    """Full multi-GPU system configuration (paper Table II defaults)."""

    num_gpus: int = 8              # unit: 1
    gpu: GPUConfig = field(default_factory=GPUConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    tile_size: int = 64
    composition_threshold: int = 4096  # unit: triangles
    #: draw-command scheduler statistics update interval, in triangles (Fig 18)
    scheduler_update_interval: int = 1  # unit: triangles
    #: bytes per pixel on the wire (RGBA8 colour + 32-bit depth)
    pixel_bytes: int = 8               # unit: bytes/pixel
    #: multisample anti-aliasing factor. Sub-images carry per-sample colour
    #: and depth until the final resolve, so composition traffic and ROP
    #: composition work scale with the sample count — a real consideration
    #: for sort-last schemes (the ROPs of Fig 1(c) do the AA resolve).
    msaa_samples: int = 1              # unit: 1
    #: bytes per primitive ID exchanged by GPUpd's distribution phase
    primitive_id_bytes: int = 4        # unit: bytes/triangle
    #: fraction of depth-culled fragments artificially retained (Fig 16)
    retained_cull_fraction: float = 0.0
    #: deterministic fault-injection plan (None = perfect hardware); see
    #: :mod:`repro.faults`. Link errors/degraded windows apply to every
    #: scheme's transfers; fail-stop recovery is modeled by the CHOPIN
    #: schemes.
    faults: Optional[FaultPlan] = None
    #: run the DES with the race sanitizer attached (``--sanitize``): every
    #: instrumented shared-state access is recorded per cycle and same-cycle
    #: conflicts between distinct processes fail the run. Purely a checking
    #: feature — it never changes simulated timing.
    sanitize: bool = False
    #: virtual-cycle budget for a single simulator run (``--watchdog-cycles``):
    #: a run that advances past it aborts with
    #: :class:`~repro.errors.WatchdogError` instead of livelocking forever.
    #: None (the default) keeps runs unbounded. A supervision knob, not a
    #: model parameter — it never changes simulated timing.
    watchdog_cycles: Optional[float] = None  # unit: cycles
    #: bounded window of in-flight composition groups per GPU: a GPU may
    #: start rendering group *k* only once its own composition of group
    #: ``k - pipeline_depth`` has completed. ``1`` serializes rendering with
    #: composition (a hard group barrier); ``None`` (the default) leaves the
    #: window unbounded — composition drains fully overlapped behind
    #: rendering, which is the paper's Fig 3 behaviour. The knob models the
    #: number of sub-image buffers a GPU can hold concurrently.
    pipeline_depth: Optional[int] = None  # unit: 1

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ConfigError("need at least one GPU")
        if self.watchdog_cycles is not None and self.watchdog_cycles <= 0:
            raise ConfigError("watchdog_cycles must be positive (or None "
                              "for unbounded runs)")
        if self.tile_size <= 0:
            raise ConfigError("tile size must be positive")
        if self.composition_threshold < 0:
            raise ConfigError("composition threshold cannot be negative")
        if self.scheduler_update_interval <= 0:
            raise ConfigError("scheduler update interval must be >= 1 triangle")
        if not 0.0 <= self.retained_cull_fraction <= 1.0:
            raise ConfigError("retained_cull_fraction must lie in [0, 1]")
        if self.msaa_samples not in (1, 2, 4, 8):
            raise ConfigError("msaa_samples must be 1, 2, 4, or 8")
        if self.pipeline_depth is not None and self.pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1 (or None for an "
                              "unbounded in-flight group window)")
        if self.faults is not None:
            self.faults.validate_for(self.num_gpus)

    @property
    def effective_pixel_bytes(self) -> int:
        """Wire bytes per *screen* pixel, including MSAA samples."""
        return self.pixel_bytes * self.msaa_samples

    def with_gpus(self, num_gpus: int) -> "SystemConfig":
        """Copy of this config with a different GPU count."""
        return replace(self, num_gpus=num_gpus)

    def with_link(self, *, bandwidth_gb_per_s: float | None = None,
                  latency_cycles: int | None = None,
                  ideal: bool | None = None) -> "SystemConfig":
        """Copy of this config with modified link parameters."""
        link = self.link
        new = LinkConfig(
            bandwidth_gb_per_s=(bandwidth_gb_per_s
                                if bandwidth_gb_per_s is not None
                                else link.bandwidth_gb_per_s),
            latency_cycles=(latency_cycles if latency_cycles is not None
                            else link.latency_cycles),
            ideal=link.ideal if ideal is None else ideal,
        )
        return replace(self, link=new)

    def with_faults(self, faults: Optional[FaultPlan]) -> "SystemConfig":
        """Copy of this config with a different fault plan (None = none)."""
        return replace(self, faults=faults)

    def idealized(self) -> "SystemConfig":
        """Upper-bound variant: free links and unlimited buffering (Fig 5)."""
        return self.with_link(ideal=True, latency_cycles=0)


#: The paper's Table II configuration.
TABLE2 = SystemConfig()
