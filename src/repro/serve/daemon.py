"""The frame-serving daemon: admission control, batching, fault survival.

:class:`FrameServer` runs a pool of *render groups* (each an independent
``group_gpus``-GPU CHOPIN system) against an open-loop request workload,
entirely in virtual time on the repo's discrete-event kernel:

- an **arrival process** replays the workload's time-sorted requests
  through admission control: a bounded queue with a pluggable shedding
  policy (``drop-newest`` rejects arrivals when full, ``drop-oldest``
  evicts the head to admit the newcomer, ``deadline-expired`` evicts
  already-hopeless requests first) and optional per-session token-bucket
  budgets that throttle any one client to its fair share;
- one **group process** per render group pulls batches off the queue
  (consecutive same-benchmark requests coalesce, amortizing the render),
  renders them through the shared
  :class:`~repro.render.service.RenderService` artifact store — so a
  served frame is *by construction* bit-identical to the batch harness's
  render of the same benchmark — and occupies the group for the frame's
  simulated cycle count;
- a **fault process** replays injected GPU fail/repair events: a failed
  GPU takes its whole group down, the group's in-flight batch re-queues
  against survivors under bounded retry + deadline semantics, and a
  repaired group rejoins the pool. With no survivors and no repair in
  sight, queued work sheds with a typed reason instead of waiting
  forever.

The daemon drains cleanly: once arrivals end and the queue and every
in-flight batch are empty, a stop event releases all processes. A
configured virtual-time watchdog (``--watchdog-cycles``) converts a
livelocked run into *degraded mode* — remaining work sheds with reason
``watchdog``, the report flags it, and the CLI maps it to its own exit
code — rather than a crash.

Every count of requests is deterministic: same workload + faults + pool
in, byte-identical report out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, WatchdogError
from ..faults.plan import FaultPlan
from ..faults.traces import EVENT_GPU_FAIL, EVENT_GPU_REPAIR, FailureTrace
from ..sim import Simulator
from ..stats import STAGE_COMPOSITION, STAGE_GEOMETRY, RunStats
from .loadgen import WorkloadSpec
from .slo import SloSummary

#: admission-queue shedding policies
POLICY_DROP_NEWEST = "drop-newest"
POLICY_DROP_OLDEST = "drop-oldest"
POLICY_DEADLINE = "deadline-expired"
POLICIES = (POLICY_DROP_NEWEST, POLICY_DROP_OLDEST, POLICY_DEADLINE)

#: typed shed/reject reasons (every non-served request carries exactly one)
SHED_QUEUE_FULL = "queue-full"      # rejected at the door, queue at limit
SHED_BUDGET = "budget"              # throttled by the session token bucket
SHED_EVICTED = "evicted"            # admitted, later pushed out by policy
SHED_DEADLINE = "deadline"          # expired before it could be served
SHED_RETRIES = "retries"            # re-queued past the retry limit
SHED_NO_SURVIVORS = "no-survivors"  # every group dead, no repair scheduled
SHED_WATCHDOG = "watchdog"          # virtual-time watchdog tripped
SHED_STALLED = "stalled"            # left over after the run (degraded)


@dataclass
class Request:
    """One admitted (or refused) frame-render request's lifecycle state."""

    index: int
    session: int
    benchmark: str
    arrival_cycles: float
    deadline_at_cycles: Optional[float] = None
    attempts: int = 0


class TokenBucket:
    """Per-session budget in units of service cycles.

    A session accrues ``rate`` service-cycles of credit per virtual
    cycle (its fair share of pool capacity times the configured
    multiplier) up to a burst cap; each admission spends the workload's
    mean service time. Refill is lazy — credited on each ``take`` from
    the cycles elapsed since the previous one.
    """

    def __init__(self, rate: float, capacity_cycles: float) -> None:
        if rate <= 0 or capacity_cycles <= 0:
            raise ConfigError("token bucket needs positive rate and "
                              "capacity")
        self.rate = rate                        # service-cycles per cycle
        self.capacity_cycles = capacity_cycles
        self.tokens_cycles = capacity_cycles
        self.last_refill_cycles = 0.0

    def take(self, cost_cycles: float, now_cycles: float) -> bool:
        elapsed_cycles = now_cycles - self.last_refill_cycles
        self.last_refill_cycles = now_cycles
        self.tokens_cycles = min(self.capacity_cycles,
                                 self.tokens_cycles
                                 + elapsed_cycles * self.rate)
        if self.tokens_cycles >= cost_cycles:
            self.tokens_cycles -= cost_cycles
            return True
        return False


@dataclass
class SessionReport:
    """One client session's ledger."""

    session: int
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    throttled: int = 0
    shed: int = 0
    completed: int = 0
    requeues: int = 0
    deadline_misses: int = 0
    #: completed requests whose frame came out of the shared artifact
    #: store rather than a fresh render
    artifact_hits: int = 0
    latency_sum_cycles: float = 0.0
    latency_max_cycles: float = 0.0

    @property
    def hit_rate(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.artifact_hits / self.completed

    @property
    def latency_mean_cycles(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.latency_sum_cycles / self.completed

    def to_dict(self) -> Dict[str, object]:
        return {
            "session": self.session, "submitted": self.submitted,
            "admitted": self.admitted, "rejected": self.rejected,
            "throttled": self.throttled, "shed": self.shed,
            "completed": self.completed, "requeues": self.requeues,
            "deadline_misses": self.deadline_misses,
            "artifact_hits": self.artifact_hits,
            "hit_rate": self.hit_rate,
            "latency_mean_cycles": self.latency_mean_cycles,
            "latency_max_cycles": self.latency_max_cycles,
        }


@dataclass(frozen=True)
class ServeEvent:
    """One notable daemon-lifecycle event (for the report's event log)."""

    time: float  # unit: cycles
    kind: str    # "group-fail" | "group-revive" | "watchdog-trip" | ...
    detail: str


@dataclass
class ServeReport:
    """Everything one serve run produced, ready for report/export layers."""

    scheme: str
    scale: str
    benchmarks: Tuple[str, ...]
    groups: int
    group_gpus: int
    policy: str
    queue_limit: int
    mean_service_cycles: float
    drained_at_cycles: float
    degraded: bool
    shed_reasons: Dict[str, int]
    slo: SloSummary
    sessions: List[SessionReport]
    events: List[ServeEvent]
    stats: RunStats
    #: per-benchmark calibrated frame time on one render group
    service_cycles: Dict[str, float] = field(default_factory=dict)
    #: completion timestamps in completion order (nondecreasing)
    completion_times_cycles: List[float] = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted requests that were not served."""
        if self.stats.serve_requests == 0:
            return 0.0
        return 1.0 - (self.stats.serve_completed
                      / self.stats.serve_requests)

    @property
    def artifact_hit_rate(self) -> float:
        hits = sum(s.artifact_hits for s in self.sessions)
        if self.stats.serve_completed == 0:
            return 0.0
        return hits / self.stats.serve_completed

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme, "scale": self.scale,
            "benchmarks": list(self.benchmarks),
            "groups": self.groups, "group_gpus": self.group_gpus,
            "policy": self.policy, "queue_limit": self.queue_limit,
            "mean_service_cycles": self.mean_service_cycles,
            "drained_at_cycles": self.drained_at_cycles,
            "degraded": self.degraded,
            "shed_rate": self.shed_rate,
            "artifact_hit_rate": self.artifact_hit_rate,
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "slo": self.slo.to_dict(),
            "sessions": [s.to_dict() for s in self.sessions],
            "events": [{"time": e.time, "kind": e.kind,
                        "detail": e.detail} for e in self.events],
            "service_cycles": dict(sorted(self.service_cycles.items())),
            "stats": self.stats.to_dict(),
        }


def gpu_events_from_trace(trace: FailureTrace
                          ) -> List[Tuple[float, int, str]]:
    """Project an MTTF failure trace onto the daemon's fault schedule.

    Only GPU fail/repair events matter to serving (link episodes already
    shape the calibrated frame time); they are replayed at their absolute
    trace times against the *pool* — GPU index N belongs to render group
    ``N // group_gpus``.
    """
    return [(e.time, int(e.element[len("gpu"):]), e.event)
            for e in trace.events
            if e.event in (EVENT_GPU_FAIL, EVENT_GPU_REPAIR)]


def gpu_events_from_plan(plan: FaultPlan) -> List[Tuple[float, int, str]]:
    """Fault schedule from a one-shot ``key=value`` fault plan (no repairs)."""
    return [(f.cycle, f.gpu, EVENT_GPU_FAIL)
            for f in sorted(plan.gpu_failures,
                            key=lambda f: (f.cycle, f.gpu))]


class FrameServer:
    """A virtual-time frame-serving daemon over a pool of render groups.

    ``setup`` describes ONE render group (``setup.config.num_gpus`` GPUs);
    the pool is ``groups`` of them. The group setup's
    ``watchdog_cycles`` carries onto the daemon's simulator, so one
    ``--watchdog-cycles`` flag bounds both batch frames and serve runs.
    """

    def __init__(self, scheme: str, setup, workload: WorkloadSpec,
                 groups: int = 2,
                 queue_limit: int = 32,
                 policy: str = POLICY_DROP_NEWEST,
                 batch_limit: int = 4,
                 retry_limit: int = 3,
                 deadline_x: Optional[float] = None,
                 budget_x: Optional[float] = None,
                 budget_burst_x: float = 4.0,
                 batch_overhead_x: float = 0.1,
                 pipeline_overlap: bool = False,
                 fault_events: Sequence[Tuple[float, int, str]] = ()
                 ) -> None:
        if groups <= 0:
            raise ConfigError("need at least one render group")
        if queue_limit <= 0:
            raise ConfigError("admission queue limit must be positive")
        if policy not in POLICIES:
            raise ConfigError(f"unknown shedding policy {policy!r} "
                              f"(known: {', '.join(POLICIES)})")
        if batch_limit <= 0:
            raise ConfigError("batch limit must be positive")
        if retry_limit < 0:
            raise ConfigError("retry limit cannot be negative")
        if deadline_x is not None and deadline_x <= 0:
            raise ConfigError("deadline_x must be positive (or None)")
        if budget_x is not None and budget_x <= 0:
            raise ConfigError("budget_x must be positive (or None)")
        if budget_burst_x <= 0:
            raise ConfigError("budget_burst_x must be positive")
        if batch_overhead_x < 0:
            raise ConfigError("batch overhead cannot be negative")
        for time_cycles, gpu, kind in fault_events:
            if kind not in (EVENT_GPU_FAIL, EVENT_GPU_REPAIR):
                raise ConfigError(
                    f"serve fault schedule only understands "
                    f"{EVENT_GPU_FAIL}/{EVENT_GPU_REPAIR} (got {kind!r})")
            if not 0 <= gpu < groups * setup.config.num_gpus:
                raise ConfigError(
                    f"fault event names gpu{gpu}, but the pool has "
                    f"{groups * setup.config.num_gpus} GPUs")
        self.scheme = scheme
        self.setup = setup
        self.workload = workload
        self.groups = groups
        self.group_gpus = setup.config.num_gpus
        self.queue_limit = queue_limit
        self.policy = policy
        self.batch_limit = batch_limit
        self.retry_limit = retry_limit
        self.deadline_cycles = (
            None if deadline_x is None
            else deadline_x * workload.mean_service_cycles)
        self.budget_x = budget_x
        self.budget_burst_x = budget_burst_x
        self.batch_overhead_x = batch_overhead_x
        #: opt-in cross-request pipelining: when a group takes its next
        #: batch back-to-back (no idle gap), the previous frame's tail
        #: composition overlaps the next frame's geometry phase and the
        #: new batch's service time shrinks by the overlappable cycles.
        #: Off by default — it changes timing, never results.
        self.pipeline_overlap = pipeline_overlap
        self._fault_schedule = sorted(
            (float(t), int(g), str(k)) for t, g, k in fault_events)
        # results of the batch-identical renders, keyed by benchmark;
        # tests compare these against plain harness runs bit-for-bit
        self.rendered_results: Dict[str, object] = {}
        self._fresh_render: Dict[str, bool] = {}
        self._served_count: Dict[str, int] = {}

    # -- the run ------------------------------------------------------------

    def serve(self) -> ServeReport:
        """Run the daemon to completion and return its report."""
        from ..render import render_service
        sim = Simulator(
            sanitize=False,
            watchdog_cycles=self.setup.config.watchdog_cycles)
        self.sim = sim
        self.queue: Deque[Request] = deque()
        self.in_flight: List[List[Request]] = [[] for _ in
                                               range(self.groups)]
        self.alive = [True] * self.groups
        self.gpu_up = [True] * (self.groups * self.group_gpus)
        self._stop_event = sim.event()
        self._work_event = sim.event()
        self._fail_events = [sim.event() for _ in range(self.groups)]
        self._fault_index = 0
        self._arrivals_done = False
        self._next_index = 0
        self.total_requests = 0
        self.total_admitted = 0
        self.total_completed = 0
        self.total_rejected = 0
        self.total_throttled = 0
        self.total_shed = 0
        self.total_requeued = 0
        self.total_batches = 0
        self.total_overlap_cycles = 0.0
        self.total_overlapped_batches = 0
        #: per group: (completion cycle, benchmark) of the last batch it
        #: finished cleanly — the overlap window for a back-to-back next one
        self._group_last_done: List[Optional[Tuple[float, str]]] = \
            [None] * self.groups
        self.queue_peak = 0
        self.total_deadline_misses = 0
        self.degraded_events = 0
        self.shed_reasons: Dict[str, int] = {}
        self.latencies_cycles: List[float] = []
        self.completion_times_cycles: List[float] = []
        self.events: List[ServeEvent] = []
        self.sessions = [SessionReport(session=s)
                         for s in range(self.workload.profile.sessions)]
        self._buckets: List[Optional[TokenBucket]] = [None] * len(
            self.sessions)
        if self.budget_x is not None:
            rate = self.budget_x * self.groups / len(self.sessions)
            capacity_cycles = (self.budget_burst_x
                               * self.workload.mean_service_cycles)
            self._buckets = [TokenBucket(rate, capacity_cycles)
                             for _ in self.sessions]
        self._service = render_service()
        store_before = self._service.counters()

        sim.process(self._arrival_proc(), name="serve-arrivals")
        for group in range(self.groups):
            sim.process(self._group_proc(group, self._fail_events[group]),
                        name=f"serve-group{group}")
        if self._fault_schedule:
            sim.process(self._fault_proc(), name="serve-faults")

        degraded = False
        self.drained_at_cycles = 0.0
        try:
            sim.run()
        except WatchdogError as exc:
            degraded = True
            self.degraded_events += 1
            self._event("watchdog-trip", str(exc))
            self._shed_everything(SHED_WATCHDOG)
            self.drained_at_cycles = sim.now
        else:
            if self.queue or any(self.in_flight):
                # should be unreachable; a clean drain always empties both
                degraded = True
                self.degraded_events += 1
                self._event("stalled", "run ended with unserved requests "
                            "still queued or in flight")
                self._shed_everything(SHED_STALLED)
            if not self._stop_event.triggered:
                self.drained_at_cycles = sim.now

        store_delta = self._service.counters().delta(store_before)
        return self._build_report(degraded, store_delta)

    # -- processes ----------------------------------------------------------

    def _arrival_proc(self):
        sim = self.sim
        for arrival in self.workload.arrivals:
            delay_cycles = arrival.time - sim.now
            if delay_cycles > 0:
                yield sim.timeout(delay_cycles)
            self._submit(arrival)
        self._arrivals_done = True
        self._maybe_finish()
        # a process body must yield at least once to be a generator; this
        # zero-cycle tick also covers the empty-workload case
        yield sim.timeout(0.0)

    def _group_proc(self, group: int, fail_event):
        sim = self.sim
        while True:
            if not self.alive[group] or self._stop_event.triggered:
                return
            batch = self._take_batch()
            if batch is None:
                self._maybe_finish()
                fired = yield sim.any_of([self._work_event,
                                          self._stop_event, fail_event])
                if (fired is fail_event or not self.alive[group]
                        or self._stop_event.triggered):
                    return
                continue
            self.in_flight[group] = batch
            self.total_batches += 1
            service_cycles = self._batch_service_cycles(batch)
            if self.pipeline_overlap:
                service_cycles -= self._overlap_credit(group, batch,
                                                       service_cycles)
            timer = sim.timeout(service_cycles)
            fired = yield sim.any_of([timer, fail_event])
            self.in_flight[group] = []
            if fired is fail_event:
                self._group_last_done[group] = None
                self._requeue_or_shed(batch)
                return
            self._group_last_done[group] = (sim.now, batch[0].benchmark)
            for request in batch:
                self._complete(request)
            self._maybe_finish()

    def _fault_proc(self):
        sim = self.sim
        for index, (time_cycles, gpu, kind) in enumerate(
                self._fault_schedule):
            delay_cycles = time_cycles - sim.now
            if delay_cycles > 0:
                fired = yield sim.any_of([sim.timeout(delay_cycles),
                                          self._stop_event])
                if fired is self._stop_event \
                        or self._stop_event.triggered:
                    return
            self._fault_index = index + 1
            self._apply_fault(gpu, kind)
        yield sim.timeout(0.0)

    # -- admission ----------------------------------------------------------

    def _submit(self, arrival) -> None:
        session = self.sessions[arrival.session]
        session.submitted += 1
        self.total_requests += 1
        request = Request(index=self._next_index,
                          session=arrival.session,
                          benchmark=arrival.benchmark,
                          arrival_cycles=self.sim.now)
        self._next_index += 1
        if not any(self.alive) and not self._repairs_pending():
            self._refuse(request, SHED_NO_SURVIVORS, throttle=False)
            return
        bucket = self._buckets[arrival.session]
        if bucket is not None and not bucket.take(
                self.workload.mean_service_cycles, self.sim.now):
            self._refuse(request, SHED_BUDGET, throttle=True)
            return
        if len(self.queue) >= self.queue_limit:
            if self.policy == POLICY_DEADLINE:
                self._evict_expired()
            if len(self.queue) >= self.queue_limit:
                if self.policy == POLICY_DROP_OLDEST:
                    self._shed(self.queue.popleft(), SHED_EVICTED)
                else:
                    self._refuse(request, SHED_QUEUE_FULL, throttle=False)
                    return
        if self.deadline_cycles is not None:
            request.deadline_at_cycles = (request.arrival_cycles
                                          + self.deadline_cycles)
        self.queue.append(request)
        session.admitted += 1
        self.total_admitted += 1
        self.queue_peak = max(self.queue_peak, len(self.queue))
        self._signal_work()

    def _refuse(self, request: Request, reason: str,
                throttle: bool) -> None:
        """Refuse a request at the door (never admitted)."""
        session = self.sessions[request.session]
        if throttle:
            session.throttled += 1
            self.total_throttled += 1
        else:
            session.rejected += 1
            self.total_rejected += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1

    def _shed(self, request: Request, reason: str) -> None:
        """Drop an already-admitted request with a typed reason."""
        session = self.sessions[request.session]
        session.shed += 1
        self.total_shed += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1

    def _evict_expired(self) -> None:
        """Shed every queued request that is already past its deadline."""
        if self.deadline_cycles is None:
            return
        survivors = deque()
        while self.queue:
            request = self.queue.popleft()
            if self._expired(request):
                self._shed(request, SHED_DEADLINE)
            else:
                survivors.append(request)
        self.queue = survivors

    def _expired(self, request: Request) -> bool:
        return (request.deadline_at_cycles is not None
                and self.sim.now > request.deadline_at_cycles)

    def _signal_work(self) -> None:
        """Broadcast "queue is non-empty" to idle groups and re-arm."""
        previous, self._work_event = self._work_event, self.sim.event()
        if not previous.triggered:
            previous.succeed()

    # -- dispatch and completion --------------------------------------------

    def _take_batch(self) -> Optional[List[Request]]:
        while self.queue and self.policy == POLICY_DEADLINE \
                and self._expired(self.queue[0]):
            self._shed(self.queue.popleft(), SHED_DEADLINE)
        if not self.queue:
            return None
        head = self.queue.popleft()
        batch = [head]
        if self.batch_limit > 1:
            keep: Deque[Request] = deque()
            while self.queue and len(batch) < self.batch_limit:
                request = self.queue.popleft()
                if request.benchmark == head.benchmark:
                    batch.append(request)
                else:
                    keep.append(request)
            while keep:
                self.queue.appendleft(keep.pop())
        return batch

    def _render(self, benchmark: str):
        """Render (or fetch) one benchmark's frame on a render group."""
        result = self.rendered_results.get(benchmark)
        if result is None:
            from ..harness.runner import run
            from ..traces import load_benchmark
            with self._service.scoped_counters() as scope:
                result = run(self.scheme,
                             load_benchmark(benchmark, self.setup.scale),
                             self.setup)
            self.rendered_results[benchmark] = result
            # a stored-result hit means the frame was cached work; a miss
            # means this daemon paid for the render itself
            self._fresh_render[benchmark] = scope.misses > 0
            self._served_count.setdefault(benchmark, 0)
        return result

    def _overlap_credit(self, group: int, batch: List[Request],
                        service_cycles: float) -> float:
        """Cycles a back-to-back batch saves by cross-request pipelining.

        Only when the group takes this batch the same cycle it finished
        the previous one (it never went idle): the prior frame's
        composition tail — still draining through ROPs and interconnect —
        overlaps the new frame's geometry phase, which touches neither.
        The credit is the smaller of the two phases' per-GPU busy cycles,
        capped at half the new batch's service time so overlap can trim a
        frame but never swallow it.
        """
        last = self._group_last_done[group]
        if last is None or last[0] != self.sim.now:
            return 0.0
        prev = self._render(last[1]).stats.stage_cycle_totals()
        head = self._render(batch[0].benchmark).stats.stage_cycle_totals()
        comp_tail = prev.get(STAGE_COMPOSITION, 0.0) / self.group_gpus
        geom_head = head.get(STAGE_GEOMETRY, 0.0) / self.group_gpus
        credit = min(comp_tail, geom_head, 0.5 * service_cycles)
        if credit > 0.0:
            self.total_overlap_cycles += credit
            self.total_overlapped_batches += 1
        return credit

    def _batch_service_cycles(self, batch: List[Request]) -> float:
        result = self._render(batch[0].benchmark)
        frame_cycles = result.frame_cycles
        return frame_cycles * (1.0
                               + self.batch_overhead_x * (len(batch) - 1))

    def _complete(self, request: Request) -> None:
        session = self.sessions[request.session]
        latency_cycles = self.sim.now - request.arrival_cycles
        session.completed += 1
        self.total_completed += 1
        session.latency_sum_cycles += latency_cycles
        session.latency_max_cycles = max(session.latency_max_cycles,
                                         latency_cycles)
        self.latencies_cycles.append(latency_cycles)
        self.completion_times_cycles.append(self.sim.now)
        if request.deadline_at_cycles is not None \
                and self.sim.now > request.deadline_at_cycles:
            session.deadline_misses += 1
            self.total_deadline_misses += 1
        served_before = self._served_count.get(request.benchmark, 0)
        self._served_count[request.benchmark] = served_before + 1
        if not (served_before == 0
                and self._fresh_render.get(request.benchmark, False)):
            session.artifact_hits += 1

    def _requeue_or_shed(self, batch: List[Request]) -> None:
        """A group died with this batch in flight; salvage what we can."""
        survivors = any(self.alive)
        repairs = self._repairs_pending()
        for request in reversed(batch):
            request.attempts += 1
            if request.attempts > self.retry_limit:
                self._shed(request, SHED_RETRIES)
            elif self._expired(request):
                self._shed(request, SHED_DEADLINE)
            elif not survivors and not repairs:
                self._shed(request, SHED_NO_SURVIVORS)
            else:
                self.total_requeued += 1
                self.sessions[request.session].requeues += 1
                self.queue.appendleft(request)
        while len(self.queue) > self.queue_limit:
            self._shed(self.queue.pop(), SHED_EVICTED)
        self.queue_peak = max(self.queue_peak, len(self.queue))
        self._signal_work()
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if (self._arrivals_done and not self.queue
                and not any(self.in_flight)
                and not self._stop_event.triggered):
            self.drained_at_cycles = self.sim.now
            self._stop_event.succeed()

    # -- faults -------------------------------------------------------------

    def _apply_fault(self, gpu: int, kind: str) -> None:
        group = gpu // self.group_gpus
        if kind == EVENT_GPU_FAIL:
            if not self.gpu_up[gpu]:
                return
            self.gpu_up[gpu] = False
            if self.alive[group]:
                self.alive[group] = False
                self._event("group-fail",
                            f"gpu{gpu} fail-stopped; render group {group} "
                            f"out of the pool")
                self._fail_events[group].succeed()
        else:
            if self.gpu_up[gpu]:
                return
            self.gpu_up[gpu] = True
            lo = group * self.group_gpus
            whole = all(self.gpu_up[lo:lo + self.group_gpus])
            if whole and not self.alive[group]:
                self.alive[group] = True
                fail_event = self.sim.event()
                self._fail_events[group] = fail_event
                self.sim.process(self._group_proc(group, fail_event),
                                 name=f"serve-group{group}-revived")
                self._event("group-revive",
                            f"gpu{gpu} repaired; render group {group} "
                            f"rejoins the pool")
                self._signal_work()
        self._flush_if_stranded()

    def _flush_if_stranded(self) -> None:
        """No group alive and none coming back: shed all queued work."""
        if any(self.alive) or self._repairs_pending():
            return
        while self.queue:
            self._shed(self.queue.popleft(), SHED_NO_SURVIVORS)
        self._maybe_finish()

    def _repairs_pending(self) -> bool:
        for _, gpu, kind in self._fault_schedule[self._fault_index:]:
            if kind == EVENT_GPU_REPAIR and not self.gpu_up[gpu]:
                return True
        return False

    # -- bookkeeping --------------------------------------------------------

    def _event(self, kind: str, detail: str) -> None:
        self.events.append(ServeEvent(time=self.sim.now, kind=kind,
                                      detail=detail))

    def _shed_everything(self, reason: str) -> None:
        while self.queue:
            self._shed(self.queue.popleft(), reason)
        for group in range(self.groups):
            batch, self.in_flight[group] = self.in_flight[group], []
            for request in batch:
                self._shed(request, reason)

    def _build_report(self, degraded: bool, store_delta) -> ServeReport:
        slo = SloSummary.from_latencies(self.latencies_cycles,
                                        self.drained_at_cycles)
        stats = RunStats(num_gpus=self.groups * self.group_gpus)
        stats.frame_cycles = self.drained_at_cycles
        stats.serve_requests = self.total_requests
        stats.serve_admitted = self.total_admitted
        stats.serve_completed = self.total_completed
        stats.serve_rejected = self.total_rejected
        stats.serve_throttled = self.total_throttled
        stats.serve_shed = self.total_shed
        stats.serve_requeued = self.total_requeued
        stats.serve_batches = self.total_batches
        stats.serve_overlap_cycles = self.total_overlap_cycles
        stats.serve_overlapped_batches = self.total_overlapped_batches
        stats.serve_queue_peak = self.queue_peak
        stats.serve_deadline_misses = self.total_deadline_misses
        stats.serve_degraded_events = self.degraded_events
        stats.serve_latency_p50_cycles = slo.p50_cycles
        stats.serve_latency_p95_cycles = slo.p95_cycles
        stats.serve_latency_p99_cycles = slo.p99_cycles
        stats.artifact_hits = store_delta.hits
        stats.artifact_misses = store_delta.misses
        stats.artifact_evictions = store_delta.evictions
        stats.artifact_disk_loads = store_delta.disk_loads
        stats.artifact_disk_corrupt = store_delta.disk_corrupt
        service_cycles = {bench: result.frame_cycles for bench, result
                          in sorted(self.rendered_results.items())}
        return ServeReport(
            scheme=self.scheme, scale=self.setup.scale,
            benchmarks=self.workload.benchmarks,
            groups=self.groups, group_gpus=self.group_gpus,
            policy=self.policy, queue_limit=self.queue_limit,
            mean_service_cycles=self.workload.mean_service_cycles,
            drained_at_cycles=self.drained_at_cycles,
            degraded=degraded, shed_reasons=self.shed_reasons,
            slo=slo, sessions=self.sessions, events=self.events,
            stats=stats, service_cycles=service_cycles,
            completion_times_cycles=self.completion_times_cycles)
