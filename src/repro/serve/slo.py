"""SLO accounting and enforcement for the frame-serving daemon.

Latency here is *virtual* request latency: completion cycle minus arrival
cycle, measured on the daemon's discrete-event clock. Percentiles use the
nearest-rank method (the p99 of 100 samples is the 99th smallest), which
is deterministic and needs no interpolation policy.

:class:`SloGates` is the enforcement half: the CLI declares acceptable
shed-rate and p99 bounds, and a finished run that breaches either raises
:class:`~repro.errors.ServeOverloadError` — mapped to its own exit code
so CI can assert "the daemon survived 2x saturation within SLO" without
parsing tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ServeOverloadError


def latency_percentile_cycles(sorted_latencies_cycles: Sequence[float],
                              percentile: float) -> float:
    """Nearest-rank percentile over an ascending-sorted latency list."""
    if not sorted_latencies_cycles:
        return 0.0
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must lie in (0, 100] "
                         f"(got {percentile})")
    n = len(sorted_latencies_cycles)
    rank = max(1, -(-int(percentile * n) // 100))  # ceil(p*n/100), >= 1
    return sorted_latencies_cycles[min(n, rank) - 1]


@dataclass(frozen=True)
class SloSummary:
    """Latency/throughput digest over one serve run's completed requests."""

    completed: int = 0
    p50_cycles: float = 0.0
    p95_cycles: float = 0.0
    p99_cycles: float = 0.0
    mean_cycles: float = 0.0
    max_cycles: float = 0.0
    #: completed requests per million virtual cycles of daemon lifetime
    throughput_per_mcycle: float = 0.0

    @classmethod
    def from_latencies(cls, latencies_cycles: Sequence[float],
                       elapsed_cycles: float) -> "SloSummary":
        ordered = sorted(latencies_cycles)
        if not ordered:
            return cls()
        return cls(
            completed=len(ordered),
            p50_cycles=latency_percentile_cycles(ordered, 50.0),
            p95_cycles=latency_percentile_cycles(ordered, 95.0),
            p99_cycles=latency_percentile_cycles(ordered, 99.0),
            mean_cycles=sum(ordered) / len(ordered),
            max_cycles=ordered[-1],
            throughput_per_mcycle=(len(ordered) * 1e6 / elapsed_cycles
                                   if elapsed_cycles > 0 else 0.0))

    def to_dict(self) -> dict:
        return {
            "completed": self.completed,
            "p50_cycles": self.p50_cycles,
            "p95_cycles": self.p95_cycles,
            "p99_cycles": self.p99_cycles,
            "mean_cycles": self.mean_cycles,
            "max_cycles": self.max_cycles,
            "throughput_per_mcycle": self.throughput_per_mcycle,
        }


@dataclass(frozen=True)
class SloGates:
    """Declared service-level objectives for one serve run.

    ``max_shed_rate`` bounds the fraction of submitted requests that were
    *not* served (rejected, throttled, or shed); ``max_p99_x`` bounds the
    p99 request latency as a multiple of the workload's mean service
    time. ``None`` disables a gate.
    """

    max_shed_rate: Optional[float] = None
    max_p99_x: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_shed_rate is not None \
                and not 0.0 <= self.max_shed_rate <= 1.0:
            raise ValueError("max_shed_rate must lie in [0, 1]")
        if self.max_p99_x is not None and self.max_p99_x <= 0:
            raise ValueError("max_p99_x must be positive")

    @property
    def enabled(self) -> bool:
        return self.max_shed_rate is not None or self.max_p99_x is not None

    def check(self, report) -> None:
        """Raise :class:`~repro.errors.ServeOverloadError` on any breach.

        ``report`` is a :class:`~repro.serve.daemon.ServeReport`. All
        breaches are collected into one message so a CI failure names
        every violated objective at once.
        """
        breaches = []
        shed_rate = report.shed_rate
        p99_cycles = report.slo.p99_cycles
        if self.max_shed_rate is not None and shed_rate > self.max_shed_rate:
            breaches.append(
                f"shed rate {shed_rate:.3f} > allowed {self.max_shed_rate}")
        if self.max_p99_x is not None:
            limit_cycles = self.max_p99_x * report.mean_service_cycles
            if p99_cycles > limit_cycles:
                breaches.append(
                    f"p99 latency {p99_cycles:,.0f} cycles > allowed "
                    f"{limit_cycles:,.0f} ({self.max_p99_x}x mean service "
                    f"time)")
        if breaches:
            raise ServeOverloadError(
                "serve run breached its SLO gates: " + "; ".join(breaches),
                shed_rate=shed_rate, p99_cycles=p99_cycles)
