"""Open-loop load generation for the frame-serving daemon.

The generator produces a :class:`WorkloadSpec`: a merged, time-sorted list
of :class:`RequestArrival`\\ s from ``sessions`` independent simulated
clients. Arrivals are *open loop* — clients do not wait for responses, so
overload actually overloads (a closed loop would self-throttle and hide
the regime the admission controller exists for).

Each session draws from a non-homogeneous Poisson process via thinning:
candidate gaps are exponential at the profile's peak rate and each
candidate is accepted with probability ``factor(t) / max_factor``, where
``factor`` shapes the profile — constant (``steady``), square-wave bursts
(``burst``), or a sinusoidal day/night swing (``diurnal``).

Determinism: every session owns a :class:`random.Random` stream keyed by
``sha256(f"{seed}:serve-session:{session}")`` (the same construction the
MTTF trace generator uses), so adding a session or reordering generation
cannot perturb any other session's arrivals.

Rates are expressed relative to capacity: ``rate_x`` is the offered load
as a multiple of the serving pool's aggregate throughput
(``groups / mean_service_cycles`` requests per cycle), so ``rate_x=2.0``
always means 2x saturation regardless of scale or benchmark mix.
"""

from __future__ import annotations

import hashlib
import json
import math
import pathlib
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import ConfigError

PathLike = Union[str, pathlib.Path]

#: workload file format marker and schema version
WORKLOAD_FORMAT = "repro-request-workload"
WORKLOAD_VERSION = 1

PROFILE_STEADY = "steady"
PROFILE_BURST = "burst"
PROFILE_DIURNAL = "diurnal"
PROFILES = (PROFILE_STEADY, PROFILE_BURST, PROFILE_DIURNAL)


@dataclass(frozen=True)
class LoadProfile:
    """Shape of the offered load, independent of any benchmark.

    Durations and periods are multiples of the workload's mean service
    time (``duration_x=50`` runs for 50 mean-service-times), which keeps
    profiles meaningful across trace scales.
    """

    kind: str = PROFILE_STEADY
    sessions: int = 4              # unit: 1
    rate_x: float = 2.0            # offered load / pool capacity
    duration_x: float = 50.0       # run length, in mean service times
    seed: int = 0
    burst_x: float = 4.0           # burst height multiplier
    burst_period_x: float = 10.0   # burst spacing, in mean service times
    burst_len_x: float = 2.0       # burst width, in mean service times
    diurnal_amplitude: float = 0.8  # unit: 1 # sinusoid swing, < 1

    def __post_init__(self) -> None:
        if self.kind not in PROFILES:
            raise ConfigError(f"unknown load profile {self.kind!r} "
                              f"(known: {', '.join(PROFILES)})")
        if self.sessions <= 0:
            raise ConfigError("need at least one client session")
        if self.rate_x <= 0:
            raise ConfigError("offered load rate_x must be positive")
        if self.duration_x <= 0:
            raise ConfigError("workload duration must be positive")
        if self.burst_x < 1.0:
            raise ConfigError("burst_x must be >= 1 (1 = no burst)")
        if self.burst_period_x <= 0 or self.burst_len_x <= 0:
            raise ConfigError("burst period and length must be positive")
        if self.burst_len_x > self.burst_period_x:
            raise ConfigError("burst length cannot exceed the burst period")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError("diurnal amplitude must lie in [0, 1) so the "
                              "arrival rate stays positive")

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "sessions": self.sessions,
            "rate_x": self.rate_x, "duration_x": self.duration_x,
            "seed": self.seed, "burst_x": self.burst_x,
            "burst_period_x": self.burst_period_x,
            "burst_len_x": self.burst_len_x,
            "diurnal_amplitude": self.diurnal_amplitude,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LoadProfile":
        return cls(kind=str(data["kind"]), sessions=int(data["sessions"]),
                   rate_x=float(data["rate_x"]),
                   duration_x=float(data["duration_x"]),
                   seed=int(data["seed"]), burst_x=float(data["burst_x"]),
                   burst_period_x=float(data["burst_period_x"]),
                   burst_len_x=float(data["burst_len_x"]),
                   diurnal_amplitude=float(data["diurnal_amplitude"]))


@dataclass(frozen=True)
class RequestArrival:
    """One client's frame-render request entering the daemon."""

    time: float      # unit: cycles # absolute virtual arrival time
    session: int
    benchmark: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"arrival time cannot be negative "
                              f"(got {self.time})")
        if self.session < 0:
            raise ConfigError("session index cannot be negative")


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully materialized workload: profile + arrivals, time-sorted."""

    profile: LoadProfile
    benchmarks: Tuple[str, ...]
    mean_service_cycles: float
    duration_cycles: float
    arrivals: Tuple[RequestArrival, ...] = field(default_factory=tuple)


def _session_rng(seed: int, session: int) -> Random:
    """Independent per-session stream (sha256, never salted ``hash()``)."""
    digest = hashlib.sha256(
        f"{seed}:serve-session:{session}".encode()).digest()
    return Random(int.from_bytes(digest[:8], "big"))


def _rate_factor(profile: LoadProfile, t_cycles: float,
                 mean_service_cycles: float,
                 duration_cycles: float) -> float:
    """Instantaneous rate multiplier of the profile at time ``t_cycles``."""
    if profile.kind == PROFILE_BURST:
        period_cycles = profile.burst_period_x * mean_service_cycles
        phase_cycles = t_cycles % period_cycles
        if phase_cycles < profile.burst_len_x * mean_service_cycles:
            return profile.burst_x
        return 1.0
    if profile.kind == PROFILE_DIURNAL:
        return 1.0 + profile.diurnal_amplitude * math.sin(
            2.0 * math.pi * t_cycles / duration_cycles)
    return 1.0


def _max_factor(profile: LoadProfile) -> float:
    if profile.kind == PROFILE_BURST:
        return profile.burst_x
    if profile.kind == PROFILE_DIURNAL:
        return 1.0 + profile.diurnal_amplitude
    return 1.0


def generate_workload(profile: LoadProfile, benchmarks: Sequence[str],
                      mean_service_cycles: float,
                      groups: int) -> WorkloadSpec:
    """Materialize a workload for a pool of ``groups`` render groups.

    The pool's aggregate capacity is ``groups / mean_service_cycles``
    requests per cycle; the profile's ``rate_x`` scales that, split
    evenly across sessions. Benchmarks are drawn uniformly per request
    from the session's own stream.
    """
    if not benchmarks:
        raise ConfigError("workload needs at least one benchmark")
    if mean_service_cycles <= 0:
        raise ConfigError("mean service time must be positive")
    if groups <= 0:
        raise ConfigError("need at least one render group")
    duration_cycles = profile.duration_x * mean_service_cycles
    rate_per_session = (profile.rate_x * groups
                        / mean_service_cycles / profile.sessions)
    peak_rate = rate_per_session * _max_factor(profile)
    bench_list = list(benchmarks)
    arrivals: List[RequestArrival] = []
    for session in range(profile.sessions):
        rng = _session_rng(profile.seed, session)
        t_cycles = 0.0
        while True:
            t_cycles += rng.expovariate(peak_rate)
            if t_cycles >= duration_cycles:
                break
            accept = (_rate_factor(profile, t_cycles, mean_service_cycles,
                                   duration_cycles)
                      / _max_factor(profile))
            if rng.random() >= accept:
                continue  # thinned out
            benchmark = bench_list[rng.randrange(len(bench_list))]
            arrivals.append(RequestArrival(time=t_cycles, session=session,
                                           benchmark=benchmark))
    arrivals.sort(key=lambda a: (a.time, a.session))
    return WorkloadSpec(profile=profile, benchmarks=tuple(bench_list),
                        mean_service_cycles=mean_service_cycles,
                        duration_cycles=duration_cycles,
                        arrivals=tuple(arrivals))


def calibrate_service_cycles(scheme: str, benchmarks: Sequence[str],
                             setup) -> Tuple[Dict[str, float], float]:
    """Per-benchmark service time (frame cycles) on one render group.

    Runs each benchmark once through the ordinary cached
    :func:`~repro.harness.runner.run` path — the calibration render is
    the same artifact the daemon later serves, so it is free work, not
    extra work. Returns ``({benchmark: frame_cycles}, mean)``.
    """
    from ..harness.runner import run
    from ..traces import load_benchmark
    if not benchmarks:
        raise ConfigError("calibration needs at least one benchmark")
    service_cycles: Dict[str, float] = {}
    for benchmark in benchmarks:
        result = run(scheme, load_benchmark(benchmark, setup.scale), setup)
        service_cycles[benchmark] = result.frame_cycles
    mean_cycles = sum(service_cycles.values()) / len(service_cycles)
    return service_cycles, mean_cycles


# ---------------------------------------------------------------------------
# Serialization — canonical JSON, byte-stable across save/load/save.


def workload_to_dict(workload: WorkloadSpec) -> Dict[str, object]:
    return {
        "format": WORKLOAD_FORMAT,
        "version": WORKLOAD_VERSION,
        "profile": workload.profile.to_dict(),
        "benchmarks": list(workload.benchmarks),
        "mean_service_cycles": workload.mean_service_cycles,
        "duration_cycles": workload.duration_cycles,
        "arrivals": [[a.time, a.session, a.benchmark]
                     for a in workload.arrivals],
    }


def workload_from_dict(data: Dict[str, object]) -> WorkloadSpec:
    if not isinstance(data, dict) or data.get("format") != WORKLOAD_FORMAT:
        raise ConfigError(
            f"not a request workload: expected format={WORKLOAD_FORMAT!r}")
    version = data.get("version")
    if version != WORKLOAD_VERSION:
        raise ConfigError(
            f"unsupported workload version {version!r} "
            f"(this build reads version {WORKLOAD_VERSION})")
    try:
        profile = LoadProfile.from_dict(dict(data["profile"]))
        arrivals = tuple(
            RequestArrival(time=float(t), session=int(s), benchmark=str(b))
            for t, s, b in data["arrivals"])
        return WorkloadSpec(
            profile=profile,
            benchmarks=tuple(str(b) for b in data["benchmarks"]),
            mean_service_cycles=float(data["mean_service_cycles"]),
            duration_cycles=float(data["duration_cycles"]),
            arrivals=arrivals)
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed request workload: {exc}") from exc


def save_workload(workload: WorkloadSpec, path: PathLike) -> None:
    """Write the workload as canonical JSON (sorted keys)."""
    text = json.dumps(workload_to_dict(workload), sort_keys=True, indent=1)
    pathlib.Path(path).write_text(text + "\n")


def load_workload(path: PathLike) -> WorkloadSpec:
    """Read a workload written by :func:`save_workload`."""
    p = pathlib.Path(path)
    if not p.is_file():
        raise ConfigError(f"request workload not found: {p}")
    try:
        data = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"request workload {p} is not valid JSON: {exc}") from exc
    return workload_from_dict(data)
