"""repro.serve: an overload-safe virtual-time frame-serving daemon.

The batch harness answers "how fast is one frame"; this package answers
"what happens when many clients want frames at once". A
:class:`~repro.serve.daemon.FrameServer` runs entirely in *virtual time*
on the repo's discrete-event kernel: simulated client sessions submit
frame-render requests (open-loop Poisson arrivals from
:mod:`repro.serve.loadgen`), a bounded admission queue with pluggable
shedding policies and per-session token-bucket budgets keeps overload
from growing the queue without bound, requests batch by benchmark
through the shared :class:`~repro.render.service.RenderService`, and
injected GPU failures re-queue in-flight work against surviving render
groups with bounded retry + deadline semantics.

:mod:`repro.serve.slo` turns the completion ledger into latency
percentiles, throughput, and enforceable SLO gates
(:class:`~repro.serve.slo.SloGates` raises
:class:`~repro.errors.ServeOverloadError`, CLI exit code 8).

Everything here is simulated: the lint rule set bans *any* host-clock
read (even ``time.monotonic``) inside this package.
"""

from .daemon import (POLICIES, POLICY_DEADLINE, POLICY_DROP_NEWEST,
                     POLICY_DROP_OLDEST, FrameServer, ServeEvent,
                     ServeReport, SessionReport, gpu_events_from_plan,
                     gpu_events_from_trace)
from .loadgen import (PROFILES, LoadProfile, RequestArrival, WorkloadSpec,
                      calibrate_service_cycles, generate_workload,
                      load_workload, save_workload)
from .slo import SloGates, SloSummary, latency_percentile_cycles

__all__ = [
    "FrameServer", "LoadProfile", "POLICIES", "POLICY_DEADLINE",
    "POLICY_DROP_NEWEST", "POLICY_DROP_OLDEST", "PROFILES",
    "RequestArrival", "ServeEvent", "ServeReport", "SessionReport",
    "SloGates", "SloSummary", "WorkloadSpec", "calibrate_service_cycles",
    "generate_workload", "gpu_events_from_plan", "gpu_events_from_trace",
    "latency_percentile_cycles", "load_workload", "save_workload",
]
