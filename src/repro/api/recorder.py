"""A DirectX-style command-recording API (the paper's software layer).

§IV-A extends the graphics API with ``CompGroupStart()`` / ``CompGroupEnd()``
markers that the driver turns into composition groups. This module provides
that programming model: a :class:`CommandRecorder` with familiar state-
setting and draw calls, explicit (optional) composition-group markers, and
a driver-side validator that checks user markers against the boundary rules
(every §IV-A event must split groups — a marker that spans a render-target
switch would corrupt the frame).

    rec = CommandRecorder(width=256, height=256)
    rec.set_render_target(0)
    rec.comp_group_start()
    rec.draw_triangles(positions, colors)
    rec.comp_group_end()
    trace = rec.finish("my-scene")

Traces built this way run through every scheme and the whole harness.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.grouping import boundary_reason, split_into_groups
from ..errors import PipelineError, TraceError
from ..geometry.primitives import (BlendOp, DepthFunc, DrawCommand,
                                   RenderState)
from ..traces.trace import Frame, Trace


class CommandRecorder:
    """Records draw commands and state changes into frames."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise TraceError("viewport must be positive")
        self.width = width
        self.height = height
        self._frames: List[Frame] = []
        self._draws: List[DrawCommand] = []
        self._camera = None
        self._state = RenderState()
        self._next_draw_id = 0
        #: explicit CompGroupStart()/CompGroupEnd() ranges, as half-open
        #: index intervals into the current frame's draw list
        self._group_ranges: List[Tuple[int, int]] = []
        self._open_group_start: Optional[int] = None

    # -- state setting -------------------------------------------------------

    def set_camera(self, mvp: np.ndarray) -> None:
        """Set the 4x4 model-view-projection matrix for the whole trace
        (world-space draws; None/unset = geometry is already in NDC)."""
        mvp = np.asarray(mvp, dtype=np.float32)
        if mvp.shape != (4, 4):
            raise TraceError("camera must be a 4x4 matrix")
        self._camera = mvp

    def set_render_target(self, target_id: int,
                          depth_buffer: Optional[int] = None) -> None:
        self._state = RenderState(
            render_target=target_id,
            depth_buffer=target_id if depth_buffer is None else depth_buffer,
            depth_write=self._state.depth_write,
            depth_func=self._state.depth_func,
            blend_op=self._state.blend_op,
            early_z=self._state.early_z)

    def set_depth_write(self, enabled: bool) -> None:
        self._replace(depth_write=enabled)

    def set_depth_func(self, func: DepthFunc) -> None:
        self._replace(depth_func=func)

    def set_blend(self, op: BlendOp) -> None:
        self._replace(blend_op=op)
        if op is not BlendOp.REPLACE:
            self._replace(depth_write=False)

    def set_early_z(self, enabled: bool) -> None:
        self._replace(early_z=enabled)

    def _replace(self, **kwargs) -> None:
        from dataclasses import replace
        self._state = replace(self._state, **kwargs)

    # -- composition-group markers (the §IV-A API extension) -----------------

    def comp_group_start(self) -> None:
        """Begin an explicit composition group (CompGroupStart())."""
        if self._open_group_start is not None:
            raise TraceError("composition group already open")
        self._open_group_start = len(self._draws)

    def comp_group_end(self) -> None:
        """End the current composition group (CompGroupEnd())."""
        if self._open_group_start is None:
            raise TraceError("no composition group open")
        self._group_ranges.append((self._open_group_start,
                                   len(self._draws)))
        self._open_group_start = None

    # -- draw calls -----------------------------------------------------------

    def draw_triangles(self, positions: np.ndarray, colors: np.ndarray,
                       vertex_cost: float = 36.0, pixel_cost: float = 110.0,
                       texture_id: Optional[int] = None) -> int:
        """Record one draw command; returns its draw id."""
        draw = DrawCommand(draw_id=self._next_draw_id,
                           positions=positions, colors=colors,
                           state=self._state, vertex_cost=vertex_cost,
                           pixel_cost=pixel_cost, texture_id=texture_id)
        self._draws.append(draw)
        self._next_draw_id += 1
        return draw.draw_id

    def draw_quad(self, x0: float, y0: float, x1: float, y1: float,
                  depth: float, color: Tuple[float, float, float, float],
                  **kwargs) -> int:
        """Record an axis-aligned NDC quad (two triangles)."""
        positions = np.array([
            [[x0, y0, depth], [x1, y0, depth], [x1, y1, depth]],
            [[x0, y0, depth], [x1, y1, depth], [x0, y1, depth]],
        ], dtype=np.float32)
        colors = np.tile(np.asarray(color, dtype=np.float32), (2, 3, 1))
        return self.draw_triangles(positions, colors, **kwargs)

    # -- frame management -------------------------------------------------------

    def end_frame(self) -> None:
        """Swap: close the current frame (§IV-A event 1)."""
        if self._open_group_start is not None:
            raise TraceError("composition group still open at frame end")
        if not self._draws:
            raise TraceError("cannot end an empty frame")
        self.validate_markers()
        self._frames.append(Frame(draws=self._draws))
        self._draws = []
        self._group_ranges = []

    def finish(self, name: str) -> Trace:
        """Close the last frame and build the trace."""
        if self._draws:
            self.end_frame()
        if not self._frames:
            raise TraceError("no frames recorded")
        trace = Trace(name=name, width=self.width, height=self.height,
                      frames=self._frames, camera=self._camera)
        trace.validate()
        return trace

    # -- driver-side marker validation -------------------------------------------

    def validate_markers(self) -> None:
        """Check explicit markers against the §IV-A boundary rules.

        A user-placed group may be *smaller* than the driver's greedy
        grouping, but must never span a mandatory boundary event: draws
        inside one marked group have to share every group-defining state
        field. Raises :class:`PipelineError` naming the offending draws.
        """
        ranges = list(self._group_ranges)
        if self._open_group_start is not None:
            ranges.append((self._open_group_start, len(self._draws)))
        for start, end in ranges:
            for i in range(start + 1, end):
                reason = boundary_reason(self._draws[i - 1], self._draws[i])
                if reason is not None:
                    raise PipelineError(
                        f"composition group spanning draws {start}..{end} "
                        f"crosses a mandatory boundary at draw {i} "
                        f"({reason})")


def driver_groups(trace: Trace):
    """The driver's greedy grouping of a recorded trace (§IV-A)."""
    return split_into_groups(trace.frame)
