"""The §IV-A software layer: a command-recording graphics API with
CompGroupStart()/CompGroupEnd() markers."""

from .recorder import CommandRecorder, driver_groups

__all__ = ["CommandRecorder", "driver_groups"]
