"""Command-line interface: ``python -m repro <command>``.

Commands
========

``render``          run one scheme on a benchmark, print stats, optionally
                    dump the frame as a PPM
``compare``         run several schemes on one benchmark, print speedups
``figures``         regenerate one or more of the paper's figures
``sweep``           sweep one setup parameter through the experiment engine
``inspect``         print a trace's structure (groups, histogram, coverage)
``timeline``        render an ASCII execution Gantt for one scheme
``export``          synthesize a benchmark trace and save it to a .npz file
``export-results``  run schemes and write a CSV/JSON of flattened results
``bench``           time a scheme x benchmark sweep cold vs warm against the
                    artifact store, verify bit-identical output, write JSON
``gen-trace``       generate an MTTF-driven failure trace for the configured
                    fabric (topology-fingerprinted JSON; see
                    :mod:`repro.faults.traces`)
``soak``            render N consecutive frames under a failure trace,
                    checking per-frame bit-identity vs the fault-free oracle
``serve``           run the virtual-time frame-serving daemon against an
                    open-loop request workload (admission control,
                    batching, SLO gates; see :mod:`repro.serve`)
``loadgen``         generate a request workload file for ``serve``
``lint``            run simlint (determinism static analysis) over sources

Every simulation command accepts ``--scale {tiny,small,paper}``,
``--gpus N``, ``--topology {p2p,bus,ring,switch}``,
``--watchdog-cycles N`` (bound simulated progress: a run that advances
past the budget without finishing raises a typed watchdog error instead
of spinning) and ``--artifact-dir DIR`` (spill the render artifact store
to disk so warm state survives across invocations). ``render``,
``compare`` and ``timeline`` accept ``--sanitize`` to run the DES with
the race sanitizer attached. ``sweep``, ``figures`` and
``export-results`` additionally take the experiment-engine flags
``--jobs``, ``--timeout``, ``--retries``, ``--journal`` and ``--resume``
(see :mod:`repro.harness.engine`).

Exit codes
==========

0 success · 1 library error · 2 bad configuration/usage · 3 completed with
FAILED cells (partial results salvaged) · 4 job timeout · 5 worker crash ·
6 retry budget exhausted · 7 failure-trace topology fingerprint mismatch ·
8 serve run breached its SLO gates · 9 run degraded (virtual-time
watchdog tripped; serve degrades in-band) · 10 unrecoverable injected
fault · 11 scheduler reached an invalid state

The mapping lives in :data:`repro.errors.EXIT_CODES` (re-exported here)
so the error-contract lint pass and ``main()`` consume one registry.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from .core import plan_frame, split_into_groups, summarize_plan
from .errors import (EXIT_BUDGET, EXIT_CODES, EXIT_CONFIG, EXIT_CRASH,
                     EXIT_DEGRADED, EXIT_ERROR, EXIT_FAULT,
                     EXIT_FINGERPRINT, EXIT_OK, EXIT_OVERLOAD,
                     EXIT_PARTIAL, EXIT_SCHEDULING, EXIT_TIMEOUT,
                     ConfigError, ReproError, exit_code_for)
from .harness import MAIN_SCHEMES, SCHEMES, make_setup, run
from .harness import experiments as experiments_module
from .harness import report as report_module
from .harness.engine import Engine
from .stats import ALL_STAGES
from .traces import BENCHMARK_NAMES, load_benchmark, triangle_histogram
from .traces.io import load_trace, save_trace

#: figure name -> (experiment callable name, renderer callable name)
FIGURES = {
    "table2": ("table2_config", "render_dict"),
    "table3": ("table3_benchmarks", "render_table3"),
    "fig2": ("fig2_geometry_share", "render_fig2"),
    "fig4": ("fig4_gpupd_overheads", "render_fig4"),
    "fig13": ("fig13_performance", None),
    "fig15": ("fig15_depth_test", "render_fig15"),
    "fig17": ("fig17_traffic", "render_fig17"),
    "head2head": ("composition_head_to_head", "render_head_to_head"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHOPIN multi-GPU rendering reproduction (HPCA 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--scale", default="tiny",
                       choices=("tiny", "small", "paper"))
        p.add_argument("--gpus", type=int, default=8)
        from .config import ALL_TOPOLOGIES
        p.add_argument("--topology", default=None,
                       choices=ALL_TOPOLOGIES,
                       help="interconnect fabric (default: p2p, the "
                            "paper's DGX-like full mesh)")
        p.add_argument("--artifact-dir", metavar="DIR", default=None,
                       help="spill the render artifact store to this "
                            "directory (shared across processes and "
                            "invocations; see repro.render.store)")
        p.add_argument("--watchdog-cycles", type=float, default=None,
                       metavar="CYCLES",
                       help="virtual-time progress budget: abort (typed "
                            "WatchdogError) any simulation that advances "
                            "past this many cycles without completing; "
                            "the serve daemon degrades instead of "
                            "crashing (default: unbounded)")

    def fault_opt(p):
        p.add_argument(
            "--fault-plan", metavar="SPEC", default=None,
            help="inject deterministic faults, e.g. "
                 "'seed=7,drop=0.01,fail=2@50000,slow=0:20000:0.5' "
                 "(keys: seed, drop, corrupt, retries, backoff, detect, "
                 "gpus, fail=GPU@CYCLE, slow=START:END:FACTOR — slow "
                 "windows must be disjoint), or 'trace:PATH.json' to "
                 "replay frame 0 of a generated failure trace (see "
                 "gen-trace; the trace's topology fingerprint must match "
                 "this system, exit 7 otherwise)")

    def sanitize_opt(p):
        p.add_argument(
            "--sanitize", action="store_true",
            help="attach the race sanitizer: fail the run on same-cycle "
                 "conflicting accesses to shared state (see repro.analysis)")

    def engine_opts(p):
        p.add_argument("--jobs", type=int, default=1,
                       help="worker parallelism (>1 uses supervised "
                            "subprocesses; default serial in-process)")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job wall-clock budget in seconds "
                            "(implies subprocess isolation)")
        p.add_argument("--retries", type=int, default=2,
                       help="extra attempts after a transient failure "
                            "(timeout / worker death); default 2")
        p.add_argument("--journal", metavar="PATH", default=None,
                       help="append every job completion to this JSONL "
                            "run journal")
        p.add_argument("--resume", metavar="PATH", default=None,
                       help="skip jobs already completed in this journal "
                            "(fingerprint-matched)")

    render = sub.add_parser("render", help="run one scheme on a benchmark")
    common(render)
    fault_opt(render)
    sanitize_opt(render)
    render.add_argument("benchmark", choices=BENCHMARK_NAMES)
    render.add_argument("--scheme", default="chopin+sched",
                        choices=sorted(SCHEMES))
    render.add_argument("--ppm", metavar="PATH",
                        help="write the rendered frame as a PPM image")

    compare = sub.add_parser("compare",
                             help="speedups of several schemes")
    common(compare)
    fault_opt(compare)
    sanitize_opt(compare)
    compare.add_argument("benchmark", choices=BENCHMARK_NAMES)
    compare.add_argument("--schemes", nargs="+", default=list(MAIN_SCHEMES),
                         choices=sorted(SCHEMES))

    figures = sub.add_parser("figures", help="regenerate paper figures")
    common(figures)
    engine_opts(figures)
    figures.add_argument("names", nargs="+", choices=sorted(FIGURES))
    figures.add_argument("--benchmarks", nargs="+",
                         default=list(BENCHMARK_NAMES),
                         choices=BENCHMARK_NAMES)

    sweep_cmd = sub.add_parser(
        "sweep", help="sweep one make_setup parameter over a value range")
    common(sweep_cmd)
    engine_opts(sweep_cmd)
    sweep_cmd.add_argument("parameter",
                           help="make_setup keyword to sweep (e.g. "
                                "num_gpus, bandwidth_gb_per_s)")
    sweep_cmd.add_argument("values", nargs="+",
                           help="swept values (parsed as int/float/string)")
    sweep_cmd.add_argument("--schemes", nargs="+",
                           default=["chopin+sched"], choices=sorted(SCHEMES))
    sweep_cmd.add_argument("--benchmarks", nargs="+", default=["cod2"],
                           choices=BENCHMARK_NAMES)
    sweep_cmd.add_argument("--baseline", default="duplication",
                           choices=sorted(SCHEMES))
    sweep_cmd.add_argument("--pinned-baseline", action="store_true",
                           help="pin the baseline to the default config "
                                "instead of re-running it at each value")

    inspect = sub.add_parser("inspect", help="show a trace's structure")
    common(inspect)
    inspect.add_argument("benchmark", choices=BENCHMARK_NAMES)

    export = sub.add_parser("export", help="save a benchmark trace to .npz")
    common(export)
    export.add_argument("benchmark", choices=BENCHMARK_NAMES)
    export.add_argument("output", help="output .npz path")

    timeline = sub.add_parser(
        "timeline", help="render an ASCII execution Gantt for one scheme")
    common(timeline)
    fault_opt(timeline)
    sanitize_opt(timeline)
    timeline.add_argument("benchmark", choices=BENCHMARK_NAMES)
    timeline.add_argument("--scheme", default="chopin+sched",
                          choices=sorted(SCHEMES))
    timeline.add_argument("--width", type=int, default=100)
    timeline.add_argument("--links", action="store_true",
                          help="include inter-GPU link lanes")

    results = sub.add_parser(
        "export-results", help="run schemes and write a CSV/JSON of results")
    common(results)
    fault_opt(results)
    engine_opts(results)
    results.add_argument("output", help="output .csv or .json path")
    results.add_argument("--benchmarks", nargs="+",
                         default=list(BENCHMARK_NAMES),
                         choices=BENCHMARK_NAMES)
    results.add_argument("--schemes", nargs="+", default=list(MAIN_SCHEMES),
                         choices=sorted(SCHEMES))

    bench = sub.add_parser(
        "bench",
        help="measure the artifact store: cold vs warm sweep wall-time",
        description="Run a (scheme x benchmark) sweep twice — once against "
                    "a cleared artifact store, once warm — assert the two "
                    "passes produce bit-identical images and identical "
                    "statistics, and write the wall-times, speedup and "
                    "store hit rates as JSON. With --artifact-dir the warm "
                    "pass drops the memory tier first, so it also proves "
                    "the disk-reload path. Exits 1 when the warm pass "
                    "misses --min-speedup or diverges from the cold pass.")
    common(bench)
    bench.add_argument("--benchmarks", nargs="+", default=["cod2", "wolf"],
                       choices=BENCHMARK_NAMES)
    bench.add_argument("--schemes", nargs="+",
                       default=["duplication", "gpupd", "chopin+sched"],
                       choices=sorted(SCHEMES))
    bench.add_argument("--output", default="BENCH_artifact_cache.json",
                       help="JSON report path "
                            "(default: BENCH_artifact_cache.json)")
    bench.add_argument("--min-speedup", type=float, default=1.0,
                       help="fail (exit 1) when warm wall-time is not at "
                            "least this factor faster than cold "
                            "(default 1.0: warm must beat cold)")
    bench.add_argument("--mode", default="cache",
                       choices=("cache", "pipelining"),
                       help="cache: cold-vs-warm artifact-store benchmark "
                            "(the default). pipelining: simulated-cycle "
                            "benchmark of the in-flight group window — "
                            "chopin+sched and dfb at pipeline_depth 1 vs "
                            "unbounded, asserting bit-identical images and "
                            "reporting idle/stall/overlap cycles "
                            "(--schemes is ignored; default output "
                            "BENCH_pipelining.json)")
    bench.add_argument("--min-overlap-win", type=float, default=0.0,
                       help="pipelining mode gate: fail (exit 1) unless "
                            "unbounding the window cuts summed idle "
                            "cycles by at least this fraction vs "
                            "pipeline_depth=1 (default 0.0)")

    gen_trace = sub.add_parser(
        "gen-trace",
        help="generate an MTTF-driven failure trace (fingerprinted JSON)",
        description="Draw per-link and per-GPU failure events from "
                    "exponential MTTF/MTTR renewal processes (loss rates "
                    "from an empirical CorrOpt-style distribution) and "
                    "write them as a versioned JSON trace. The trace "
                    "embeds a fingerprint of the fabric it was generated "
                    "for (topology kind, GPU count, link parameters); "
                    "replaying it against any other system exits 7.")
    common(gen_trace)
    gen_trace.add_argument("output", help="output trace .json path")
    gen_trace.add_argument("--seed", type=int, default=0)
    gen_trace.add_argument("--frames", type=int, default=None,
                           help="trace horizon in frame windows (default 5)")
    gen_trace.add_argument("--frame-cycles", type=float, default=None,
                           metavar="CYCLES",
                           help="length of one frame window in cycles")
    for element in ("link", "degrade", "gpu"):
        gen_trace.add_argument(f"--{element}-mttf", type=float, default=None,
                               metavar="CYCLES",
                               help=f"mean cycles between {element} "
                                    f"failures (0 disables the process)")
        gen_trace.add_argument(f"--{element}-mttr", type=float, default=None,
                               metavar="CYCLES",
                               help=f"mean {element} repair time in cycles")

    soak = sub.add_parser(
        "soak",
        help="render N consecutive frames under a failure trace",
        description="Replay a gen-trace failure trace across N consecutive "
                    "frames: each frame runs under the trace window's fault "
                    "plan (fail-stop state carries across frame boundaries) "
                    "and its image is checked bit-for-bit against the "
                    "fault-free oracle. Exits 1 when any frame diverges, 7 "
                    "when the trace's topology fingerprint does not match "
                    "the configured system.")
    common(soak)
    soak.add_argument("benchmark", choices=BENCHMARK_NAMES)
    soak.add_argument("--trace", required=True, metavar="PATH",
                      help="failure trace written by gen-trace")
    soak.add_argument("--scheme", default="chopin+sched",
                      choices=sorted(SCHEMES))
    soak.add_argument("--frames", type=int, default=None,
                      help="frames to render (default: the whole trace)")
    soak.add_argument("--csv", metavar="PATH", default=None,
                      help="write one CSV row per frame")

    def serve_load_opts(p):
        p.add_argument("--sessions", type=int, default=4,
                       help="concurrent simulated client sessions")
        p.add_argument("--rate-x", type=float, default=2.0,
                       help="offered load as a multiple of pool capacity "
                            "(2.0 = 2x saturation; default 2.0)")
        p.add_argument("--duration-x", type=float, default=50.0,
                       help="workload length in mean service times")
        p.add_argument("--profile", default="steady",
                       choices=("steady", "burst", "diurnal"),
                       help="arrival-rate shape over time")
        p.add_argument("--seed", type=int, default=0,
                       help="workload seed (per-session sha256 streams)")

    serve = sub.add_parser(
        "serve",
        help="run the virtual-time frame-serving daemon under load",
        description="Run repro.serve: simulated client sessions submit "
                    "frame-render requests against a pool of render "
                    "groups, through a bounded admission queue with a "
                    "pluggable shedding policy, optional per-session "
                    "budgets, deadline semantics and injected GPU "
                    "faults. --gpus is GPUs PER RENDER GROUP; the pool "
                    "has --groups of them. Exit codes: 0 = served within "
                    "SLO, 8 = an SLO gate breached, 9 = degraded "
                    "(virtual-time watchdog tripped).")
    common(serve)
    fault_opt(serve)
    serve_load_opts(serve)
    serve.add_argument("benchmarks", nargs="+", choices=BENCHMARK_NAMES,
                       help="benchmark mix requests draw from (uniform)")
    serve.add_argument("--scheme", default="chopin+sched",
                       choices=sorted(SCHEMES))
    serve.add_argument("--groups", type=int, default=2,
                       help="render groups in the serving pool")
    serve.add_argument("--load", metavar="PATH", default=None,
                       help="replay a workload file written by loadgen "
                            "instead of generating one")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="admission queue bound (requests)")
    serve.add_argument("--policy", default="drop-newest",
                       choices=("drop-newest", "drop-oldest",
                                "deadline-expired"),
                       help="shedding policy when the queue is full")
    serve.add_argument("--batch-limit", type=int, default=4,
                       help="max same-benchmark requests per render batch")
    serve.add_argument("--pipeline-overlap", action="store_true",
                       help="overlap a back-to-back batch's geometry with "
                            "the previous frame's composition tail "
                            "(cross-request pipelining; off by default)")
    serve.add_argument("--retry-limit", type=int, default=3,
                       help="re-queue attempts after a group failure "
                            "before a request sheds")
    serve.add_argument("--deadline-x", type=float, default=None,
                       help="per-request deadline in mean service times "
                            "(default: none)")
    serve.add_argument("--budget-x", type=float, default=None,
                       help="per-session token-bucket budget as a "
                            "multiple of the session's fair share of "
                            "pool capacity (default: unlimited)")
    serve.add_argument("--csv", metavar="PATH", default=None,
                       help="write pool + per-session rows as CSV")
    serve.add_argument("--json", metavar="PATH", default=None,
                       help="write the full serve report as JSON")
    serve.add_argument("--max-shed-rate", type=float, default=None,
                       help="SLO gate: max tolerated fraction of "
                            "unserved requests (breach exits 8)")
    serve.add_argument("--max-p99-x", type=float, default=None,
                       help="SLO gate: max p99 latency in mean service "
                            "times (breach exits 8)")

    loadgen = sub.add_parser(
        "loadgen",
        help="generate a request workload file for serve",
        description="Calibrate per-benchmark service times on one render "
                    "group, draw open-loop Poisson arrivals for the "
                    "requested profile, and write the workload as "
                    "canonical JSON for 'serve --load'.")
    common(loadgen)
    serve_load_opts(loadgen)
    loadgen.add_argument("output", help="output workload .json path")
    loadgen.add_argument("--benchmarks", nargs="+", default=["wolf"],
                         choices=BENCHMARK_NAMES)
    loadgen.add_argument("--scheme", default="chopin+sched",
                         choices=sorted(SCHEMES))
    loadgen.add_argument("--groups", type=int, default=2,
                         help="render groups the workload is sized for")

    lint = sub.add_parser(
        "lint", help="run simlint (determinism static analysis)",
        description="Run simlint over Python sources. Exit codes: 0 = "
                    "clean (or all findings below the --fail-on bar), "
                    "1 = failing findings, 2 = bad configuration "
                    "(nonexistent path, malformed baseline).")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--format", dest="fmt", default="text",
                      choices=("text", "json"))
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--deep", action="store_true",
                      help="also run the project-wide passes (units/"
                           "dimension checker, nondeterminism taint, "
                           "resource protocol, error contract, "
                           "effect/purity inference with the hot-path "
                           "allocation lint, cache-key soundness) over "
                           "all paths as one program")
    lint.add_argument("--changed", nargs="?", const="main", default=None,
                      metavar="REF",
                      help="report only files touched since merge-base "
                           "with REF (default: main) plus their reverse "
                           "import dependencies; deep passes still "
                           "analyze the whole tree")
    lint.add_argument("--json-report", metavar="FILE",
                      help="additionally write the findings (after "
                           "baseline filtering) to FILE as JSON")
    lint.add_argument("--baseline", metavar="FILE",
                      help="suppress findings recorded in this JSON "
                           "baseline; only new findings count")
    lint.add_argument("--update-baseline", metavar="FILE",
                      help="write the current findings to FILE as the "
                           "new baseline and exit 0")
    lint.add_argument("--fail-on", default="any",
                      choices=("any", "error", "never"),
                      help="which findings exit nonzero: any finding "
                           "(default), only severity=error findings, or "
                           "never (report only)")

    return parser


def _parse_faults(args, config=None):
    """FaultPlan from --fault-plan (None when absent or not supported).

    The ``trace:PATH.json`` form loads a generated failure trace, checks
    its topology fingerprint against ``config`` (raising
    :class:`~repro.errors.TraceFingerprintError`, exit 7, on mismatch) and
    replays the trace's first frame window; any other spec goes through
    the ``key=value`` mini-language.
    """
    spec = getattr(args, "fault_plan", None)
    if not spec:
        return None
    if spec.startswith("trace:"):
        from .faults import load_failure_trace, plan_for_window
        if config is None:
            raise ConfigError(
                "trace:-form fault plans need a concrete system config")
        trace = load_failure_trace(spec[len("trace:"):])
        return plan_for_window(trace, config, 0)
    from .faults import parse_fault_plan
    return parse_fault_plan(spec)


def _setup_from_args(args):
    """Setup from the common CLI flags.

    Built in two steps because a ``trace:`` fault plan is validated
    against the concrete fabric: probe the fault-free config first, then
    rebuild with the parsed plan attached.
    """
    kwargs = dict(num_gpus=args.gpus,
                  topology=getattr(args, "topology", None),
                  sanitize=getattr(args, "sanitize", False),
                  watchdog_cycles=getattr(args, "watchdog_cycles", None))
    probe = make_setup(args.scale, **kwargs)
    return make_setup(args.scale, faults=_parse_faults(args, probe.config),
                      **kwargs)


def _make_engine(args, always: bool = False) -> Optional[Engine]:
    """Experiment engine from the ``--jobs/--timeout/...`` flags.

    Returns None when no engine flag was used (and ``always`` is unset),
    so commands keep their plain, unsupervised fast path.
    """
    wanted = (always or args.jobs != 1 or args.timeout is not None
              or args.retries != 2 or args.journal or args.resume)
    if not wanted:
        return None
    return Engine(jobs=args.jobs, timeout=args.timeout, retries=args.retries,
                  journal=args.journal, resume=args.resume)


def _parse_sweep_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text


def cmd_render(args) -> int:
    setup = _setup_from_args(args)
    trace = load_benchmark(args.benchmark, args.scale)
    result = run(args.scheme, trace, setup)
    print(f"{args.scheme} on {args.benchmark} ({args.gpus} GPUs, "
          f"{args.scale} scale)")
    print(f"  frame time : {result.frame_cycles:,.0f} cycles")
    totals = result.stats.stage_cycle_totals()
    busy = sum(totals.values()) or 1.0
    for stage in ALL_STAGES:
        if totals.get(stage, 0.0) > 0:
            print(f"  {stage:<13}: {totals[stage]:14,.0f} cycles "
                  f"({100 * totals[stage] / busy:5.1f}%)")
    print(f"  traffic    : {result.stats.traffic_total() / 1e6:.2f} MB")
    if setup.config.faults is not None:
        print(report_module.render_fault_summary(result.stats))
    if args.ppm:
        result.image.write_ppm(args.ppm)
        print(f"  frame written to {args.ppm}")
    return 0


def cmd_compare(args) -> int:
    setup = _setup_from_args(args)
    trace = load_benchmark(args.benchmark, args.scale)
    baseline = run("duplication", trace, setup)
    print(f"{args.benchmark} ({args.gpus} GPUs): speedup vs duplication")
    print(f"  {'duplication':<14} 1.000  "
          f"({baseline.frame_cycles:,.0f} cycles)")
    for scheme in args.schemes:
        result = run(scheme, trace, setup)
        print(f"  {scheme:<14} "
              f"{baseline.frame_cycles / result.frame_cycles:.3f}  "
              f"({result.frame_cycles:,.0f} cycles)")
    return 0


def cmd_figures(args) -> int:
    engine = _make_engine(args)
    with contextlib.ExitStack() as stack:
        if engine is not None:
            stack.enter_context(engine.activated())
        for name in args.names:
            experiment_name, renderer_name = FIGURES[name]
            experiment = getattr(experiments_module, experiment_name)
            if name in ("table2",):
                data = experiment()
            elif name == "table3":
                data = experiment(scale=args.scale)
            else:
                data = experiment(scale=args.scale,
                                  benchmarks=tuple(args.benchmarks))
            if renderer_name is None:
                print(report_module.render_speedups(
                    data, f"{name}: speedup vs duplication"))
            else:
                renderer = getattr(report_module, renderer_name)
                print(renderer(data))
            print()
    if engine is not None:
        print(report_module.render_engine_summary(
            engine.counters, engine.failures()), file=sys.stderr)
        if engine.counters.failed:
            return EXIT_PARTIAL
    return EXIT_OK


def cmd_sweep(args) -> int:
    from .harness.sweeps import FAILED, sweep
    engine = _make_engine(args, always=True)
    fixed = {}
    if args.parameter != "num_gpus":
        fixed["num_gpus"] = args.gpus
    values = [_parse_sweep_value(v) for v in args.values]
    with engine.activated():
        table = sweep(args.parameter, values,
                      schemes=tuple(args.schemes),
                      benchmarks=tuple(args.benchmarks), scale=args.scale,
                      baseline=args.baseline,
                      baseline_follows_sweep=not args.pinned_baseline,
                      engine=engine, **fixed)
    print(report_module.render_sweep(
        table, args.parameter,
        f"sweep {args.parameter}: speedup vs {args.baseline} "
        f"({', '.join(args.benchmarks)})"))
    print(report_module.render_engine_summary(
        engine.counters, engine.failures()), file=sys.stderr)
    salvaged = any(cell == FAILED for cells in table.values()
                   for cell in cells.values())
    return EXIT_PARTIAL if salvaged else EXIT_OK


def cmd_inspect(args) -> int:
    setup = make_setup(args.scale, num_gpus=args.gpus,
                       topology=getattr(args, "topology", None),
                       watchdog_cycles=getattr(args, "watchdog_cycles",
                                               None))
    trace = load_benchmark(args.benchmark, args.scale)
    print(f"{trace.name}: {trace.resolution}, {trace.num_draws} draws, "
          f"{trace.num_triangles} triangles")
    print("draw-size histogram:",
          triangle_histogram(trace, [8, 64, 256, 1024]))
    groups = split_into_groups(trace.frame)
    plans = plan_frame(groups, setup.config)
    summary = summarize_plan(plans)
    print(f"composition groups: {summary.total_groups} "
          f"({summary.accelerated_groups} accelerated, "
          f"{100 * summary.triangle_coverage:.1f}% triangle coverage)")
    for plan in plans:
        group = plan.group
        print(f"  group {group.index:3d}: {group.num_draws:4d} draws "
              f"{group.num_triangles:7d} tris  mode={plan.mode.value:<11} "
              f"boundary={group.boundary_reason}")
    return 0


def cmd_export(args) -> int:
    trace = load_benchmark(args.benchmark, args.scale)
    save_trace(trace, args.output)
    loaded = load_trace(args.output)
    assert loaded.num_triangles == trace.num_triangles
    print(f"wrote {args.output}: {loaded.num_draws} draws, "
          f"{loaded.num_triangles} triangles (round-trip verified)")
    return 0


def cmd_timeline(args) -> int:
    from .harness import build_scheme
    from .timing import record_timeline
    setup = _setup_from_args(args)
    trace = load_benchmark(args.benchmark, args.scale)
    with record_timeline() as timeline:
        result = build_scheme(args.scheme, setup).run(trace)
    lanes = [f"gpu{i}" for i in range(args.gpus)]
    if args.links:
        lanes = None  # all lanes, links included
    print(f"{args.scheme} on {args.benchmark}: "
          f"{result.frame_cycles:,.0f} cycles")
    print(timeline.render(width=args.width, lanes=lanes))
    return 0


def cmd_export_results(args) -> int:
    from .harness.export import collect_rows, write_csv, write_json
    setup = _setup_from_args(args)
    engine = _make_engine(args)
    with contextlib.ExitStack() as stack:
        if engine is not None:
            stack.enter_context(engine.activated())
        rows = collect_rows(args.benchmarks, args.schemes, setup)
    if args.output.endswith(".json"):
        write_json(rows, args.output)
    else:
        write_csv(rows, args.output)
    print(f"wrote {len(rows)} rows to {args.output}")
    if engine is not None:
        print(report_module.render_engine_summary(
            engine.counters, engine.failures()), file=sys.stderr)
        if any(row["status"] == "failed" for row in rows):
            return EXIT_PARTIAL
    return EXIT_OK


def _cmd_bench_pipelining(args) -> int:
    """``bench --mode pipelining``: quantify the in-flight group window.

    Runs chopin+sched and dfb twice per benchmark — pipeline_depth=1 (a
    hard render/composition barrier per group) and unbounded — asserts the
    images are bit-identical (the window is a timing knob, never a result
    knob), and reports frame cycles plus the idle/stall/overlap counters.
    The gate is on summed idle cycles: unbounding the window must cut them
    by at least ``--min-overlap-win`` (a fraction).
    """
    import json

    import numpy as np

    from .stats import gmean

    output = args.output
    if output == "BENCH_artifact_cache.json":
        output = "BENCH_pipelining.json"
    schemes = ("chopin+sched", "dfb")
    topology = getattr(args, "topology", None)
    bounded = make_setup(args.scale, num_gpus=args.gpus, topology=topology,
                         pipeline_depth=1)
    unbounded = make_setup(args.scale, num_gpus=args.gpus,
                           topology=topology)

    def cell(result) -> dict:
        summary = result.stats.pipeline_summary()
        summary["frame_cycles"] = result.frame_cycles
        summary["comp_overlap_cycles"] = round(
            summary["comp_overlap_cycles"], 2)
        summary["idle_cycles"] = round(summary["idle_cycles"], 2)
        summary["pipeline_stall_cycles"] = round(
            summary["pipeline_stall_cycles"], 2)
        return summary

    cells = []
    mismatches = []
    for bench in args.benchmarks:
        trace = load_benchmark(bench, args.scale)
        for scheme in schemes:
            serial = run(scheme, trace, bounded)
            overlapped = run(scheme, trace, unbounded)
            identical = (
                np.array_equal(serial.image.color, overlapped.image.color)
                and np.array_equal(serial.image.depth,
                                   overlapped.image.depth))
            if not identical:
                mismatches.append(f"{bench}/{scheme}")
            cells.append({"benchmark": bench, "scheme": scheme,
                          "depth_1": cell(serial),
                          "unbounded": cell(overlapped)})

    idle_serial = sum(c["depth_1"]["idle_cycles"] for c in cells)
    idle_overlap = sum(c["unbounded"]["idle_cycles"] for c in cells)
    idle_win = 1.0 - idle_overlap / idle_serial if idle_serial else 0.0
    speedup = gmean([c["depth_1"]["frame_cycles"]
                     / c["unbounded"]["frame_cycles"] for c in cells])
    report = {
        "benchmarks": list(args.benchmarks), "schemes": list(schemes),
        "scale": args.scale, "num_gpus": args.gpus,
        "idle_cycles_depth_1": round(idle_serial, 2),
        "idle_cycles_unbounded": round(idle_overlap, 2),
        "idle_win": round(idle_win, 4),
        "frame_speedup": round(speedup, 4),
        "bit_identical": not mismatches, "mismatches": mismatches,
        "cells": cells,
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"bench pipelining: {len(cells)} cells "
          f"({len(args.benchmarks)} benchmarks x {len(schemes)} schemes, "
          f"{args.gpus} GPUs, {args.scale} scale)")
    print(f"  idle cycles: {idle_serial:14,.0f} at depth 1")
    print(f"               {idle_overlap:14,.0f} unbounded "
          f"({idle_win:.1%} win)")
    print(f"  frame speedup (gmean): {speedup:.3f}x  -> {output}")
    if mismatches:
        print(f"error: pipeline window changed the image on "
              f"{', '.join(mismatches)}", file=sys.stderr)
        return EXIT_ERROR
    if idle_win < args.min_overlap_win:
        print(f"error: idle-cycle win {idle_win:.1%} below required "
              f"{args.min_overlap_win:.1%}", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


def cmd_bench(args) -> int:
    import json
    import time

    import numpy as np

    from .render import render_service

    if args.mode == "pipelining":
        return _cmd_bench_pipelining(args)
    setup = make_setup(args.scale, num_gpus=args.gpus,
                       topology=getattr(args, "topology", None),
                       watchdog_cycles=getattr(args, "watchdog_cycles",
                                               None))
    service = render_service()

    def sweep_once():
        # use_cache=False bypasses the result namespace: the warm pass
        # must genuinely re-simulate, reusing only the phase artifacts —
        # otherwise "warm" would just hand back the stored SchemeResult.
        cells = {}
        for bench in args.benchmarks:
            trace = load_benchmark(bench, args.scale)
            for scheme in args.schemes:
                cells[(bench, scheme)] = run(scheme, trace, setup,
                                             use_cache=False)
        return cells

    service.reset()
    before = service.counters()
    started = time.perf_counter()
    cold = sweep_once()
    cold_s = time.perf_counter() - started
    cold_delta = service.counters().delta(before)

    if service.store.disk_dir is not None:
        # force the warm pass through the disk-reload path
        service.store.drop_memory()
    before = service.counters()
    started = time.perf_counter()
    warm = sweep_once()
    warm_s = time.perf_counter() - started
    warm_delta = service.counters().delta(before)

    mismatches = []
    for key, cold_result in cold.items():
        warm_result = warm[key]
        identical = (
            np.array_equal(cold_result.image.color, warm_result.image.color)
            and np.array_equal(cold_result.image.depth,
                               warm_result.image.depth)
            and cold_result.frame_cycles == warm_result.frame_cycles
            and cold_result.stats.total_triangles
            == warm_result.stats.total_triangles
            and cold_result.stats.total_fragments_shaded
            == warm_result.stats.total_fragments_shaded
            and cold_result.stats.total_fragments_passed
            == warm_result.stats.total_fragments_passed)
        if not identical:
            mismatches.append("/".join(key))

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    report = {
        "benchmarks": list(args.benchmarks), "schemes": list(args.schemes),
        "scale": args.scale, "num_gpus": args.gpus,
        "jobs": len(args.benchmarks) * len(args.schemes),
        "cold_s": round(cold_s, 4), "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": not mismatches, "mismatches": mismatches,
        "disk_tier": service.store.disk_dir is not None,
        "cold_store": cold_delta.to_dict(),
        "warm_store": warm_delta.to_dict(),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"bench: {report['jobs']} jobs "
          f"({len(args.benchmarks)} benchmarks x "
          f"{len(args.schemes)} schemes, {args.scale} scale)")
    print(f"  cold : {cold_s:8.2f}s  "
          f"(hit rate {cold_delta.hit_rate:5.1%})")
    print(f"  warm : {warm_s:8.2f}s  "
          f"(hit rate {warm_delta.hit_rate:5.1%}"
          f"{', via disk' if report['disk_tier'] else ''})")
    print(f"  speedup: {speedup:.2f}x  -> {args.output}")
    if mismatches:
        print(f"error: warm pass diverged from cold pass on "
              f"{', '.join(mismatches)}", file=sys.stderr)
        return EXIT_ERROR
    if speedup < args.min_speedup:
        print(f"error: warm speedup {speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


def cmd_gen_trace(args) -> int:
    from .faults.traces import (TraceGenConfig, generate_trace,
                                save_failure_trace)
    setup = make_setup(args.scale, num_gpus=args.gpus,
                       topology=getattr(args, "topology", None))
    kwargs = {"seed": args.seed}
    if args.frames is not None:
        kwargs["frames"] = args.frames
    if args.frame_cycles is not None:
        kwargs["frame_cycles"] = args.frame_cycles
    for flag, key in (("link_mttf", "link_mttf_cycles"),
                      ("link_mttr", "link_mttr_cycles"),
                      ("degrade_mttf", "degrade_mttf_cycles"),
                      ("degrade_mttr", "degrade_mttr_cycles"),
                      ("gpu_mttf", "gpu_mttf_cycles"),
                      ("gpu_mttr", "gpu_mttr_cycles")):
        value = getattr(args, flag)
        if value is not None:
            # 0 disables that renewal process outright
            kwargs[key] = None if value == 0 and key.endswith("mttf_cycles") \
                else value
    gen = TraceGenConfig(**kwargs)
    trace = generate_trace(setup.config, gen)
    save_failure_trace(trace, args.output)
    topology = setup.config.link.topology
    print(f"wrote {args.output}: {len(trace.events)} events over "
          f"{gen.frames} frames of {gen.frame_cycles:,.0f} cycles")
    print(f"  fabric      : {topology}, {args.gpus} GPUs "
          f"(fingerprint {trace.fingerprint})")
    failures = sum(1 for e in trace.events if e.event == "gpu_fail")
    lossy = sum(1 for e in trace.events if e.event == "link_lossy")
    degraded = sum(1 for e in trace.events if e.event == "link_degrade")
    print(f"  episodes    : {failures} GPU fail-stops, {lossy} lossy "
          f"links, {degraded} degraded links")
    return EXIT_OK


def cmd_soak(args) -> int:
    from .faults.traces import load_failure_trace
    from .harness.engine import run_soak
    setup = make_setup(args.scale, num_gpus=args.gpus,
                       topology=getattr(args, "topology", None),
                       watchdog_cycles=getattr(args, "watchdog_cycles",
                                               None))
    trace = load_failure_trace(args.trace)
    report = run_soak(trace, args.scheme, args.benchmark, setup,
                      frames=args.frames)
    print(report_module.render_soak_report(report))
    if args.csv:
        from .harness.export import write_soak_csv
        write_soak_csv(report, args.csv)
        print(f"per-frame rows written to {args.csv}")
    return EXIT_OK if report.all_identical else EXIT_ERROR


def _group_setup(args):
    """Fault-free setup for ONE render group (serve handles faults itself)."""
    return make_setup(args.scale, num_gpus=args.gpus,
                      topology=getattr(args, "topology", None),
                      watchdog_cycles=getattr(args, "watchdog_cycles", None))


def _serve_workload(args, setup):
    """The request workload: replay ``--load`` or calibrate + generate."""
    from .serve import (LoadProfile, calibrate_service_cycles,
                        generate_workload, load_workload)
    if getattr(args, "load", None):
        # the workload file's benchmark mix and sizing win over the flags
        return load_workload(args.load)
    profile = LoadProfile(kind=args.profile, sessions=args.sessions,
                          rate_x=args.rate_x, duration_x=args.duration_x,
                          seed=args.seed)
    _, mean_cycles = calibrate_service_cycles(args.scheme, args.benchmarks,
                                              setup)
    return generate_workload(profile, args.benchmarks, mean_cycles,
                             args.groups)


def _serve_fault_events(args, pool_gpus):
    """GPU fail/repair schedule for the serving pool from --fault-plan.

    The pool is one flat GPU index space (``group * gpus_per_group +
    local``); a ``trace:`` plan must have been generated for the POOL's
    fabric (``gen-trace --gpus groups*gpus``), and its fingerprint is
    checked against that config (exit 7 on mismatch).
    """
    spec = getattr(args, "fault_plan", None)
    if not spec:
        return ()
    from .serve import gpu_events_from_plan, gpu_events_from_trace
    if spec.startswith("trace:"):
        from .faults import load_failure_trace, validate_trace
        pool = make_setup(args.scale, num_gpus=pool_gpus,
                          topology=getattr(args, "topology", None))
        trace = load_failure_trace(spec[len("trace:"):])
        validate_trace(trace, pool.config)
        return gpu_events_from_trace(trace)
    from .faults import parse_fault_plan
    plan = parse_fault_plan(spec)
    plan.validate_for(pool_gpus)
    return gpu_events_from_plan(plan)


def cmd_serve(args) -> int:
    from .harness.export import write_serve_csv, write_serve_json
    from .serve import FrameServer, SloGates
    try:
        gates = SloGates(max_shed_rate=args.max_shed_rate,
                         max_p99_x=args.max_p99_x)
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc
    setup = _group_setup(args)
    workload = _serve_workload(args, setup)
    fault_events = _serve_fault_events(args, args.groups * args.gpus)
    server = FrameServer(args.scheme, setup, workload,
                         groups=args.groups,
                         queue_limit=args.queue_limit,
                         policy=args.policy,
                         batch_limit=args.batch_limit,
                         retry_limit=args.retry_limit,
                         deadline_x=args.deadline_x,
                         budget_x=args.budget_x,
                         pipeline_overlap=args.pipeline_overlap,
                         fault_events=fault_events)
    report = server.serve()
    print(report_module.render_serve_report(
        report, f"serve: {args.scheme} x {args.groups} render groups "
                f"({args.gpus} GPUs each, {args.scale} scale)"))
    if args.csv:
        write_serve_csv(report, args.csv)
        print(f"serve rows written to {args.csv}")
    if args.json:
        write_serve_json(report, args.json)
        print(f"serve report written to {args.json}")
    gates.check(report)  # raises ServeOverloadError -> exit 8
    return EXIT_DEGRADED if report.degraded else EXIT_OK


def cmd_loadgen(args) -> int:
    from .serve import (LoadProfile, calibrate_service_cycles,
                        generate_workload, save_workload)
    setup = _group_setup(args)
    profile = LoadProfile(kind=args.profile, sessions=args.sessions,
                          rate_x=args.rate_x, duration_x=args.duration_x,
                          seed=args.seed)
    service_cycles, mean_cycles = calibrate_service_cycles(
        args.scheme, args.benchmarks, setup)
    workload = generate_workload(profile, args.benchmarks, mean_cycles,
                                 args.groups)
    save_workload(workload, args.output)
    print(f"wrote {args.output}: {len(workload.arrivals)} arrivals over "
          f"{workload.duration_cycles:,.0f} cycles "
          f"({profile.kind}, {profile.sessions} sessions, "
          f"{profile.rate_x}x capacity of {args.groups} groups)")
    for benchmark in args.benchmarks:
        print(f"  {benchmark:<8}: {service_cycles[benchmark]:14,.0f} "
              f"cycles/frame")
    return EXIT_OK


def _write_json_report(target: str, payload: str) -> None:
    """Write ``--json-report`` output, creating parent directories.

    Filesystem trouble (an unwritable location, a parent that is a
    file) is a configuration error — exit code 2 via the EXIT_CODES
    ladder, not a traceback.
    """
    import pathlib
    path = pathlib.Path(target)
    try:
        if path.parent != path:
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload)
    except OSError as exc:
        raise ConfigError(f"cannot write --json-report {target}: {exc}")


def cmd_lint(args) -> int:
    import pathlib

    from .analysis import (all_rule_descriptions, filter_baselined,
                           lint_paths, load_baseline, render_json,
                           render_text, save_baseline)
    if args.list_rules:
        for name, meta in all_rule_descriptions().items():
            scope = "deep" if meta.deep else "stmt"
            print(f"{name:<16} [{scope}/{meta.severity:<7}] "
                  f"{meta.description}")
        return EXIT_OK
    paths = args.paths
    if not paths:
        import repro
        paths = [pathlib.Path(repro.__file__).parent]
    for path in paths:
        if not pathlib.Path(path).exists():
            raise ConfigError(f"lint path does not exist: {path}")
    scope = None
    if args.changed:
        from .analysis.scope import changed_scope
        scope = changed_scope(paths, args.changed)
        if not scope:
            print(f"simlint: no linted files changed since "
                  f"merge-base with {args.changed}", file=sys.stderr)
            if args.json_report:
                _write_json_report(args.json_report, render_json([]) + "\n")
            return EXIT_OK
        print(f"simlint: scoped to {len(scope)} changed/dependent "
              f"file(s) vs {args.changed}", file=sys.stderr)
    findings = lint_paths(paths, deep=args.deep, scope=scope)
    if args.update_baseline:
        count = save_baseline(args.update_baseline, findings)
        print(f"simlint: baseline {args.update_baseline} written "
              f"({count} entries)")
        return EXIT_OK
    suppressed = 0
    if args.baseline:
        findings, suppressed = filter_baselined(
            findings, load_baseline(args.baseline))
    if args.json_report:
        _write_json_report(args.json_report, render_json(findings) + "\n")
    renderer = render_json if args.fmt == "json" else render_text
    print(renderer(findings))
    if suppressed and args.fmt == "text":
        print(f"simlint: {suppressed} baselined finding(s) suppressed")
    if args.fail_on == "never":
        return EXIT_OK
    if args.fail_on == "error":
        findings = [f for f in findings if f.severity == "error"]
    return EXIT_ERROR if findings else EXIT_OK


COMMANDS = {
    "render": cmd_render,
    "bench": cmd_bench,
    "gen-trace": cmd_gen_trace,
    "soak": cmd_soak,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "lint": cmd_lint,
    "export-results": cmd_export_results,
    "timeline": cmd_timeline,
    "compare": cmd_compare,
    "figures": cmd_figures,
    "sweep": cmd_sweep,
    "inspect": cmd_inspect,
    "export": cmd_export,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "artifact_dir", None):
            from .render import configure_render_service
            configure_render_service(artifact_dir=args.artifact_dir)
        return COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error [{type(exc).__name__}]: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    sys.exit(main())
