"""RenderService: the one functional-rendering facade the repo consumes.

Schemes, the harness and the CLI no longer drive
``raster.pipeline.GraphicsPipeline`` directly; they open a
:class:`RenderSession` on a trace and execute draws through it. The
session pulls each draw's geometry-phase output from the
content-addressed :class:`~repro.render.store.ArtifactStore` (computing
it on a miss) and runs only the subset-dependent fragment phase live.

The service also owns the coarser cached artifacts that used to live in
three ad-hoc module dicts — the reference pass, CHOPIN's functional
prep, frame plans and full scheme results — via :meth:`cached`, giving
them a single invalidation story (:meth:`reset`) and shared counters.

A module-level singleton (:func:`render_service`) makes the warm store
ambient: the experiment engine pre-warms it once per sweep, fork-based
workers inherit it copy-on-write, and ``--artifact-dir`` extends it
across processes via disk spill.
"""

from __future__ import annotations

import contextlib
import hashlib
from typing import Callable, Dict, Iterator, Optional

import numpy as np

from ..config import SystemConfig
from ..framebuffer.framebuffer import SurfacePool
from ..geometry.primitives import DrawCommand
from ..raster.tiles import TileGrid
from ..traces.trace import Trace
from .artifact import DrawArtifact, DrawMetrics
from .phases import fragment_phase, geometry_phase
from .reference import ReferencePass, build_shader_library
from .store import ArtifactStore, StoreCounters, store_key


class RenderSession:
    """One trace bound to the service: resolution, camera, shaders.

    ``execute_draw`` keeps the exact signature of the old
    ``GraphicsPipeline.execute_draw`` minus ``mvp`` (the session knows
    its trace's camera), so scheme code ports mechanically.
    """

    def __init__(self, service: "RenderService", trace: Trace) -> None:
        self.service = service
        self.trace = trace
        self.width = trace.width
        self.height = trace.height
        self.camera = trace.camera
        self.shaders = build_shader_library(trace)
        if trace.camera is None:
            self._camera_fp = "ndc"
        else:
            self._camera_fp = hashlib.sha256(
                np.ascontiguousarray(trace.camera).tobytes()).hexdigest()

    def artifact(self, draw: DrawCommand) -> DrawArtifact:
        """Geometry-phase output for one draw, via the artifact store."""
        key = store_key("geometry", {
            "draw": draw.fingerprint, "camera": self._camera_fp,
            "width": self.width, "height": self.height})
        return self.service.store.cached(
            key, lambda: geometry_phase(draw, self.camera,
                                        self.width, self.height))

    def execute_draw(self, draw: DrawCommand, surfaces: SurfacePool,
                     owner_mask: Optional[np.ndarray] = None,
                     owner_map: Optional[np.ndarray] = None,
                     num_owners: int = 1,
                     touched: Optional[np.ndarray] = None,
                     retained_cull_fraction: float = 0.0,
                     rng: Optional[np.random.Generator] = None
                     ) -> DrawMetrics:
        """Fragment-phase one draw against ``surfaces`` (geometry cached)."""
        return fragment_phase(
            self.artifact(draw), draw, surfaces, self.shaders,
            self.width, self.height, owner_mask=owner_mask,
            owner_map=owner_map, num_owners=num_owners, touched=touched,
            retained_cull_fraction=retained_cull_fraction, rng=rng)


class RenderService:
    """Facade over the phase pipeline and the content-addressed store."""

    def __init__(self, store: Optional[ArtifactStore] = None) -> None:
        self.store = store or ArtifactStore()

    # -- sessions ----------------------------------------------------------

    def session(self, trace: Trace) -> RenderSession:
        return RenderSession(self, trace)

    # -- generic cached artifacts ------------------------------------------

    def cached(self, kind: str, fields: Dict[str, object],
               compute: Callable[[], object]) -> object:
        """Store-backed memoization of any JSON-keyable artifact."""
        return self.store.cached(store_key(kind, fields), compute)

    # -- the reference pass ------------------------------------------------

    def reference_pass(self, trace: Trace, config: SystemConfig,
                       use_cache: bool = True) -> ReferencePass:
        """Render the frame once on a virtual single GPU, attributing
        fragments to tile owners. Stored per (trace, num_gpus, tile_size)."""
        if not use_cache:
            return self._compute_reference(trace, config)
        return self.cached(
            "reference",
            {"trace": trace.fingerprint, "num_gpus": config.num_gpus,
             "tile_size": config.tile_size},
            lambda: self._compute_reference(trace, config))

    def _compute_reference(self, trace: Trace,
                           config: SystemConfig) -> ReferencePass:
        frame = trace.frame
        grid = TileGrid(trace.width, trace.height, config.tile_size)
        owner_map = grid.owner_map(config.num_gpus)
        session = self.session(trace)
        pool = SurfacePool(trace.width, trace.height)
        metrics = []
        sync_points = []
        touched: Dict[int, np.ndarray] = {}

        previous: Optional[DrawCommand] = None
        for index, draw in enumerate(frame.draws):
            if previous is not None:
                prev_state, state = previous.state, draw.state
                if (prev_state.render_target != state.render_target
                        or prev_state.depth_buffer != state.depth_buffer):
                    sync_points.append(index)
            mask = touched.setdefault(
                draw.state.render_target,
                np.zeros((trace.height, trace.width), dtype=bool))
            metrics.append(session.execute_draw(
                draw, pool, owner_map=owner_map,
                num_owners=config.num_gpus, touched=mask))
            previous = draw

        return ReferencePass(trace=trace, num_gpus=config.num_gpus,
                             grid=grid, owner_map=owner_map, pool=pool,
                             metrics=metrics, sync_points=sync_points,
                             touched=touched)

    # -- sweep pre-warm ----------------------------------------------------

    def prewarm(self, trace: Trace, config: SystemConfig) -> int:
        """Populate the store with everything jobs on this trace share.

        Computes (or disk-loads) every draw's geometry artifact plus the
        reference pass for this GPU count / tile size. Returns the number
        of draws warmed, for engine accounting.
        """
        session = self.session(trace)
        warmed = 0
        for frame in trace.frames:
            for draw in frame.draws:
                session.artifact(draw)
                warmed += 1
        if len(trace.frames) == 1:
            self.reference_pass(trace, config)
        return warmed

    # -- invalidation / introspection --------------------------------------

    def reset(self, kind: Optional[str] = None) -> None:
        """Drop stored artifacts — the single invalidation story.

        ``kind`` restricts the drop to one namespace (``"geometry"``,
        ``"reference"``, ``"chopin-prep"``, ``"plan"``, ``"result"``);
        omit it to clear everything, memory and disk tiers both.
        """
        self.store.reset(kind)

    def counters(self) -> StoreCounters:
        """Snapshot of the store's hit/miss/eviction counters."""
        return self.store.counters.snapshot()

    @contextlib.contextmanager
    def scoped_counters(self) -> Iterator[StoreCounters]:
        """Attribute store activity inside the ``with`` body to one caller.

        The store is shared across every client of the service — scheme
        runs, the engine's prewarm, all of a serve daemon's sessions — so
        the global counters alone cannot say *who* reused what. The
        yielded object is filled in on exit with the counter growth the
        body caused::

            with service.scoped_counters() as scope:
                run(scheme, trace, setup)
            session_hits += scope.hits   # this caller's share

        Scopes are attribution only (deltas of the one global counter
        set); nesting attributes inner activity to both scopes.
        """
        before = self.store.counters.snapshot()
        scope = StoreCounters()
        try:
            yield scope
        finally:
            grew = self.store.counters.snapshot().delta(before)
            scope.__dict__.update(grew.__dict__)


_SERVICE: Optional[RenderService] = None


def render_service() -> RenderService:
    """The process-wide service (created on first use)."""
    global _SERVICE
    if _SERVICE is None:
        _SERVICE = RenderService()
    return _SERVICE


def configure_render_service(artifact_dir: Optional[str] = None,
                             max_entries: Optional[int] = None,
                             max_bytes: Optional[int] = None
                             ) -> RenderService:
    """Apply CLI-level store options to the ambient service."""
    service = render_service()
    if max_entries is not None:
        service.store.max_entries = max_entries
    if max_bytes is not None:
        service.store.max_bytes = max_bytes
    if artifact_dir is not None:
        service.store.attach_disk(artifact_dir)
    return service
