"""Phase artifacts: what the geometry phase produces, what counts come out.

The functional pipeline used to be one monolithic ``execute_draw``. It is
now split at the geometry/rasterization boundary (the same cut Molnar's
taxonomy and the paper's Fig 1(b) draw):

- the **geometry phase** (transform, near clip, frustum cull, screen
  mapping, tile binning) depends only on the draw's vertices and the
  camera — *not* on which GPU renders it, the tile split, or the depth
  history — so its output is captured here as a :class:`DrawArtifact`
  and cached content-addressed across schemes, GPU counts and link
  configs;
- the **fragment phase** (rasterize, depth test, shade, blend) is
  subset-dependent (each GPU sees its own depth history) and stays live;
  it consumes an artifact instead of redoing the geometry math.

:class:`DrawMetrics` and :class:`GroupMetrics` live here too (they are
re-exported from :mod:`repro.raster.pipeline` for compatibility): they
are the per-draw functional counts every timing model and paper figure
is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class DrawMetrics:
    """Functional counts for one executed draw command."""

    draw_id: int = -1
    triangles_submitted: int = 0      # unit: triangles
    triangles_culled: int = 0         # unit: triangles
    triangles_rasterized: int = 0     # unit: triangles
    fragments_generated: int = 0      # unit: fragments
    early_z_tested: int = 0           # unit: fragments
    early_z_passed: int = 0           # unit: fragments
    late_tested: int = 0              # unit: fragments
    late_passed: int = 0              # unit: fragments
    fragments_shaded: int = 0         # unit: fragments
    pixels_written: int = 0           # unit: pixels
    #: optional per-owner-GPU attribution (filled when owner_map is given)
    generated_by_owner: Optional[np.ndarray] = None
    shaded_by_owner: Optional[np.ndarray] = None
    passed_by_owner: Optional[np.ndarray] = None

    @property
    def fragments_passed(self) -> int:
        """Fragments surviving any depth/stencil test (paper Fig 15)."""
        return self.early_z_passed + self.late_passed

    def merge(self, other: "DrawMetrics") -> None:
        for name in ("triangles_submitted", "triangles_culled",
                     "triangles_rasterized", "fragments_generated",
                     "early_z_tested", "early_z_passed", "late_tested",
                     "late_passed", "fragments_shaded", "pixels_written"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in ("generated_by_owner", "shaded_by_owner",
                     "passed_by_owner"):
            theirs = getattr(other, name)
            if theirs is None:
                continue
            mine = getattr(self, name)
            if mine is None:
                setattr(self, name, theirs.copy())
            else:
                mine += theirs


@dataclass
class GroupMetrics:
    """Accumulated :class:`DrawMetrics` over a composition group or frame."""

    totals: DrawMetrics = field(default_factory=DrawMetrics)
    draws: int = 0

    def add(self, metrics: DrawMetrics) -> None:
        self.totals.merge(metrics)
        self.draws += 1


@dataclass
class DrawArtifact:
    """Geometry-phase output for one draw at one resolution.

    Everything downstream of the geometry stage needs: screen-space
    triangles with interpolation attributes, the cull/clip counts the
    metrics start from, and per-triangle screen bounds for tile binning.
    Assignment-independent by construction — the same artifact serves
    every scheme, GPU count and draw subset at this resolution.
    """

    #: input triangle count of the draw (before clip/cull)
    triangles_submitted: int          # unit: triangles
    #: triangles removed by the near clip / frustum cull
    triangles_culled: int             # unit: triangles
    #: (T, 3, 2) float32 screen-space vertex positions of the survivors
    xy: np.ndarray
    #: (T, 3) float32 per-vertex depth
    depth: np.ndarray
    #: (T, 3, 4) float32 per-vertex RGBA (post near-clip interpolation)
    colors: np.ndarray
    #: (T, 4) float32 screen bounds [xmin, ymin, xmax, ymax] per triangle
    bounds: np.ndarray
    #: (T,) bool — triangle has a non-empty clamped pixel bbox and
    #: non-zero area; False triangles rasterize to zero fragments and
    #: the fragment phase skips them outright
    live: np.ndarray

    @property
    def num_triangles(self) -> int:
        """Post-cull triangle count carried to the fragment phase."""
        return int(self.xy.shape[0])

    @property
    def nbytes(self) -> int:
        """In-memory footprint, for the store's byte-budget accounting."""
        return int(self.xy.nbytes + self.depth.nbytes + self.colors.nbytes
                   + self.bounds.nbytes + self.live.nbytes)

    def tile_bins(self, tile_size: int) -> np.ndarray:
        """Inclusive tile-index ranges (T, 4) as [tx0, ty0, tx1, ty1].

        The binning is a pure function of the cached screen bounds, so
        any tile size can be derived from one artifact — the store does
        not need one entry per tile configuration.
        """
        if tile_size <= 0:
            raise ValueError("tile_size must be positive")
        bins = np.empty((self.num_triangles, 4), dtype=np.int64)
        if self.num_triangles == 0:
            return bins
        bins[:, 0] = np.floor(self.bounds[:, 0] / tile_size)
        bins[:, 1] = np.floor(self.bounds[:, 1] / tile_size)
        bins[:, 2] = np.floor(
            np.maximum(self.bounds[:, 2] - 1.0, self.bounds[:, 0])
            / tile_size)
        bins[:, 3] = np.floor(
            np.maximum(self.bounds[:, 3] - 1.0, self.bounds[:, 1])
            / tile_size)
        return np.maximum(bins, 0)


def empty_artifact(triangles_submitted: int,
                   triangles_culled: int = 0) -> DrawArtifact:
    """Artifact of a draw whose geometry phase produced no triangles."""
    return DrawArtifact(
        triangles_submitted=triangles_submitted,
        triangles_culled=triangles_culled,
        xy=np.empty((0, 3, 2), dtype=np.float32),
        depth=np.empty((0, 3), dtype=np.float32),
        colors=np.empty((0, 3, 4), dtype=np.float32),
        bounds=np.empty((0, 4), dtype=np.float32),
        live=np.empty(0, dtype=bool),
    )
