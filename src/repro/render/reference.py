"""The single-GPU reference pass artifact and the trace's shader set.

Moved here from ``repro.sfr.base`` (which re-exports both names) so the
render layer owns every functional artifact the store holds. The
reference pass renders the frame once on a virtual single GPU with
per-owner fragment attribution; sort-first schemes consume it directly
because all their GPUs observe the same depth history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..framebuffer.framebuffer import Framebuffer, SurfacePool
from ..raster.tiles import TileGrid
from ..shading.shaders import ShaderLibrary
from ..shading.texture import checkerboard, value_noise
from ..traces.trace import Trace
from .artifact import DrawMetrics


def build_shader_library(trace: Trace,
                         num_textures: int = 4) -> ShaderLibrary:
    """Deterministic texture set for a trace (ids 0..num_textures-1)."""
    shaders = ShaderLibrary(trace.width, trace.height)
    for texture_id in range(num_textures):
        if texture_id % 2 == 0:
            texture = checkerboard(size=16, squares=4 + texture_id)
        else:
            texture = value_noise(size=16, seed=texture_id)
        shaders.register_texture(texture_id, texture)
    return shaders


@dataclass
class ReferencePass:
    """Single-GPU functional render with per-owner attribution."""

    trace: Trace
    num_gpus: int
    grid: TileGrid
    owner_map: np.ndarray
    pool: SurfacePool
    metrics: List[DrawMetrics]
    #: indices i such that a render-target/depth-buffer sync precedes draw i
    sync_points: List[int]
    #: per-surface touched masks at frame end {render_target: (H, W) bool}
    touched: Dict[int, np.ndarray]

    @property
    def image(self) -> Framebuffer:
        return self.pool.render_target(0)
