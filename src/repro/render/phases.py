"""The two functional phases: geometry (cacheable) and fragment (live).

``geometry_phase`` is the assignment-independent front half of the old
``GraphicsPipeline.execute_draw``: transform, near clip, frustum cull,
perspective divide, screen mapping, and tile binning, producing a
:class:`~repro.render.artifact.DrawArtifact`.

``fragment_phase`` is the back half: rasterization, early/late depth
testing, shading and blending of one artifact against a surface pool.
It is subset-dependent (the bound depth buffer encodes which draws this
GPU has seen) so it always runs live; the artifact's per-triangle
``live`` mask lets it skip triangles whose clamped screen bbox is empty
without calling the rasterizer.

Count semantics are bit-compatible with the monolithic pipeline:
``triangles_rasterized`` increments before owner masking, fragment
counts after, and the Fig 16 retained-cull RNG draws once per rasterized
triangle in submission order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..composition.operators import blend
from ..framebuffer.depth import depth_test
from ..framebuffer.framebuffer import SurfacePool
from ..geometry.clipping import clip_near_plane, frustum_cull_mask
from ..geometry.primitives import BlendOp, DrawCommand
from ..geometry.transform import (perspective_divide, to_screen,
                                  transform_positions, triangle_screen_bounds)
from ..shading.shaders import ShaderLibrary
from ..raster.rasterizer import rasterize_triangle
from .artifact import DrawArtifact, DrawMetrics, empty_artifact


def geometry_phase(draw: DrawCommand,  # effect: pure
                   mvp: Optional[np.ndarray],
                   width: int, height: int) -> DrawArtifact:
    """Run the geometry stage of one draw command.

    ``width``/``height`` fix the screen mapping, so an artifact is keyed
    by (draw content, camera, resolution) and nothing else — the
    ``# effect: pure`` declaration is enforced by the deep lint's
    effect inference (`effect-undeclared` fires if this stops holding).
    """
    if draw.num_triangles == 0:
        return empty_artifact(0)
    clip = transform_positions(
        draw.positions, mvp if mvp is not None else np.eye(4))
    colors = draw.colors
    if (clip[..., 2] < 0).any():
        clip, colors = clip_near_plane(clip, colors)
    if clip.shape[0] == 0:
        return empty_artifact(draw.num_triangles,
                              triangles_culled=draw.num_triangles)
    culled = frustum_cull_mask(clip)
    num_culled = int(culled.sum())
    clip, colors = clip[~culled], colors[~culled]
    if clip.shape[0] == 0:
        return empty_artifact(draw.num_triangles, triangles_culled=num_culled)

    ndc = perspective_divide(clip)
    xy, depth = to_screen(ndc, width, height)
    bounds = triangle_screen_bounds(xy)
    return DrawArtifact(
        triangles_submitted=draw.num_triangles,
        triangles_culled=num_culled,
        xy=xy, depth=depth, colors=colors, bounds=bounds,
        live=_live_mask(xy, bounds, width, height),
    )


def _live_mask(xy: np.ndarray, bounds: np.ndarray,
               width: int, height: int) -> np.ndarray:
    """Triangles whose rasterization can produce fragments.

    Mirrors the rasterizer's own early-outs exactly (zero signed area, or
    an empty pixel bbox after clamping to the screen), so skipping a
    non-live triangle is observationally identical to rasterizing it.
    """
    v0, v1, v2 = xy[:, 0], xy[:, 1], xy[:, 2]
    area = ((v1[:, 0] - v0[:, 0]) * (v2[:, 1] - v0[:, 1])
            - (v1[:, 1] - v0[:, 1]) * (v2[:, 0] - v0[:, 0]))
    x_min = np.maximum(np.floor(bounds[:, 0]), 0.0)
    x_max = np.minimum(np.ceil(bounds[:, 2]), float(width))
    y_min = np.maximum(np.floor(bounds[:, 1]), 0.0)
    y_max = np.minimum(np.ceil(bounds[:, 3]), float(height))
    return (area != 0.0) & (x_min < x_max) & (y_min < y_max)


def fragment_phase(artifact: DrawArtifact, draw: DrawCommand,
                   surfaces: SurfacePool, shaders: ShaderLibrary,
                   width: int, height: int,
                   owner_mask: Optional[np.ndarray] = None,
                   owner_map: Optional[np.ndarray] = None,
                   num_owners: int = 1,
                   touched: Optional[np.ndarray] = None,
                   retained_cull_fraction: float = 0.0,
                   rng: Optional[np.random.Generator] = None) -> DrawMetrics:
    """Rasterize, depth-test, shade and blend one binned artifact.

    ``touched``, when given, is an (H, W) bool array updated in place
    with every pixel the draw wrote (used to build composition
    sub-images and traffic filters).

    ``owner_map`` (an (H, W) int array of owning GPU ids) enables
    per-owner fragment attribution: the returned metrics carry
    ``*_by_owner`` arrays of length ``num_owners``. This lets sort-first
    schemes (where every GPU sees the same depth history) run the
    functional pipeline once and split the counts by screen region.
    """
    metrics = DrawMetrics(draw_id=draw.draw_id,
                          triangles_submitted=artifact.triangles_submitted,
                          triangles_culled=artifact.triangles_culled)
    if owner_map is not None:
        metrics.generated_by_owner = np.zeros(num_owners, dtype=np.int64)
        metrics.shaded_by_owner = np.zeros(num_owners, dtype=np.int64)
        metrics.passed_by_owner = np.zeros(num_owners, dtype=np.int64)
    if artifact.num_triangles == 0:
        return metrics

    xy, depth, colors = artifact.xy, artifact.depth, artifact.colors
    live = artifact.live
    state = draw.state
    target = surfaces.render_target(state.render_target)
    depth_buf = surfaces.depth_buffer(state.depth_buffer)
    shader = shaders.shader_for(draw.texture_id)
    retain = retained_cull_fraction
    if retain > 0.0 and rng is None:
        rng = np.random.default_rng(0)

    for tri in range(artifact.num_triangles):
        if not live[tri]:
            continue
        frags = rasterize_triangle(xy[tri], depth[tri], colors[tri],
                                   width, height)
        if frags.count == 0:
            continue
        metrics.triangles_rasterized += 1
        if owner_mask is not None:
            frags = frags.select(owner_mask[frags.ys, frags.xs])
            if frags.count == 0:
                continue
        metrics.fragments_generated += frags.count
        owners = (owner_map[frags.ys, frags.xs]
                  if owner_map is not None else None)
        if owners is not None:
            metrics.generated_by_owner += np.bincount(
                owners, minlength=num_owners)

        current = depth_buf[frags.ys, frags.xs]
        if state.early_z:
            passed = depth_test(state.depth_func, frags.depths, current)
            metrics.early_z_tested += frags.count
            n_passed = int(passed.sum())
            metrics.early_z_passed += n_passed
            if owners is not None:
                passed_counts = np.bincount(owners[passed],
                                            minlength=num_owners)
                metrics.passed_by_owner += passed_counts
                metrics.shaded_by_owner += passed_counts
            shaded_mask = passed
            if retain > 0.0:
                # Fig 16: a fraction of culled fragments still get shaded
                # (but never written), inflating fragment work.
                failed = ~passed
                keep = rng.random(frags.count) < retain
                extra = int((failed & keep).sum())
                metrics.fragments_shaded += extra
            survivors = frags.select(shaded_mask)
            if survivors.count == 0:
                continue
            metrics.fragments_shaded += survivors.count
            shaded = shader.shade(survivors.xs, survivors.ys,
                                  survivors.colors)
            _write(target, depth_buf, survivors, shaded, state,
                   metrics, touched)
        else:
            # Late Z: shade everything, then test.
            metrics.fragments_shaded += frags.count
            shaded = shader.shade(frags.xs, frags.ys, frags.colors)
            passed = depth_test(state.depth_func, frags.depths, current)
            metrics.late_tested += frags.count
            n_passed = int(passed.sum())
            metrics.late_passed += n_passed
            if owners is not None:
                metrics.shaded_by_owner += np.bincount(
                    owners, minlength=num_owners)
                metrics.passed_by_owner += np.bincount(
                    owners[passed], minlength=num_owners)
            survivors = frags.select(passed)
            if survivors.count == 0:
                continue
            _write(target, depth_buf, survivors, shaded[passed],
                   state, metrics, touched)
    return metrics


def _write(target, depth_buf, frags, shaded_colors,  # effect: mutates-args
           state, metrics, touched) -> None:
    """Blend surviving fragments into the render target."""
    ys, xs = frags.ys, frags.xs
    if state.blend_op is BlendOp.REPLACE:
        target.color[ys, xs] = shaded_colors
    else:
        target.color[ys, xs] = blend(
            state.blend_op, target.color[ys, xs], shaded_colors)
    if state.depth_write:
        depth_buf[ys, xs] = frags.depths
    if touched is not None:
        touched[ys, xs] = True
    metrics.pixels_written += frags.count
