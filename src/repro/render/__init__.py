"""repro.render: phase-split functional rendering behind a narrow facade.

Public surface:

- :class:`RenderService` / :func:`render_service` — the facade every
  scheme and harness layer renders through;
- :class:`ArtifactStore` — the content-addressed LRU (+ disk spill)
  backing it;
- :func:`geometry_phase` / :func:`fragment_phase` — the split pipeline;
- :class:`DrawArtifact`, :class:`DrawMetrics`, :class:`GroupMetrics`,
  :class:`ReferencePass` — the artifacts that flow between phases.
"""

from .artifact import DrawArtifact, DrawMetrics, GroupMetrics
from .phases import fragment_phase, geometry_phase
from .reference import ReferencePass, build_shader_library
from .service import (RenderService, RenderSession, configure_render_service,
                      render_service)
from .store import ArtifactStore, StoreCounters, store_key

__all__ = [
    "ArtifactStore", "DrawArtifact", "DrawMetrics", "GroupMetrics",
    "ReferencePass", "RenderService", "RenderSession", "StoreCounters",
    "build_shader_library", "configure_render_service", "fragment_phase",
    "geometry_phase", "render_service", "store_key",
]
