"""Content-addressed artifact store: in-memory LRU with optional disk spill.

One cache to rule the functional layer: geometry artifacts, reference
passes, CHOPIN functional preps, frame plans and full scheme results all
live here, keyed by a sha256 over a canonical JSON encoding of their
identifying fields (trace fingerprint, resolution, pipeline options).
One store means one invalidation story: ``reset()`` drops everything (or
one kind), instead of three module-level dicts with three clear
functions.

Keys are deterministic by construction — fields are JSON-encoded with
sorted keys, so insertion order, interning and process randomization
cannot leak into the address (the nondet-taint lint pass guards this).

The LRU bounds both entry count and payload bytes. With ``disk_dir``
set, entries are written through as pickles named by their key, and a
memory miss falls back to a disk load — that is how pre-warmed artifacts
survive process boundaries (engine worker subprocesses, separate CLI
invocations) and how ``repro bench`` proves a reload is bit-identical.

Spill files are integrity-framed: a magic line and the sha256 of the
pickle payload precede the payload, writes go through a temp file +
atomic rename, and a truncated, bit-flipped or otherwise unreadable
spill is treated as a cache *miss* (counted in
``StoreCounters.disk_corrupt``, quarantined by deletion, recomputed and
re-spilled) — never an exception. A long-running daemon sharing its
store across sessions must not die because one artifact rotted on disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import ConfigError

#: disk-spill framing: this line, then the payload's hex sha256, then the
#: raw pickle bytes. Files without the frame (pre-v1 spills) read as corrupt
#: and are transparently recomputed.
_SPILL_MAGIC = b"repro-artifact-spill-v1\n"


def _write_spill(path: pathlib.Path, value: object) -> None:
    """Spill one entry with an integrity frame, atomically.

    The temp-file + ``os.replace`` dance means a reader never observes a
    half-written file under the final name; a crash mid-write leaves only
    a ``.tmp`` husk that ``reset()`` sweeps up.
    """
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_SPILL_MAGIC)
        handle.write(digest)
        handle.write(b"\n")
        handle.write(payload)
    os.replace(tmp, path)


def _read_spill(path: pathlib.Path) -> Tuple[object, bool]:
    """Return ``(value, intact)``; ``intact=False`` on any corruption.

    Truncation, a flipped bit (hash mismatch), a missing frame, or a
    pickle that no longer deserializes all classify as "corrupt" — the
    caller treats them uniformly as a miss.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return None, False
    if not data.startswith(_SPILL_MAGIC):
        return None, False
    digest, sep, payload = data[len(_SPILL_MAGIC):].partition(b"\n")
    if not sep or hashlib.sha256(payload).hexdigest().encode() != digest:
        return None, False
    try:
        return pickle.loads(payload), True
    except Exception:
        # unpicklable payload that still hashed clean: a stale spill from
        # an incompatible code version — same remedy as corruption
        return None, False


def store_key(kind: str, fields: Dict[str, object]) -> str:
    """Content address for one entry: ``kind`` plus its identifying fields.

    ``fields`` values must be JSON-encodable (strings, numbers, bools,
    None, and nested lists/dicts thereof). The encoding sorts keys, so
    two call sites naming the same fields in any order produce the same
    address.
    """
    try:
        payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise ConfigError(
            f"artifact-store key fields for kind {kind!r} must be "
            f"JSON-encodable: {exc}")
    digest = hashlib.sha256(f"{kind}\n{payload}".encode()).hexdigest()
    return f"{kind}-{digest}"


@dataclass
class StoreCounters:
    """Hit/miss/eviction accounting, surfaced through RunStats and exports."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    disk_loads: int = 0
    disk_writes: int = 0
    #: spill files rejected by the integrity check (truncated, bit-flipped,
    #: unframed, or unpicklable) — each one degraded a would-be disk hit
    #: into a recompute
    disk_corrupt: int = 0

    def snapshot(self) -> "StoreCounters":
        return StoreCounters(hits=self.hits, misses=self.misses,
                             evictions=self.evictions, puts=self.puts,
                             disk_loads=self.disk_loads,
                             disk_writes=self.disk_writes,
                             disk_corrupt=self.disk_corrupt)

    def delta(self, before: "StoreCounters") -> "StoreCounters":
        """Counter growth since an earlier :meth:`snapshot`."""
        return StoreCounters(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            evictions=self.evictions - before.evictions,
            puts=self.puts - before.puts,
            disk_loads=self.disk_loads - before.disk_loads,
            disk_writes=self.disk_writes - before.disk_writes,
            disk_corrupt=self.disk_corrupt - before.disk_corrupt)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def to_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "puts": self.puts,
                "disk_loads": self.disk_loads,
                "disk_writes": self.disk_writes,
                "disk_corrupt": self.disk_corrupt,
                "hit_rate": self.hit_rate}


class ArtifactStore:
    """Bounded LRU of content-addressed entries with optional disk spill."""

    def __init__(self, max_entries: int = 4096,
                 max_bytes: int = 512 * 1024 * 1024,
                 disk_dir: Optional[str] = None) -> None:
        if max_entries <= 0:
            raise ConfigError("artifact store needs max_entries > 0")
        if max_bytes <= 0:
            raise ConfigError("artifact store needs max_bytes > 0")
        self.max_entries = max_entries
        self.max_bytes = max_bytes          # unit: bytes
        self.current_bytes = 0              # unit: bytes
        self.counters = StoreCounters()
        self._entries: "OrderedDict[str, Tuple[object, int]]" = OrderedDict()
        self._disk_dir: Optional[pathlib.Path] = None
        if disk_dir is not None:
            self.attach_disk(disk_dir)

    # -- configuration -----------------------------------------------------

    @property
    def disk_dir(self) -> Optional[pathlib.Path]:
        return self._disk_dir

    def attach_disk(self, disk_dir: str) -> None:
        """Enable write-through spill under ``disk_dir`` (created if needed)."""
        path = pathlib.Path(disk_dir)
        path.mkdir(parents=True, exist_ok=True)
        self._disk_dir = path

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> Tuple[object, bool]:
        """Return ``(value, found)``; promotes hits to most-recently-used.

        A memory miss consults the disk tier (when attached) and, on a
        disk hit, re-admits the entry to memory. Only a miss in *both*
        tiers counts as a miss. A spill that fails its integrity check is
        deleted and counted (``disk_corrupt``) but reads as a plain miss,
        so the entry is recomputed rather than the lookup raising.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            self.counters.hits += 1
            return self._entries[key][0], True
        if self._disk_dir is not None:
            path = self._disk_dir / f"{key}.pkl"
            if path.exists():
                value, intact = _read_spill(path)
                if intact:
                    self.counters.disk_loads += 1
                    self.counters.hits += 1
                    self._admit(key, value, write_disk=False)
                    return value, True
                self.counters.disk_corrupt += 1
                path.unlink()  # quarantine; the recompute re-spills it
        self.counters.misses += 1
        return None, False

    def put(self, key: str, value: object) -> None:
        """Insert (or refresh) an entry; spills to disk when attached."""
        self.counters.puts += 1
        self._admit(key, value, write_disk=True)

    def cached(self, key: str, compute: Callable[[], object]) -> object:
        """Return the stored value for ``key``, computing it on a miss."""
        value, found = self.get(key)
        if found:
            return value
        value = compute()
        self.put(key, value)
        return value

    # -- maintenance -------------------------------------------------------

    def reset(self, kind: Optional[str] = None) -> None:
        """Drop entries (both tiers); restrict to one ``kind`` if given."""
        if kind is None:
            self._entries.clear()
            self.current_bytes = 0
        else:
            prefix = f"{kind}-"
            for key in [k for k in self._entries if k.startswith(prefix)]:
                _, entry_bytes = self._entries.pop(key)
                self.current_bytes -= entry_bytes
        if self._disk_dir is not None:
            pattern = "*.pkl" if kind is None else f"{kind}-*.pkl"
            for path in sorted(self._disk_dir.glob(pattern)):
                path.unlink()
            # crash husks from interrupted atomic writes
            for path in sorted(self._disk_dir.glob(pattern + ".tmp")):
                path.unlink()

    def drop_memory(self) -> None:
        """Flush the memory tier only (spilled entries stay on disk).

        Lets the bench and the determinism tests force the next lookups
        through the disk-reload path without losing the warm state.
        """
        self._entries.clear()
        self.current_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- internals ---------------------------------------------------------

    def _admit(self, key: str, value: object, write_disk: bool) -> None:
        entry_bytes = _payload_bytes(value)
        if key in self._entries:
            _, old_bytes = self._entries.pop(key)
            self.current_bytes -= old_bytes
        self._entries[key] = (value, entry_bytes)
        self.current_bytes += entry_bytes
        if write_disk and self._disk_dir is not None:
            path = self._disk_dir / f"{key}.pkl"
            if not path.exists():
                _write_spill(path, value)
                self.counters.disk_writes += 1
        while (len(self._entries) > self.max_entries
               or (self.current_bytes > self.max_bytes
                   and len(self._entries) > 1)):
            _, (_, evicted_bytes) = self._entries.popitem(last=False)
            self.current_bytes -= evicted_bytes
            self.counters.evictions += 1


def _payload_bytes(value: object) -> int:
    """Best-effort footprint of a stored value (for the byte budget)."""
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    # Fallback: a flat floor per entry; exact accounting only matters for
    # the artifact kinds, which all expose .nbytes.
    return 1024
