"""Procedural textures and sampling (the TEX units of Fig 1(c)).

Textures are small RGBA arrays sampled with wrap-around nearest filtering.
Procedural constructors stand in for game assets: a checkerboard and a seeded
value-noise texture are enough to exercise the texture path end to end.
"""

from __future__ import annotations

import numpy as np

from ..errors import PipelineError


class Texture:
    """An RGBA texture with nearest-neighbour, wrap-mode sampling."""

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 3 or data.shape[2] != 4:
            raise PipelineError(f"texture data must be (H, W, 4), got {data.shape}")
        self.data = data

    @property
    def height(self) -> int:
        return self.data.shape[0]

    @property
    def width(self) -> int:
        return self.data.shape[1]

    def sample(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Sample at normalized (u, v); arrays broadcast, wrap addressing."""
        tx = (np.asarray(u) % 1.0 * self.width).astype(np.int64) % self.width
        ty = (np.asarray(v) % 1.0 * self.height).astype(np.int64) % self.height
        return self.data[ty, tx]


def checkerboard(size: int = 16, squares: int = 4,
                 color_a=(1.0, 1.0, 1.0, 1.0),
                 color_b=(0.4, 0.4, 0.4, 1.0)) -> Texture:
    """A ``squares`` x ``squares`` checkerboard of ``size`` x ``size`` texels."""
    if size <= 0 or squares <= 0:
        raise PipelineError("size and squares must be positive")
    idx = np.arange(size) * squares // size
    pattern = (idx[:, None] + idx[None, :]) % 2
    data = np.where(pattern[..., None] == 0,
                    np.asarray(color_a, dtype=np.float32),
                    np.asarray(color_b, dtype=np.float32))
    return Texture(data.astype(np.float32))


def value_noise(size: int = 16, seed: int = 0) -> Texture:
    """Seeded random RGB noise with full alpha."""
    rng = np.random.default_rng(seed)
    rgb = rng.random((size, size, 3), dtype=np.float32)
    alpha = np.ones((size, size, 1), dtype=np.float32)
    return Texture(np.concatenate([rgb, alpha], axis=2))
