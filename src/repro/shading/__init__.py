"""Shading substrate: pixel-shader models and procedural textures."""

from .shaders import PixelShader, ShaderLibrary, TexturedShader
from .texture import Texture, checkerboard, value_noise

__all__ = [
    "PixelShader",
    "ShaderLibrary",
    "TexturedShader",
    "Texture",
    "checkerboard",
    "value_noise",
]
