"""Programmable-shading models for the functional pipeline.

The timing side of shading lives in the per-draw ``vertex_cost`` /
``pixel_cost`` fields (cycles per triangle / fragment); this module provides
the *functional* side — what colour a shaded fragment gets. The default
shader passes interpolated vertex colour through; the texture shader
modulates it with a screen-projected texture lookup, exercising the TEX path.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .texture import Texture


class PixelShader:
    """Base pixel shader: pass interpolated colour through unchanged."""

    def shade(self, xs: np.ndarray, ys: np.ndarray,
              colors: np.ndarray) -> np.ndarray:
        return colors


class TexturedShader(PixelShader):
    """Modulates fragment colour by a texture sampled in screen space.

    Screen-projective addressing keeps the rasterizer attribute set small
    (no per-vertex UVs) while still driving real texture sampling.
    """

    def __init__(self, texture: Texture, screen_width: int,
                 screen_height: int, tiling: float = 8.0) -> None:
        self.texture = texture
        self.screen_width = screen_width
        self.screen_height = screen_height
        self.tiling = tiling

    def shade(self, xs: np.ndarray, ys: np.ndarray,
              colors: np.ndarray) -> np.ndarray:
        u = xs.astype(np.float32) / self.screen_width * self.tiling
        v = ys.astype(np.float32) / self.screen_height * self.tiling
        texel = self.texture.sample(u, v)
        shaded = colors.copy()
        shaded[:, :3] *= texel[:, :3]
        return shaded


class ShaderLibrary:
    """Maps draw-command ``texture_id`` values to pixel shaders."""

    def __init__(self, screen_width: int, screen_height: int) -> None:
        self.screen_width = screen_width
        self.screen_height = screen_height
        self._default = PixelShader()
        self._by_texture: Dict[int, PixelShader] = {}

    def register_texture(self, texture_id: int, texture: Texture,
                         tiling: float = 8.0) -> None:
        self._by_texture[texture_id] = TexturedShader(
            texture, self.screen_width, self.screen_height, tiling)

    def shader_for(self, texture_id: Optional[int]) -> PixelShader:
        if texture_id is None:
            return self._default
        return self._by_texture.get(texture_id, self._default)
