"""Radix-k compositing (Peterka et al.; paper section II-D background).

Generalizes binary-swap: GPU count N factors into rounds ``k1 * k2 * ... *
km``; in round i, groups of ``k_i`` GPUs run a direct-send exchange over
their current working region, splitting it into ``k_i`` parts. ``k = [N]``
degenerates to single-round direct-send; ``k = [2, 2, ...]`` is binary-swap.

As with the other compositors we return ``(composed, transfers)``; ordering
for transparent operators follows original GPU index order, which the group
structure preserves (groups are contiguous in index at every round).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..errors import CompositionError
from ..geometry.primitives import BlendOp
from .compositor import SubImage, blend_merge, depth_merge
from .direct_send import Transfer


def default_factorization(n: int) -> List[int]:
    """A reasonable k-vector: repeated factors of 2 then the odd remainder."""
    if n <= 0:
        raise CompositionError("GPU count must be positive")
    factors = []
    remaining = n
    while remaining % 2 == 0:
        factors.append(2)
        remaining //= 2
    if remaining > 1:
        factors.append(remaining)
    return factors or [1]


def radix_k(images: Sequence[SubImage], k_vector: Optional[List[int]] = None,
            op: Optional[BlendOp] = None) -> tuple:
    """Compose via radix-k. Returns ``(composed, transfers)``."""
    n = len(images)
    if n == 0:
        raise CompositionError("radix-k needs at least one sub-image")
    ks = k_vector if k_vector is not None else default_factorization(n)
    if math.prod(ks) != n:
        raise CompositionError(
            f"k-vector {ks} does not factor GPU count {n}")

    height, width = images[0].shape
    num_pixels = height * width
    opaque = op is None or op is BlendOp.REPLACE

    colors = [img.color.reshape(num_pixels, 4).copy() for img in images]
    depths = [img.depth.reshape(num_pixels).copy() for img in images]
    touches = [img.touched.reshape(num_pixels).copy() for img in images]
    regions = [(0, num_pixels)] * n
    transfers: List[Transfer] = []

    # Stride grows from 1 so every round merges *adjacent* blocks of original
    # sub-images — required for ordered (transparent) reductions.
    stride = 1
    for round_index, k in enumerate(ks):
        block = stride * k
        for base in range(0, n, block):
            for offset in range(stride):
                members = [base + offset + j * stride for j in range(k)]
                _exchange_group(members, colors, depths, touches, regions,
                                transfers, round_index, opaque, op)
        stride = block

    out_color = np.empty((num_pixels, 4), dtype=np.float32)
    out_depth = np.empty(num_pixels, dtype=np.float32)
    out_touch = np.empty(num_pixels, dtype=bool)
    final_round = len(ks)
    for gpu in range(n):
        lo, hi = regions[gpu]
        out_color[lo:hi] = colors[gpu][lo:hi]
        out_depth[lo:hi] = depths[gpu][lo:hi]
        out_touch[lo:hi] = touches[gpu][lo:hi]
        if gpu != 0 and hi > lo:
            transfers.append(Transfer(final_round, gpu, 0, hi - lo))

    composed = SubImage(color=out_color.reshape(height, width, 4),
                        depth=out_depth.reshape(height, width),
                        touched=out_touch.reshape(height, width))
    return composed, transfers


def _exchange_group(members, colors, depths, touches, regions, transfers,
                    round_index, opaque, op) -> None:
    """Direct-send within one group over the members' shared region."""
    lo, hi = regions[members[0]]
    k = len(members)
    bounds = np.linspace(lo, hi, k + 1).astype(int)
    for slot, owner in enumerate(members):
        part_lo, part_hi = int(bounds[slot]), int(bounds[slot + 1])
        acc_color = colors[members[0]][part_lo:part_hi].reshape(1, -1, 4)
        acc_depth = depths[members[0]][part_lo:part_hi].reshape(1, -1)
        acc_touch = touches[members[0]][part_lo:part_hi].reshape(1, -1)
        acc = SubImage(color=acc_color.copy(), depth=acc_depth.copy(),
                       touched=acc_touch.copy())
        if members[0] != owner and part_hi > part_lo:
            transfers.append(
                Transfer(round_index, members[0], owner, part_hi - part_lo))
        for src in members[1:]:
            incoming = SubImage(
                color=colors[src][part_lo:part_hi].reshape(1, -1, 4),
                depth=depths[src][part_lo:part_hi].reshape(1, -1),
                touched=touches[src][part_lo:part_hi].reshape(1, -1))
            if src != owner and part_hi > part_lo:
                transfers.append(
                    Transfer(round_index, src, owner, part_hi - part_lo))
            if opaque:
                acc = depth_merge(acc, incoming)
            else:
                # Members are listed in ascending block order, so the
                # accumulator is always the front operand.
                acc = blend_merge(acc, incoming, op)
        colors[owner][part_lo:part_hi] = acc.color.reshape(-1, 4)
        depths[owner][part_lo:part_hi] = acc.depth.reshape(-1)
        touches[owner][part_lo:part_hi] = acc.touched.reshape(-1)
        regions[owner] = (part_lo, part_hi)
