"""Direct-send parallel compositing (Hsu/Neumann; paper section II-D).

Every GPU is assigned a disjoint slice of the final image. After rendering,
each GPU sends, to every other GPU, the part of its sub-image that lies in
the destination's slice; each GPU then reduces the N contributions for its
own slice. Simple, single round — but with many GPUs the all-to-all burst
congests the network, which is the failure mode CHOPIN's composition
scheduler addresses.

This module provides both the *functional* reduction and the *exchange plan*
(who sends how many pixels to whom) used for traffic accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import CompositionError
from ..geometry.primitives import BlendOp
from .compositor import SubImage, blend_merge, depth_merge


@dataclass(frozen=True)
class Transfer:
    """One point-to-point message in a compositing exchange."""

    round_index: int
    src: int
    dst: int
    pixels: int

    def bytes(self, pixel_bytes: int = 8) -> int:
        return self.pixels * pixel_bytes


def slice_bounds(num_pixels: int, num_gpus: int) -> List[tuple]:
    """Contiguous flat-index slices assigning ~1/N of the image per GPU."""
    bounds = np.linspace(0, num_pixels, num_gpus + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_gpus)]


def direct_send(images: Sequence[SubImage],
                op: Optional[BlendOp] = None) -> tuple:
    """Compose via direct-send. Returns ``(composed, transfers)``.

    ``op=None`` (or REPLACE) means opaque depth compositing; any other
    operator means ordered transparent blending, reduced in GPU index order
    within each destination slice.
    """
    if not images:
        raise CompositionError("direct-send needs at least one sub-image")
    n = len(images)
    height, width = images[0].shape
    num_pixels = height * width
    slices = slice_bounds(num_pixels, n)
    opaque = op is None or op is BlendOp.REPLACE

    flat_color = [img.color.reshape(num_pixels, 4) for img in images]
    flat_depth = [img.depth.reshape(num_pixels) for img in images]
    flat_touch = [img.touched.reshape(num_pixels) for img in images]

    out_color = np.empty((num_pixels, 4), dtype=np.float32)
    out_depth = np.empty(num_pixels, dtype=np.float32)
    out_touch = np.empty(num_pixels, dtype=bool)

    transfers: List[Transfer] = []
    for dst, (lo, hi) in enumerate(slices):
        piece = SubImage(color=flat_color[0][lo:hi].reshape(1, -1, 4),
                         depth=flat_depth[0][lo:hi].reshape(1, -1),
                         touched=flat_touch[0][lo:hi].reshape(1, -1))
        if dst != 0:
            transfers.append(Transfer(0, 0, dst, hi - lo))
        for src in range(1, n):
            incoming = SubImage(
                color=flat_color[src][lo:hi].reshape(1, -1, 4),
                depth=flat_depth[src][lo:hi].reshape(1, -1),
                touched=flat_touch[src][lo:hi].reshape(1, -1))
            if src != dst:
                transfers.append(Transfer(0, src, dst, hi - lo))
            if opaque:
                piece = depth_merge(piece, incoming)
            else:
                piece = blend_merge(piece, incoming, op)
        out_color[lo:hi] = piece.color.reshape(-1, 4)
        out_depth[lo:hi] = piece.depth.reshape(-1)
        out_touch[lo:hi] = piece.touched.reshape(-1)

    composed = SubImage(color=out_color.reshape(height, width, 4),
                        depth=out_depth.reshape(height, width),
                        touched=out_touch.reshape(height, width))
    return composed, transfers


def total_traffic_pixels(transfers: Sequence[Transfer]) -> int:
    return sum(t.pixels for t in transfers)
