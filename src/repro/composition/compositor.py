"""Sub-image composition: the reduction at the heart of CHOPIN.

A :class:`SubImage` is what one GPU produces for a composition group: colour,
depth, and a touched-pixel mask. Two reduction flavours exist (paper
section III-B / Fig 7):

- **opaque** groups reduce by depth selection — commutative, so any order and
  any pairing works (`composite_opaque`);
- **transparent** groups reduce by an associative blend that must respect the
  GPU (= draw) order; associativity still allows *adjacent pairs* to combine
  asynchronously (`composite_transparent_tree`), which is what CHOPIN's
  composition scheduler exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import CompositionError
from ..framebuffer.depth import DEPTH_CLEAR
from ..framebuffer.framebuffer import Framebuffer
from ..geometry.primitives import BlendOp
from .operators import blend, identity_for


@dataclass
class SubImage:
    """One GPU's rendering of a composition group over the full screen."""

    color: np.ndarray                 # (H, W, 4) float32
    depth: np.ndarray                 # (H, W) float32
    touched: np.ndarray               # (H, W) bool — pixels any draw wrote

    @classmethod
    def blank(cls, width: int, height: int,
              op: BlendOp = BlendOp.OVER) -> "SubImage":
        """An identity sub-image (contributes nothing under ``op``)."""
        color = np.broadcast_to(identity_for(op), (height, width, 4)).copy()
        return cls(color=color,
                   depth=np.full((height, width), DEPTH_CLEAR, np.float32),
                   touched=np.zeros((height, width), dtype=bool))

    @classmethod
    def from_framebuffer(cls, fb: Framebuffer,
                         touched: Optional[np.ndarray] = None) -> "SubImage":
        if touched is None:
            touched = fb.depth < DEPTH_CLEAR
        return cls(color=fb.color.copy(), depth=fb.depth.copy(),
                   touched=touched.copy())

    @property
    def shape(self) -> tuple:
        return self.depth.shape

    def touched_pixel_count(self) -> int:
        return int(self.touched.sum())


def _check_shapes(images: Sequence[SubImage]) -> None:
    if not images:
        raise CompositionError("cannot compose zero sub-images")
    shape = images[0].shape
    for img in images[1:]:
        if img.shape != shape:
            raise CompositionError("sub-image shapes differ")


def depth_merge(a: SubImage, b: SubImage) -> SubImage:
    """Merge two opaque sub-images: per pixel, keep the closer fragment.

    Commutative and associative — the out-of-order reduction of Fig 7 step 7.
    Untouched pixels never win against touched ones even at equal depth.
    """
    if a.shape != b.shape:
        raise CompositionError("sub-image shapes differ")
    # b wins where it drew and is strictly closer (or a never drew). An
    # untouched side never wins: its depth may hold stale pre-group values.
    b_wins = b.touched & ((b.depth < a.depth) | ~a.touched)
    color = np.where(b_wins[..., None], b.color, a.color)
    depth = np.where(b_wins, b.depth, a.depth)
    return SubImage(color=color.astype(np.float32),
                    depth=depth.astype(np.float32),
                    touched=a.touched | b.touched)


def composite_opaque(images: Sequence[SubImage],
                     order: Optional[Sequence[int]] = None) -> SubImage:
    """Reduce opaque sub-images (in any ``order``; the result is identical)."""
    _check_shapes(images)
    indices = list(order) if order is not None else list(range(len(images)))
    result = images[indices[0]]
    for i in indices[1:]:
        result = depth_merge(result, images[i])
    return result


def blend_merge(front: SubImage, back: SubImage, op: BlendOp) -> SubImage:
    """Combine two *adjacent* transparent sub-images.

    ``front`` holds draws that come earlier in submission order. With
    back-to-front submission (the convention for transparency), earlier draws
    are composited first, so the pair reduces as
    ``blend(op, old=front, new=back)``.
    """
    if front.shape != back.shape:
        raise CompositionError("sub-image shapes differ")
    color = blend(op, front.color, back.color)
    return SubImage(color=color,
                    depth=np.minimum(front.depth, back.depth),
                    touched=front.touched | back.touched)


def composite_transparent(images: Sequence[SubImage],
                          op: BlendOp = BlendOp.OVER) -> SubImage:
    """Sequential in-order reduction of transparent sub-images."""
    _check_shapes(images)
    result = images[0]
    for img in images[1:]:
        result = blend_merge(result, img, op)
    return result


def composite_transparent_tree(images: Sequence[SubImage],
                               op: BlendOp = BlendOp.OVER) -> SubImage:
    """Pairwise (adjacent) tree reduction — the associative schedule.

    Produces the same image as :func:`composite_transparent` up to floating
    point, while allowing independent pairs to combine in parallel. This is
    the asynchronous adjacent-composition CHOPIN performs (section III-B).
    """
    _check_shapes(images)
    level: List[SubImage] = list(images)
    while len(level) > 1:
        merged: List[SubImage] = []
        for i in range(0, len(level) - 1, 2):
            merged.append(blend_merge(level[i], level[i + 1], op))
        if len(level) % 2 == 1:
            merged.append(level[-1])
        level = merged
    return level[0]


def resolve_to_background(color: np.ndarray, depth: np.ndarray,
                          composed: SubImage, op: BlendOp,
                          depth_write: bool = True) -> None:
    """Merge a composed group image into background surfaces, in place.

    For opaque groups this is a depth-tested write; for transparent groups
    the composed layer blends over the background exactly once — the reason
    CHOPIN allocates separate render targets for transparent groups (Fig 7
    step 3: blending per sub-image would hit the background N times).
    """
    if color.shape[:2] != composed.shape or depth.shape != composed.shape:
        raise CompositionError("background / sub-image size mismatch")
    if op is BlendOp.REPLACE:
        wins = composed.touched & (composed.depth < depth)
        color[wins] = composed.color[wins]
        if depth_write:
            depth[wins] = composed.depth[wins]
    else:
        touched = composed.touched
        color[touched] = blend(op, color[touched], composed.color[touched])


def resolve_to_framebuffer(background: Framebuffer, composed: SubImage,
                           op: BlendOp) -> None:
    """Convenience wrapper of :func:`resolve_to_background` for a
    :class:`~repro.framebuffer.framebuffer.Framebuffer`."""
    resolve_to_background(background.color, background.depth, composed, op)
