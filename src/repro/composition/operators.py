"""Pixel composition operators (paper section II-D).

Colours are premultiplied-alpha RGBA float32. The central operator is
Porter-Duff *over*: ``p = p_new + (1 - alpha_new) * p_old`` — exactly the
formula the paper quotes. All the blending operators here are associative but
not commutative; :func:`is_associative_pair` captures the section IV-A rule
that associativity does not transfer *across* different operators (event 5
group boundaries).
"""

from __future__ import annotations

import numpy as np

from ..errors import CompositionError
from ..geometry.primitives import BlendOp


def over(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Porter-Duff over with premultiplied alpha: new composited onto old."""
    new_alpha = new[..., 3:4]
    return (new + (1.0 - new_alpha) * old).astype(np.float32)


def additive(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Additive blending, clamped to keep energy finite."""
    return np.minimum(old + new, 1.0).astype(np.float32)


def multiply(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Multiplicative blending (e.g., light maps)."""
    return (old * new).astype(np.float32)


def replace(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Opaque overwrite."""
    return new.astype(np.float32)


_BLENDERS = {
    BlendOp.OVER: over,
    BlendOp.ADDITIVE: additive,
    BlendOp.MULTIPLY: multiply,
    BlendOp.REPLACE: replace,
}


def blend(op: BlendOp, old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Apply blending operator ``op``; shapes must broadcast."""
    try:
        fn = _BLENDERS[op]
    except KeyError:
        raise CompositionError(f"unknown blend operator: {op!r}")
    return fn(old, new)


def is_associative_pair(op_a: BlendOp, op_b: BlendOp) -> bool:
    """Whether draws using ``op_a`` then ``op_b`` can share a composition group.

    Each operator is associative with itself, but mixing operators (or mixing
    opaque REPLACE with any transparent blend) breaks the reordering CHOPIN
    relies on — hence the event-5 group boundary.
    """
    return op_a is op_b


# identity pixels are shared per-process (identity_for sits on per-layer
# loops); read-only so a caller cannot corrupt every later composition
_IDENTITY_TRANSPARENT = np.zeros(4, dtype=np.float32)
_IDENTITY_TRANSPARENT.flags.writeable = False
_IDENTITY_WHITE = np.ones(4, dtype=np.float32)
_IDENTITY_WHITE.flags.writeable = False


def identity_for(op: BlendOp) -> np.ndarray:
    """The neutral element pixel for an operator, where one exists.

    OVER and ADDITIVE treat fully transparent black as identity; MULTIPLY
    treats white. REPLACE has no left identity (any value is overwritten),
    which is why opaque groups composite by depth instead. The returned
    array is shared and read-only — copy before mutating in place.
    """
    if op in (BlendOp.OVER, BlendOp.ADDITIVE):
        return _IDENTITY_TRANSPARENT
    if op is BlendOp.MULTIPLY:
        return _IDENTITY_WHITE
    raise CompositionError(f"{op!r} has no identity element")
