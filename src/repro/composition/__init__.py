"""Image-composition substrate: operators, reductions, exchange algorithms."""

from .operators import (additive, blend, identity_for, is_associative_pair,
                        multiply, over, replace)
from .compositor import (SubImage, blend_merge, composite_opaque,
                         composite_transparent, composite_transparent_tree,
                         depth_merge, resolve_to_background,
                         resolve_to_framebuffer)
from .direct_send import Transfer, direct_send, slice_bounds, total_traffic_pixels
from .binary_swap import binary_swap
from .radix_k import default_factorization, radix_k

__all__ = [
    "SubImage",
    "Transfer",
    "additive",
    "binary_swap",
    "blend",
    "blend_merge",
    "composite_opaque",
    "composite_transparent",
    "composite_transparent_tree",
    "default_factorization",
    "depth_merge",
    "direct_send",
    "identity_for",
    "is_associative_pair",
    "multiply",
    "over",
    "radix_k",
    "replace",
    "resolve_to_background",
    "slice_bounds",
    "total_traffic_pixels",
]
