"""Distributed FrameBuffer composition: tile-granular asynchronous reduction.

Instead of exchanging whole sub-images at group boundaries, a DFB scheme
streams each GPU's sub-image as fixed-size screen tiles to the tiles'
owners the moment rendering finishes. The owner folds arriving tiles into
its region of the distributed framebuffer as they land:

- **opaque** groups reduce in *any* order: per pixel the accumulator keeps
  the contribution with the lexicographically smallest ``(depth, source)``
  pair, which is exactly the winner index-order :func:`composite_opaque`
  selects — so any tile arrival order reproduces the whole-sub-image
  compositor bit for bit (ties break toward the lower GPU index either
  way);
- **transparent** groups blend with an associative but *non-commutative*
  operator: a tile may only fold a layer adjacent (among the layers that
  actually touch that tile) to the contiguous span already accumulated.
  Out-of-order arrivals raise a typed
  :class:`~repro.errors.SchedulingError` — DFB must reject the protocol
  violation rather than silently mis-blend.

The timing side (tile messages contending on the interconnect) lives in
:mod:`repro.sfr.dfb`; this module is the pure functional core plus the
tile-message planning shared by both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import CompositionError, SchedulingError
from ..framebuffer.depth import DEPTH_CLEAR
from ..geometry.primitives import BlendOp
from .compositor import SubImage
from .operators import blend, identity_for


@dataclass(frozen=True)
class TileMessage:
    """One tile's worth of sub-image payload bound for the tile's owner."""

    src: int
    dst: int
    tx: int
    ty: int
    pixels: int


def plan_group_tiles(touched_tiles: Sequence[np.ndarray],
                     tile_pixels: np.ndarray,
                     tile_owner: np.ndarray,
                     ) -> Tuple[List[List[TileMessage]], List[int]]:
    """Tile messages for one opaque group's composition.

    ``touched_tiles[src]`` is the (tiles_y, tiles_x) bool bitmap of tiles
    GPU ``src`` rendered into; ``tile_pixels``/``tile_owner`` give each
    tile's pixel area and owning GPU. Returns ``(sends, recv_counts)``:
    per-source messages in raster order (tiles a GPU owns itself never
    travel) and the number of messages each GPU will receive — the latch
    count the timing pass arms before any tile is in flight.
    """
    n = len(touched_tiles)
    tiles_y, tiles_x = tile_owner.shape
    sends: List[List[TileMessage]] = [[] for _ in range(n)]
    recv_counts = [0 for _ in range(n)]
    for src in range(n):
        bitmap = touched_tiles[src]
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                if not bitmap[ty, tx]:
                    continue
                dst = int(tile_owner[ty, tx])
                if dst == src:
                    continue
                sends[src].append(TileMessage(
                    src=src, dst=dst, tx=tx, ty=ty,
                    pixels=int(tile_pixels[ty, tx])))
                recv_counts[dst] += 1
    return sends, recv_counts


def tree_edge_tile_sizes(tree_levels: Sequence[Sequence[Tuple[int, int, int]]],
                         leaf_bitmaps: Mapping[int, np.ndarray],
                         tile_pixels: np.ndarray) -> List[List[List[int]]]:
    """Per-tile pixel sizes of every reduction-tree edge's tile stream.

    Replays the adjacent-pair merge over the leaves' touched-tile bitmaps
    (union at each receiver — exactly how the tree's edge pixel counts were
    derived), returning, parallel to ``tree_levels``, the raster-order list
    of tile pixel counts each edge streams. The per-edge sum equals the
    edge's recorded whole-message pixel count.
    """
    current = {m: np.array(b, dtype=bool, copy=True)
               for m, b in leaf_bitmaps.items()}
    streams: List[List[List[int]]] = []
    for level in tree_levels:
        level_streams: List[List[int]] = []
        for sender, receiver, _pixels in level:
            bitmap = current[sender]
            # boolean indexing yields the touched tiles in raster order
            level_streams.append(tile_pixels[bitmap].tolist())
            current[receiver] = current[receiver] | bitmap
        streams.append(level_streams)
    return streams


def all_tile_messages(grid, images: Sequence[SubImage]
                      ) -> List[Tuple[int, int, int]]:
    """Every (src, tx, ty) tile touched by any source, in raster order.

    The canonical full delivery schedule for :class:`OpaqueTileReducer`;
    property tests permute it to exercise arbitrary arrival orders.
    """
    messages: List[Tuple[int, int, int]] = []
    for src, image in enumerate(images):
        for ty in range(grid.tiles_y):
            for tx in range(grid.tiles_x):
                x0, y0, x1, y1 = grid.tile_bounds(tx, ty)
                if image.touched[y0:y1, x0:x1].any():
                    messages.append((src, tx, ty))
    return messages


class OpaqueTileReducer:
    """Any-order tile accumulator for one opaque composition group.

    Per pixel the accumulator keeps the touched contribution with the
    smallest ``(depth, source GPU)`` pair. That selection is a pure argmin,
    hence independent of arrival order, and it coincides with what
    index-order sequential :func:`~repro.composition.compositor
    .composite_opaque` produces (its strict ``<`` keeps the earliest source
    on depth ties) — the bit-identity oracle the DFB scheme is gated on.
    """

    def __init__(self, grid, num_sources: int) -> None:
        if num_sources <= 0:
            raise CompositionError("need at least one sub-image source")
        height, width = grid.height, grid.width
        self.grid = grid
        self.num_sources = num_sources
        self.color = np.zeros((height, width, 4), dtype=np.float32)
        self.depth = np.full((height, width), DEPTH_CLEAR, dtype=np.float32)
        self.touched = np.zeros((height, width), dtype=bool)
        #: winning source per pixel; ``num_sources`` = no contribution yet
        self.winner = np.full((height, width), num_sources, dtype=np.int32)

    def accept(self, src: int, tx: int, ty: int, color: np.ndarray,
               depth: np.ndarray, touched: np.ndarray) -> None:
        """Fold one tile fragment from ``src`` — any order, exactly once."""
        if not 0 <= src < self.num_sources:
            raise CompositionError(f"unknown sub-image source {src}")
        x0, y0, x1, y1 = self.grid.tile_bounds(tx, ty)
        window = (slice(y0, y1), slice(x0, x1))
        acc_depth = self.depth[window]
        acc_touched = self.touched[window]
        acc_winner = self.winner[window]
        wins = touched & (~acc_touched
                          | (depth < acc_depth)
                          | ((depth == acc_depth) & (src < acc_winner)))
        self.color[window][wins] = color[wins]
        acc_depth[wins] = depth[wins]
        acc_winner[wins] = src
        self.touched[window] |= touched

    def accept_subimage_tile(self, src: int, tx: int, ty: int,
                             image: SubImage) -> None:
        """Fold the (tx, ty) tile of a full-screen sub-image."""
        x0, y0, x1, y1 = self.grid.tile_bounds(tx, ty)
        window = (slice(y0, y1), slice(x0, x1))
        self.accept(src, tx, ty, image.color[window], image.depth[window],
                    image.touched[window])

    def result(self) -> SubImage:
        return SubImage(color=self.color, depth=self.depth,
                        touched=self.touched)


def reduce_opaque_tiles(grid, images: Sequence[SubImage],
                        order: Optional[Iterable[Tuple[int, int, int]]] = None,
                        ) -> SubImage:
    """Tile-streamed reduction of full sub-images, in any delivery order.

    ``order`` is a sequence of ``(src, tx, ty)`` deliveries covering every
    touched tile of every source exactly once (default: raster order by
    source). Bit-identical to ``composite_opaque(images)`` regardless of
    the permutation.
    """
    if not images:
        raise CompositionError("cannot compose zero sub-images")
    reducer = OpaqueTileReducer(grid, len(images))
    deliveries = list(order) if order is not None \
        else all_tile_messages(grid, images)
    for src, tx, ty in deliveries:
        reducer.accept_subimage_tile(src, tx, ty, images[src])
    return reducer.result()


class TransparentTileReducer:
    """Tree-adjacent tile accumulator for one transparent group.

    ``layer_tiles[k]`` is the touched-tile bitmap of layer ``k`` (layers
    are submission-order chunks). Blending is associative but not
    commutative, so per tile the accumulator grows a *contiguous span of
    contributing layers*: an arriving layer must be the immediate
    predecessor or successor — among the layers that actually touch the
    tile — of the span already folded. Layers that skip the tile
    contribute the blend identity there, which is why adjacency is judged
    against contributors only. Anything else raises
    :class:`~repro.errors.SchedulingError`.
    """

    def __init__(self, grid, layer_tiles: Sequence[np.ndarray],
                 op: BlendOp = BlendOp.OVER) -> None:
        if not len(layer_tiles):
            raise CompositionError("need at least one layer")
        height, width = grid.height, grid.width
        self.grid = grid
        self.op = op
        self.num_layers = len(layer_tiles)
        self.color = np.broadcast_to(
            identity_for(op), (height, width, 4)).astype(np.float32).copy()
        self.depth = np.full((height, width), DEPTH_CLEAR, dtype=np.float32)
        self.touched = np.zeros((height, width), dtype=bool)
        #: per tile: contributing layers, in submission order
        self._contributors: Dict[Tuple[int, int], List[int]] = {}
        #: per tile: folded contiguous span, as contributor-list indices
        self._spans: Dict[Tuple[int, int], List[int]] = {}
        for layer, bitmap in enumerate(layer_tiles):
            for ty in range(bitmap.shape[0]):
                for tx in range(bitmap.shape[1]):
                    if bitmap[ty, tx]:
                        self._contributors.setdefault(
                            (tx, ty), []).append(layer)

    def accept(self, layer: int, tx: int, ty: int, color: np.ndarray,
               depth: np.ndarray, touched: np.ndarray) -> None:
        """Fold one tile of one layer; must be span-adjacent for the tile."""
        contributors = self._contributors.get((tx, ty), [])
        if layer not in contributors:
            raise SchedulingError(
                f"layer {layer} does not touch tile ({tx}, {ty})")
        rank = contributors.index(layer)
        span = self._spans.get((tx, ty))
        x0, y0, x1, y1 = self.grid.tile_bounds(tx, ty)
        window = (slice(y0, y1), slice(x0, x1))
        if span is None:
            self.color[window] = color
            self._spans[(tx, ty)] = [rank, rank]
        elif rank == span[0] - 1:
            # incoming layer is in front of (earlier than) the span
            self.color[window] = blend(self.op, color, self.color[window])
            span[0] = rank
        elif rank == span[1] + 1:
            # incoming layer is behind (later than) the span
            self.color[window] = blend(self.op, self.color[window], color)
            span[1] = rank
        else:
            raise SchedulingError(
                f"out-of-order tile reduction: tile ({tx}, {ty}) holds "
                f"layers {contributors[span[0]]}..{contributors[span[1]]} "
                f"but layer {layer} arrived (transparent groups must fold "
                f"tree-adjacent layers)")
        self.depth[window] = np.minimum(self.depth[window], depth)
        self.touched[window] |= touched

    def accept_subimage_tile(self, layer: int, tx: int, ty: int,
                             image: SubImage) -> None:
        x0, y0, x1, y1 = self.grid.tile_bounds(tx, ty)
        window = (slice(y0, y1), slice(x0, x1))
        self.accept(layer, tx, ty, image.color[window], image.depth[window],
                    image.touched[window])

    def complete(self) -> bool:
        """Whether every tile folded all of its contributing layers."""
        for tile, contributors in self._contributors.items():
            span = self._spans.get(tile)
            if span is None or span[0] != 0 \
                    or span[1] != len(contributors) - 1:
                return False
        return True

    def result(self) -> SubImage:
        if not self.complete():
            raise SchedulingError(
                "transparent tile reduction is incomplete: some tiles have "
                "unfolded contributing layers")
        return SubImage(color=self.color, depth=self.depth,
                        touched=self.touched)
