"""Binary-swap compositing (Ma et al.; paper section II-D background).

In each of log2(N) rounds, GPUs pair up at stride 2^r, split their current
working region in half, swap halves, and merge what they receive. After the
last round each GPU holds a fully composed 1/N of the image; a final gather
assembles the frame. Requires a power-of-two GPU count.

Functional model: we track, per GPU, the (lo, hi) flat-pixel region it is
responsible for and the merged data for that region, logging every transfer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import CompositionError
from ..geometry.primitives import BlendOp
from .compositor import SubImage, blend_merge, depth_merge
from .direct_send import Transfer


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def binary_swap(images: Sequence[SubImage],
                op: Optional[BlendOp] = None) -> tuple:
    """Compose via binary-swap. Returns ``(composed, transfers)``.

    For transparent operators, merge order follows GPU index order: the
    partner with the lower index always supplies the *front* operand, which
    preserves the ordered reduction under associativity.
    """
    n = len(images)
    if not _is_power_of_two(n):
        raise CompositionError(f"binary-swap needs 2^k GPUs, got {n}")
    height, width = images[0].shape
    num_pixels = height * width
    opaque = op is None or op is BlendOp.REPLACE

    def flat(img: SubImage) -> SubImage:
        return SubImage(color=img.color.reshape(1, num_pixels, 4).copy(),
                        depth=img.depth.reshape(1, num_pixels).copy(),
                        touched=img.touched.reshape(1, num_pixels).copy())

    working = [flat(img) for img in images]
    regions = [(0, num_pixels)] * n
    # Each GPU also remembers the *order rank* of the block of original
    # sub-images its working data summarizes; adjacency is maintained by
    # construction (partners differ only in one address bit).
    transfers: List[Transfer] = []

    rounds = n.bit_length() - 1
    for r in range(rounds):
        stride = 1 << r
        new_working = list(working)
        new_regions = list(regions)
        for gpu in range(n):
            partner = gpu ^ stride
            if partner < gpu:
                continue
            lo, hi = regions[gpu]
            mid = (lo + hi) // 2
            # gpu keeps [lo, mid), partner keeps [mid, hi); each sends the
            # half it gives up.
            transfers.append(Transfer(r, gpu, partner, hi - mid))
            transfers.append(Transfer(r, partner, gpu, mid - lo))
            front, back = working[gpu], working[partner]

            def piece(img: SubImage, a: int, b: int) -> SubImage:
                return SubImage(color=img.color[:, a:b], depth=img.depth[:, a:b],
                                touched=img.touched[:, a:b])

            if opaque:
                low_half = depth_merge(piece(front, lo, mid),
                                       piece(back, lo, mid))
                high_half = depth_merge(piece(front, mid, hi),
                                        piece(back, mid, hi))
            else:
                low_half = blend_merge(piece(front, lo, mid),
                                       piece(back, lo, mid), op)
                high_half = blend_merge(piece(front, mid, hi),
                                        piece(back, mid, hi), op)

            keep_front = _store(working[gpu], low_half, lo)
            keep_back = _store(working[partner], high_half, mid)
            new_working[gpu] = keep_front
            new_working[partner] = keep_back
            new_regions[gpu] = (lo, mid)
            new_regions[partner] = (mid, hi)
        working = new_working
        regions = new_regions

    # Final gather to GPU 0 (counted as one more round of transfers).
    out_color = np.empty((num_pixels, 4), dtype=np.float32)
    out_depth = np.empty(num_pixels, dtype=np.float32)
    out_touch = np.empty(num_pixels, dtype=bool)
    for gpu in range(n):
        lo, hi = regions[gpu]
        out_color[lo:hi] = working[gpu].color[0, lo:hi]
        out_depth[lo:hi] = working[gpu].depth[0, lo:hi]
        out_touch[lo:hi] = working[gpu].touched[0, lo:hi]
        if gpu != 0:
            transfers.append(Transfer(rounds, gpu, 0, hi - lo))

    composed = SubImage(color=out_color.reshape(height, width, 4),
                        depth=out_depth.reshape(height, width),
                        touched=out_touch.reshape(height, width))
    return composed, transfers


def _store(base: SubImage, piece: SubImage, lo: int) -> SubImage:
    """Copy ``piece`` into ``base`` starting at flat index ``lo``."""
    hi = lo + piece.color.shape[1]
    merged = SubImage(color=base.color.copy(), depth=base.depth.copy(),
                      touched=base.touched.copy())
    merged.color[:, lo:hi] = piece.color
    merged.depth[:, lo:hi] = piece.depth
    merged.touched[:, lo:hi] = piece.touched
    return merged
