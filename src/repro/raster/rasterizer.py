"""Triangle rasterization: screen-space triangles -> fragments.

A vectorized barycentric rasterizer with the conventional top-left fill rule,
so shared edges between triangles are covered exactly once (this matters for
transparent draws, where double-hitting an edge pixel would blend it twice).

Fragments for one triangle come back as parallel arrays (x, y, depth, rgba);
the functional pipeline applies depth testing, shading, and blending.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FragmentBatch:
    """Fragments produced by rasterizing one triangle."""

    xs: np.ndarray      # (N,) int32 pixel x
    ys: np.ndarray      # (N,) int32 pixel y
    depths: np.ndarray  # (N,) float32
    colors: np.ndarray  # (N, 4) float32 RGBA

    @property
    def count(self) -> int:
        return int(self.xs.shape[0])

    def select(self, mask: np.ndarray) -> "FragmentBatch":
        return FragmentBatch(self.xs[mask], self.ys[mask],
                             self.depths[mask], self.colors[mask])


_EMPTY = FragmentBatch(
    xs=np.empty(0, dtype=np.int32),
    ys=np.empty(0, dtype=np.int32),
    depths=np.empty(0, dtype=np.float32),
    colors=np.empty((0, 4), dtype=np.float32),
)

#: vertex permutation that flips triangle winding (hot path: one triangle
#: per call, so the index array must not be rebuilt per triangle)
_WINDING_SWAP = np.array([0, 2, 1])


def _edge(ax, ay, bx, by, px, py):
    """Signed edge function: >0 when (px,py) is left of a->b (y-down CCW)."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def rasterize_triangle(xy: np.ndarray, depth: np.ndarray, colors: np.ndarray,
                       width: int, height: int) -> FragmentBatch:
    """Rasterize one screen-space triangle.

    ``xy`` is (3, 2) pixel coordinates, ``depth`` (3,), ``colors`` (3, 4).
    Attributes are interpolated linearly in screen space. Returns the covered
    fragments clipped to the screen.
    """
    v0, v1, v2 = xy[0], xy[1], xy[2]
    area = _edge(v0[0], v0[1], v1[0], v1[1], v2[0], v2[1])
    if area == 0.0:
        return _EMPTY
    if area < 0.0:
        # Normalize winding so the inside test is uniform.
        v1, v2 = v2, v1
        depth = depth[_WINDING_SWAP]
        colors = colors[_WINDING_SWAP]
        area = -area

    x_min = max(int(np.floor(min(v0[0], v1[0], v2[0]))), 0)
    x_max = min(int(np.ceil(max(v0[0], v1[0], v2[0]))), width)
    y_min = max(int(np.floor(min(v0[1], v1[1], v2[1]))), 0)
    y_max = min(int(np.ceil(max(v0[1], v1[1], v2[1]))), height)
    if x_min >= x_max or y_min >= y_max:
        return _EMPTY

    px = np.arange(x_min, x_max, dtype=np.float32) + 0.5
    py = np.arange(y_min, y_max, dtype=np.float32) + 0.5
    grid_x, grid_y = np.meshgrid(px, py)

    w0 = _edge(v1[0], v1[1], v2[0], v2[1], grid_x, grid_y)
    w1 = _edge(v2[0], v2[1], v0[0], v0[1], grid_x, grid_y)
    w2 = _edge(v0[0], v0[1], v1[0], v1[1], grid_x, grid_y)

    # Top-left rule: edges that are "top" or "left" include w == 0 pixels.
    inside = ((w0 > 0) | ((w0 == 0) & _top_left(v1, v2))) \
        & ((w1 > 0) | ((w1 == 0) & _top_left(v2, v0))) \
        & ((w2 > 0) | ((w2 == 0) & _top_left(v0, v1)))
    if not inside.any():
        return _EMPTY

    b0 = w0[inside] / area
    b1 = w1[inside] / area
    b2 = w2[inside] / area

    ys_idx, xs_idx = np.nonzero(inside)
    xs = (xs_idx + x_min).astype(np.int32)
    ys = (ys_idx + y_min).astype(np.int32)
    frag_depth = (b0 * depth[0] + b1 * depth[1] + b2 * depth[2]) \
        .astype(np.float32)
    frag_color = (b0[:, None] * colors[0][None, :]
                  + b1[:, None] * colors[1][None, :]
                  + b2[:, None] * colors[2][None, :]).astype(np.float32)
    return FragmentBatch(xs, ys, frag_depth, frag_color)


def _top_left(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether edge a->b is a top or left edge (y grows downward)."""
    # Left edge: goes down. Top edge: horizontal and goes right.
    return bool(b[1] > a[1] or (b[1] == a[1] and b[0] < a[0]))


def estimate_coverage(xy: np.ndarray, width: int, height: int) -> float:
    """Cheap area-based fragment-count estimate for one triangle.

    Used by timing-only paths that do not need exact per-pixel coverage
    (e.g., GPUpd's projection phase cost model).
    """
    v0, v1, v2 = xy[0], xy[1], xy[2]
    area = abs(_edge(v0[0], v0[1], v1[0], v1[1], v2[0], v2[1])) * 0.5
    # Clamp to the screen bounding box overlap fraction.
    bbox = (max(min(v0[0], v1[0], v2[0]), 0), max(min(v0[1], v1[1], v2[1]), 0),
            min(max(v0[0], v1[0], v2[0]), width),
            min(max(v0[1], v1[1], v2[1]), height))
    if bbox[0] >= bbox[2] or bbox[1] >= bbox[3]:
        return 0.0
    full = ((max(v0[0], v1[0], v2[0]) - min(v0[0], v1[0], v2[0]))
            * (max(v0[1], v1[1], v2[1]) - min(v0[1], v1[1], v2[1])))
    if full == 0.0:
        return 0.0
    overlap = (bbox[2] - bbox[0]) * (bbox[3] - bbox[1])
    return float(area * overlap / full)
