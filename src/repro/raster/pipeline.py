"""The functional graphics pipeline: executes draw commands against surfaces.

This is the single-GPU rendering engine every SFR scheme builds on (paper
Fig 1(b)): geometry processing (transform, clip, cull), rasterization,
early/late depth-stencil testing, pixel shading, and blending into the bound
render target. It produces both pixels and the *counts* the timing model and
the paper's figures are built from (triangles processed, fragments generated,
fragments passing the depth test, fragments shaded).

``owner_mask`` restricts fragment processing to the pixels a GPU owns under
the SFR screen split; ``retained_cull_fraction`` artificially re-injects
depth-culled fragments for the Fig 16 sensitivity study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import PipelineError
from ..framebuffer.depth import depth_test
from ..framebuffer.framebuffer import SurfacePool
from ..geometry.clipping import clip_near_plane, frustum_cull_mask
from ..geometry.primitives import BlendOp, DrawCommand
from ..geometry.transform import (perspective_divide, to_screen,
                                  transform_positions)
from ..shading.shaders import ShaderLibrary
from ..composition.operators import blend
from .rasterizer import rasterize_triangle


@dataclass
class DrawMetrics:
    """Functional counts for one executed draw command."""

    draw_id: int = -1
    triangles_submitted: int = 0
    triangles_culled: int = 0
    triangles_rasterized: int = 0
    fragments_generated: int = 0
    early_z_tested: int = 0
    early_z_passed: int = 0
    late_tested: int = 0
    late_passed: int = 0
    fragments_shaded: int = 0
    pixels_written: int = 0
    #: optional per-owner-GPU attribution (filled when owner_map is given)
    generated_by_owner: Optional[np.ndarray] = None
    shaded_by_owner: Optional[np.ndarray] = None
    passed_by_owner: Optional[np.ndarray] = None

    @property
    def fragments_passed(self) -> int:
        """Fragments surviving any depth/stencil test (paper Fig 15)."""
        return self.early_z_passed + self.late_passed

    def merge(self, other: "DrawMetrics") -> None:
        for name in ("triangles_submitted", "triangles_culled",
                     "triangles_rasterized", "fragments_generated",
                     "early_z_tested", "early_z_passed", "late_tested",
                     "late_passed", "fragments_shaded", "pixels_written"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in ("generated_by_owner", "shaded_by_owner",
                     "passed_by_owner"):
            theirs = getattr(other, name)
            if theirs is None:
                continue
            mine = getattr(self, name)
            if mine is None:
                setattr(self, name, theirs.copy())
            else:
                mine += theirs


@dataclass
class GroupMetrics:
    """Accumulated :class:`DrawMetrics` over a composition group or frame."""

    totals: DrawMetrics = field(default_factory=DrawMetrics)
    draws: int = 0

    def add(self, metrics: DrawMetrics) -> None:
        self.totals.merge(metrics)
        self.draws += 1


class GraphicsPipeline:
    """Single-GPU functional renderer with SFR ownership masking."""

    def __init__(self, width: int, height: int,
                 shaders: Optional[ShaderLibrary] = None) -> None:
        if width <= 0 or height <= 0:
            raise PipelineError("pipeline viewport must be positive")
        self.width = width
        self.height = height
        self.shaders = shaders or ShaderLibrary(width, height)

    def execute_draw(self, draw: DrawCommand, surfaces: SurfacePool,
                     mvp: Optional[np.ndarray] = None,
                     owner_mask: Optional[np.ndarray] = None,
                     owner_map: Optional[np.ndarray] = None,
                     num_owners: int = 1,
                     touched: Optional[np.ndarray] = None,
                     retained_cull_fraction: float = 0.0,
                     rng: Optional[np.random.Generator] = None) -> DrawMetrics:
        """Run one draw command through the full pipeline.

        ``touched``, when given, is an (H, W) bool array updated in place
        with every pixel the draw wrote (used to build composition
        sub-images and traffic filters).

        ``owner_map`` (an (H, W) int array of owning GPU ids) enables
        per-owner fragment attribution: the returned metrics carry
        ``*_by_owner`` arrays of length ``num_owners``. This lets sort-first
        schemes (where every GPU sees the same depth history) run the
        functional pipeline once and split the counts by screen region.
        """
        metrics = DrawMetrics(draw_id=draw.draw_id,
                              triangles_submitted=draw.num_triangles)
        if owner_map is not None:
            metrics.generated_by_owner = np.zeros(num_owners, dtype=np.int64)
            metrics.shaded_by_owner = np.zeros(num_owners, dtype=np.int64)
            metrics.passed_by_owner = np.zeros(num_owners, dtype=np.int64)
        if draw.num_triangles == 0:
            return metrics

        # --- geometry stage -------------------------------------------------
        clip = transform_positions(
            draw.positions, mvp if mvp is not None else np.eye(4))
        colors = draw.colors
        if (clip[..., 2] < 0).any():
            clip, colors = clip_near_plane(clip, colors)
        if clip.shape[0] == 0:
            metrics.triangles_culled = metrics.triangles_submitted
            return metrics
        culled = frustum_cull_mask(clip)
        metrics.triangles_culled = int(culled.sum())
        clip, colors = clip[~culled], colors[~culled]
        if clip.shape[0] == 0:
            return metrics

        ndc = perspective_divide(clip)
        xy, depth = to_screen(ndc, self.width, self.height)

        # --- rasterization + fragment stage ----------------------------------
        state = draw.state
        target = surfaces.render_target(state.render_target)
        depth_buf = surfaces.depth_buffer(state.depth_buffer)
        shader = self.shaders.shader_for(draw.texture_id)
        retain = retained_cull_fraction
        if retain > 0.0 and rng is None:
            rng = np.random.default_rng(0)

        for tri in range(clip.shape[0]):
            frags = rasterize_triangle(xy[tri], depth[tri], colors[tri],
                                       self.width, self.height)
            if frags.count == 0:
                continue
            metrics.triangles_rasterized += 1
            if owner_mask is not None:
                frags = frags.select(owner_mask[frags.ys, frags.xs])
                if frags.count == 0:
                    continue
            metrics.fragments_generated += frags.count
            owners = (owner_map[frags.ys, frags.xs]
                      if owner_map is not None else None)
            if owners is not None:
                metrics.generated_by_owner += np.bincount(
                    owners, minlength=num_owners)

            current = depth_buf[frags.ys, frags.xs]
            if state.early_z:
                passed = depth_test(state.depth_func, frags.depths, current)
                metrics.early_z_tested += frags.count
                n_passed = int(passed.sum())
                metrics.early_z_passed += n_passed
                if owners is not None:
                    passed_counts = np.bincount(owners[passed],
                                                minlength=num_owners)
                    metrics.passed_by_owner += passed_counts
                    metrics.shaded_by_owner += passed_counts
                shaded_mask = passed
                if retain > 0.0:
                    # Fig 16: a fraction of culled fragments still get shaded
                    # (but never written), inflating fragment work.
                    failed = ~passed
                    keep = rng.random(frags.count) < retain
                    extra = int((failed & keep).sum())
                    metrics.fragments_shaded += extra
                survivors = frags.select(shaded_mask)
                if survivors.count == 0:
                    continue
                metrics.fragments_shaded += survivors.count
                shaded = shader.shade(survivors.xs, survivors.ys,
                                      survivors.colors)
                self._write(target, depth_buf, survivors, shaded, state,
                            metrics, touched)
            else:
                # Late Z: shade everything, then test.
                metrics.fragments_shaded += frags.count
                shaded = shader.shade(frags.xs, frags.ys, frags.colors)
                passed = depth_test(state.depth_func, frags.depths, current)
                metrics.late_tested += frags.count
                n_passed = int(passed.sum())
                metrics.late_passed += n_passed
                if owners is not None:
                    metrics.shaded_by_owner += np.bincount(
                        owners, minlength=num_owners)
                    metrics.passed_by_owner += np.bincount(
                        owners[passed], minlength=num_owners)
                survivors = frags.select(passed)
                if survivors.count == 0:
                    continue
                self._write(target, depth_buf, survivors, shaded[passed],
                            state, metrics, touched)
        return metrics

    def _write(self, target, depth_buf, frags, shaded_colors, state, metrics,
               touched) -> None:
        """Blend surviving fragments into the render target."""
        ys, xs = frags.ys, frags.xs
        if state.blend_op is BlendOp.REPLACE:
            target.color[ys, xs] = shaded_colors
        else:
            target.color[ys, xs] = blend(
                state.blend_op, target.color[ys, xs], shaded_colors)
        if state.depth_write:
            depth_buf[ys, xs] = frags.depths
        if touched is not None:
            touched[ys, xs] = True
        metrics.pixels_written += frags.count
