"""The functional graphics pipeline: executes draw commands against surfaces.

This is the single-GPU rendering engine every SFR scheme builds on (paper
Fig 1(b)). Since the phase split it is a thin composition of the two
phases in :mod:`repro.render.phases` — ``geometry_phase`` (transform,
clip, cull, tile binning; assignment-independent and cacheable) and
``fragment_phase`` (rasterization, depth test, shading, blending; live).
Scheme code should render through :class:`repro.render.RenderService`,
which adds the content-addressed artifact store on top; this class
remains the store-free primitive for tests, tools and one-off renders.

:class:`DrawMetrics` and :class:`GroupMetrics` moved to
:mod:`repro.render.artifact` and are re-exported here unchanged.

``owner_mask`` restricts fragment processing to the pixels a GPU owns under
the SFR screen split; ``retained_cull_fraction`` artificially re-injects
depth-culled fragments for the Fig 16 sensitivity study.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import PipelineError
from ..framebuffer.framebuffer import SurfacePool
from ..geometry.primitives import DrawCommand
from ..render.artifact import DrawArtifact, DrawMetrics, GroupMetrics
from ..shading.shaders import ShaderLibrary

__all__ = ["DrawMetrics", "GroupMetrics", "GraphicsPipeline"]


class GraphicsPipeline:
    """Single-GPU functional renderer with SFR ownership masking."""

    def __init__(self, width: int, height: int,
                 shaders: Optional[ShaderLibrary] = None) -> None:
        if width <= 0 or height <= 0:
            raise PipelineError("pipeline viewport must be positive")
        self.width = width
        self.height = height
        self.shaders = shaders or ShaderLibrary(width, height)

    def execute_draw(self, draw: DrawCommand, surfaces: SurfacePool,
                     mvp: Optional[np.ndarray] = None,
                     owner_mask: Optional[np.ndarray] = None,
                     owner_map: Optional[np.ndarray] = None,
                     num_owners: int = 1,
                     touched: Optional[np.ndarray] = None,
                     retained_cull_fraction: float = 0.0,
                     rng: Optional[np.random.Generator] = None,
                     artifact: Optional[DrawArtifact] = None) -> DrawMetrics:
        """Run one draw command through both phases.

        ``artifact``, when given, skips the geometry phase and consumes
        the supplied (cached) output instead; the caller is responsible
        for it matching ``draw``/``mvp`` and this viewport.

        See :func:`repro.render.phases.fragment_phase` for the meaning
        of ``touched``, ``owner_mask`` and ``owner_map``.
        """
        # Imported lazily: repro.render.phases consumes this package's
        # rasterizer, so a module-level import would be circular when
        # repro.render initializes first.
        from ..render.phases import fragment_phase, geometry_phase
        if artifact is None:
            artifact = geometry_phase(draw, mvp, self.width, self.height)
        return fragment_phase(
            artifact, draw, surfaces, self.shaders, self.width, self.height,
            owner_mask=owner_mask, owner_map=owner_map,
            num_owners=num_owners, touched=touched,
            retained_cull_fraction=retained_cull_fraction, rng=rng)
