"""Screen tiling and tile-to-GPU assignment (the SFR screen split).

The paper's SFR implementation "splits each frame by interleaving 64x64 pixel
tiles to different GPUs" (section V). :class:`TileGrid` owns that mapping and
the derived per-GPU pixel masks used both functionally (which fragments a GPU
keeps) and for traffic accounting (which sub-image regions must travel to
which GPU during composition).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigError


class TileGrid:
    """A width x height screen partitioned into square tiles.

    GPU ownership interleaves tiles in raster order:
    ``owner(tx, ty) = (ty * tiles_x + tx) mod num_gpus``, which is the
    checkerboard distribution SLI-style SFR uses to balance fragment load.
    """

    def __init__(self, width: int, height: int, tile_size: int = 64) -> None:
        if width <= 0 or height <= 0 or tile_size <= 0:
            raise ConfigError("tile grid dimensions must be positive")
        self.width = width
        self.height = height
        self.tile_size = tile_size
        self.tiles_x = (width + tile_size - 1) // tile_size
        self.tiles_y = (height + tile_size - 1) // tile_size

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile_of_pixel(self, x: int, y: int) -> Tuple[int, int]:
        return x // self.tile_size, y // self.tile_size

    def tile_index(self, tx: int, ty: int) -> int:
        return ty * self.tiles_x + tx

    def owner_of_tile(self, tx: int, ty: int, num_gpus: int) -> int:
        return self.tile_index(tx, ty) % num_gpus

    def owner_map(self, num_gpus: int) -> np.ndarray:
        """(H, W) int array: owning GPU of every pixel."""
        if num_gpus <= 0:
            raise ConfigError("num_gpus must be positive")
        tile_owners = (np.arange(self.num_tiles, dtype=np.int32)
                       .reshape(self.tiles_y, self.tiles_x) % num_gpus)
        expanded = np.repeat(np.repeat(tile_owners, self.tile_size, axis=0),
                             self.tile_size, axis=1)
        return expanded[:self.height, :self.width]

    def gpu_pixel_mask(self, gpu: int, num_gpus: int) -> np.ndarray:
        """(H, W) boolean mask of the pixels owned by ``gpu``."""
        return self.owner_map(num_gpus) == gpu

    def pixels_per_gpu(self, num_gpus: int) -> List[int]:
        owner = self.owner_map(num_gpus)
        return [int((owner == g).sum()) for g in range(num_gpus)]

    def tile_bounds(self, tx: int, ty: int) -> Tuple[int, int, int, int]:
        """Pixel bounds (x0, y0, x1, y1), half-open, clamped to the screen."""
        x0 = tx * self.tile_size
        y0 = ty * self.tile_size
        return (x0, y0,
                min(x0 + self.tile_size, self.width),
                min(y0 + self.tile_size, self.height))

    def tiles_of_gpu(self, gpu: int, num_gpus: int) -> List[Tuple[int, int]]:
        tiles = []
        for ty in range(self.tiles_y):
            for tx in range(self.tiles_x):
                if self.owner_of_tile(tx, ty, num_gpus) == gpu:
                    tiles.append((tx, ty))
        return tiles

    def touched_tiles(self, touched_pixels: np.ndarray) -> np.ndarray:
        """(tiles_y, tiles_x) bool: tiles containing any touched pixel.

        The paper filters out "screen tiles that are not rendered by any draw
        commands" from composition traffic (section VI-C); this computes that
        filter from a touched-pixel mask.
        """
        if touched_pixels.shape != (self.height, self.width):
            raise ConfigError("touched mask must match the screen")
        pad_y = self.tiles_y * self.tile_size - self.height
        pad_x = self.tiles_x * self.tile_size - self.width
        padded = np.pad(touched_pixels, ((0, pad_y), (0, pad_x)))
        blocks = padded.reshape(self.tiles_y, self.tile_size,
                                self.tiles_x, self.tile_size)
        return blocks.any(axis=(1, 3))

    def region_sizes_to_gpus(self, touched_pixels: np.ndarray,
                             num_gpus: int) -> Dict[int, int]:
        """Pixels of a sub-image destined for each GPU, tile-filtered.

        Whole touched tiles are counted (transfers happen at tile
        granularity), assigned to the tile's owner.
        """
        touched = self.touched_tiles(touched_pixels)
        sizes: Dict[int, int] = {g: 0 for g in range(num_gpus)}
        for ty in range(self.tiles_y):
            for tx in range(self.tiles_x):
                if not touched[ty, tx]:
                    continue
                x0, y0, x1, y1 = self.tile_bounds(tx, ty)
                owner = self.owner_of_tile(tx, ty, num_gpus)
                sizes[owner] += (x1 - x0) * (y1 - y0)
        return sizes
