"""Rasterization substrate: tiling, the rasterizer, the functional pipeline."""

from .pipeline import DrawMetrics, GraphicsPipeline, GroupMetrics
from .rasterizer import FragmentBatch, estimate_coverage, rasterize_triangle
from .tiles import TileGrid

__all__ = [
    "DrawMetrics",
    "FragmentBatch",
    "GraphicsPipeline",
    "GroupMetrics",
    "TileGrid",
    "estimate_coverage",
    "rasterize_triangle",
]
