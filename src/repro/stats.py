"""Per-run statistics: cycle accounting by pipeline stage and traffic counters.

The paper's figures slice execution time along two axes:

- by pipeline *stage* (Fig 2, Fig 4, Fig 14): geometry processing,
  rasterization + fragment processing, primitive projection, primitive
  distribution, image composition, and synchronization stalls;
- by *traffic* (Fig 17, section VI-D): bytes moved for composition, primitive
  distribution, buffer synchronization, and scheduler updates.

:class:`RunStats` accumulates both, per GPU, and provides the aggregations the
report layer prints.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

# Canonical stage names, in the order the paper's breakdown figures stack them.
STAGE_GEOMETRY = "geometry"
STAGE_FRAGMENT = "fragment"
STAGE_PROJECTION = "projection"          # GPUpd phase 1
STAGE_DISTRIBUTION = "distribution"      # GPUpd phase 2
STAGE_COMPOSITION = "composition"        # CHOPIN parallel composition
STAGE_SYNC = "sync"                      # RT/depth-buffer broadcasts, barriers

ALL_STAGES = (
    STAGE_GEOMETRY,
    STAGE_FRAGMENT,
    STAGE_PROJECTION,
    STAGE_DISTRIBUTION,
    STAGE_COMPOSITION,
    STAGE_SYNC,
)

# Traffic categories.
TRAFFIC_COMPOSITION = "composition"
TRAFFIC_PRIMITIVES = "primitives"
TRAFFIC_SYNC = "sync"
TRAFFIC_SCHEDULER = "scheduler"


@dataclass
class GPUStats:
    """Counters for a single GPU."""

    stage_cycles: Dict[str, float] = field(
        default_factory=lambda: defaultdict(float))
    traffic_bytes: Dict[str, float] = field(
        default_factory=lambda: defaultdict(float))
    triangles_processed: int = 0
    fragments_generated: int = 0
    fragments_early_z_tested: int = 0
    fragments_passed_early_z: int = 0
    fragments_passed_late: int = 0
    fragments_shaded: int = 0
    draws_executed: int = 0
    busy_until: float = 0.0

    @property
    def total_cycles(self) -> float:
        return sum(self.stage_cycles.values())

    @property
    def fragments_passed(self) -> int:
        """Fragments that survived any depth/stencil test (Fig 15)."""
        return self.fragments_passed_early_z + self.fragments_passed_late


@dataclass
class RunStats:
    """Statistics for a full simulated run on an N-GPU system."""

    num_gpus: int
    gpus: List[GPUStats] = field(default_factory=list)
    #: end-to-end frame time in cycles (the critical path, not the sum)
    frame_cycles: float = 0.0
    composition_groups: int = 0
    accelerated_groups: int = 0
    #: per-draw (draw_index, triangles, geometry_cycles, total_cycles) samples,
    #: recorded when tracing is on (Fig 9)
    draw_samples: List[tuple] = field(default_factory=list)

    # -- fault injection / degraded mode (see repro.faults) ----------------
    #: link-level retransmissions caused by injected drop/corrupt errors
    link_retries: int = 0
    #: payload bytes streamed again due to retries (not counted as traffic)
    retransmitted_bytes: float = 0.0
    #: cycles links spent in error detection + exponential backoff
    backoff_cycles: float = 0.0
    dropped_transfers: int = 0
    corrupted_transfers: int = 0
    #: GPUs that fail-stopped during this run
    failed_gpus: List[int] = field(default_factory=list)
    #: draw commands re-rendered on survivors after a fail-stop
    redistributed_draws: int = 0
    #: engine cycles of re-rendered (recovery) work across survivors
    recovery_cycles: float = 0.0
    #: fault-free frame time, recorded when a degraded run was compared
    baseline_frame_cycles: float = 0.0
    #: position of this frame in a multi-frame soak run (0 outside soak)
    frame_index: int = 0
    #: failure-trace events that fell inside this frame's window (soak runs)
    fault_events: int = 0

    # -- harness supervision (see repro.harness.engine) --------------------
    #: attempts the job that produced this run consumed (1 = first try)
    job_attempts: int = 0
    #: attempts that were retried after a transient failure
    job_retries: int = 0
    #: attempts killed for exceeding the wall-clock budget
    job_timeouts: int = 0
    #: True when this result was replayed from a run journal, not simulated
    job_resumed: bool = False

    # -- race-sanitizer coverage (see repro.analysis.sanitizer) ------------
    #: shared-state accesses the race sanitizer recorded during this run
    #: (0 when the run was not sanitized — coverage, not a conflict count)
    sanitizer_accesses: int = 0

    # -- artifact store usage (see repro.render.store) ---------------------
    #: store lookups this run served from cache (geometry artifacts,
    #: reference passes, functional preps) / recomputed / evicted / read
    #: back from the disk tier; all 0 when the result itself was a hit
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_evictions: int = 0
    artifact_disk_loads: int = 0
    #: disk-spill files rejected by the integrity check during this run
    #: (each one turned a would-be disk hit into a recompute)
    artifact_disk_corrupt: int = 0

    # -- frame serving (see repro.serve) ------------------------------------
    #: request accounting for a serve run: submissions, admissions, refusals
    #: at the door (queue-full rejects, budget throttles), post-admission
    #: drops (sheds), and requests that were re-queued after a GPU failure.
    #: All 0 for ordinary batch runs.
    serve_requests: int = 0
    serve_admitted: int = 0
    serve_completed: int = 0
    serve_rejected: int = 0
    serve_throttled: int = 0
    serve_shed: int = 0
    serve_requeued: int = 0
    #: batches dispatched to render groups
    serve_batches: int = 0
    #: peak admission-queue depth observed
    serve_queue_peak: int = 0
    #: completed requests that finished after their deadline
    serve_deadline_misses: int = 0
    #: degraded-mode events (watchdog trips, post-run stalled sweeps)
    serve_degraded_events: int = 0
    #: request latency percentiles over completed requests (virtual cycles)
    serve_latency_p50_cycles: float = 0.0
    serve_latency_p95_cycles: float = 0.0
    serve_latency_p99_cycles: float = 0.0
    #: composition cycles a serve batch overlapped with the next request's
    #: geometry (cross-request group pipelining) / batches that overlapped
    serve_overlap_cycles: float = 0.0
    serve_overlapped_batches: int = 0

    # -- cross-group pipelining (see repro.sfr.chopin / repro.sfr.dfb) ------
    #: configured in-flight group window (0 = unbounded)
    pipeline_depth: int = 0
    #: cycles GPUs spent stalled at a full pipeline window before they
    #: could start rendering the next group
    pipeline_stall_cycles: float = 0.0
    #: composition cycles that ran concurrently with later groups'
    #: rendering on the same GPU (the overlap pipelining buys)
    comp_overlap_cycles: float = 0.0
    #: total GPU-idle cycles over the frame: num_gpus * frame_cycles minus
    #: busy cycles across all stages
    idle_cycles: float = 0.0
    #: high-water mark of concurrently in-flight composition groups in the
    #: (windowed) image composition scheduler table
    scheduler_groups_peak: int = 0

    def __post_init__(self) -> None:
        if not self.gpus:
            self.gpus = [GPUStats() for _ in range(self.num_gpus)]

    # -- accumulation ------------------------------------------------------

    def add_cycles(self, gpu: int, stage: str, cycles: float) -> None:
        self.gpus[gpu].stage_cycles[stage] += cycles

    def add_traffic(self, gpu: int, category: str, num_bytes: float) -> None:
        self.gpus[gpu].traffic_bytes[category] += num_bytes

    # -- aggregation -------------------------------------------------------

    def stage_cycle_totals(self) -> Dict[str, float]:
        """Sum of cycles spent in each stage across all GPUs."""
        totals: Dict[str, float] = defaultdict(float)
        for gpu in self.gpus:
            for stage, cycles in gpu.stage_cycles.items():
                totals[stage] += cycles
        return dict(totals)

    def stage_fraction(self, stage: str) -> float:
        """Fraction of all busy cycles spent in ``stage`` (Fig 2, Fig 4)."""
        totals = self.stage_cycle_totals()
        busy = sum(totals.values())
        if busy == 0:
            return 0.0
        return totals.get(stage, 0.0) / busy

    def traffic_total(self, category: str | None = None) -> float:
        """Total bytes moved, optionally restricted to one category."""
        total = 0.0
        for gpu in self.gpus:
            if category is None:
                total += sum(gpu.traffic_bytes.values())
            else:
                total += gpu.traffic_bytes.get(category, 0.0)
        return total

    @property
    def recovery_overhead_cycles(self) -> float:
        """Extra frame cycles paid for fail-stop recovery (vs. fault-free)."""
        if self.baseline_frame_cycles <= 0:
            return 0.0
        return self.frame_cycles - self.baseline_frame_cycles

    @property
    def had_faults(self) -> bool:
        return bool(self.link_retries or self.failed_gpus
                    or self.redistributed_draws)

    def fault_summary(self) -> Dict[str, float]:
        """Flat counters for reports/exports (empty-ish when fault-free)."""
        return {
            "link_retries": self.link_retries,
            "dropped_transfers": self.dropped_transfers,
            "corrupted_transfers": self.corrupted_transfers,
            "retransmitted_bytes": self.retransmitted_bytes,
            "backoff_cycles": self.backoff_cycles,
            "failed_gpus": len(self.failed_gpus),
            "redistributed_draws": self.redistributed_draws,
            "recovery_cycles": self.recovery_cycles,
            "recovery_overhead_cycles": self.recovery_overhead_cycles,
            "frame_index": self.frame_index,
            "fault_events": self.fault_events,
        }

    def engine_summary(self) -> Dict[str, object]:
        """Supervision counters for reports/exports (zero when unsupervised)."""
        return {
            "job_attempts": self.job_attempts,
            "job_retries": self.job_retries,
            "job_timeouts": self.job_timeouts,
            "job_resumed": self.job_resumed,
            "sanitizer_accesses": self.sanitizer_accesses,
        }

    def artifact_summary(self) -> Dict[str, int]:
        """Artifact-store counters for reports/exports (zero on a hit)."""
        return {
            "artifact_hits": self.artifact_hits,
            "artifact_misses": self.artifact_misses,
            "artifact_evictions": self.artifact_evictions,
            "artifact_disk_loads": self.artifact_disk_loads,
            "artifact_disk_corrupt": self.artifact_disk_corrupt,
        }

    def serve_summary(self) -> Dict[str, object]:
        """Frame-serving counters for reports/exports (zero outside serve)."""
        return {
            "serve_requests": self.serve_requests,
            "serve_admitted": self.serve_admitted,
            "serve_completed": self.serve_completed,
            "serve_rejected": self.serve_rejected,
            "serve_throttled": self.serve_throttled,
            "serve_shed": self.serve_shed,
            "serve_requeued": self.serve_requeued,
            "serve_batches": self.serve_batches,
            "serve_queue_peak": self.serve_queue_peak,
            "serve_deadline_misses": self.serve_deadline_misses,
            "serve_degraded_events": self.serve_degraded_events,
            "serve_latency_p50_cycles": self.serve_latency_p50_cycles,
            "serve_latency_p95_cycles": self.serve_latency_p95_cycles,
            "serve_latency_p99_cycles": self.serve_latency_p99_cycles,
            "serve_overlap_cycles": self.serve_overlap_cycles,
            "serve_overlapped_batches": self.serve_overlapped_batches,
        }

    def pipeline_summary(self) -> Dict[str, object]:
        """Cross-group pipelining counters for reports/exports."""
        return {
            "pipeline_depth": self.pipeline_depth,
            "pipeline_stall_cycles": self.pipeline_stall_cycles,
            "comp_overlap_cycles": self.comp_overlap_cycles,
            "idle_cycles": self.idle_cycles,
            "scheduler_groups_peak": self.scheduler_groups_peak,
        }

    # -- serialization (run journal, see repro.harness.engine) -------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (everything except draw samples).

        Floats survive a ``json`` round trip bit-exactly, so a journaled
        run replays with identical cycle counts.
        """
        return {
            "num_gpus": self.num_gpus,
            "frame_cycles": self.frame_cycles,
            "composition_groups": self.composition_groups,
            "accelerated_groups": self.accelerated_groups,
            "link_retries": self.link_retries,
            "retransmitted_bytes": self.retransmitted_bytes,
            "backoff_cycles": self.backoff_cycles,
            "dropped_transfers": self.dropped_transfers,
            "corrupted_transfers": self.corrupted_transfers,
            "failed_gpus": list(self.failed_gpus),
            "redistributed_draws": self.redistributed_draws,
            "recovery_cycles": self.recovery_cycles,
            "baseline_frame_cycles": self.baseline_frame_cycles,
            "frame_index": self.frame_index,
            "fault_events": self.fault_events,
            "sanitizer_accesses": self.sanitizer_accesses,
            "artifact_hits": self.artifact_hits,
            "artifact_misses": self.artifact_misses,
            "artifact_evictions": self.artifact_evictions,
            "artifact_disk_loads": self.artifact_disk_loads,
            "artifact_disk_corrupt": self.artifact_disk_corrupt,
            "serve_requests": self.serve_requests,
            "serve_admitted": self.serve_admitted,
            "serve_completed": self.serve_completed,
            "serve_rejected": self.serve_rejected,
            "serve_throttled": self.serve_throttled,
            "serve_shed": self.serve_shed,
            "serve_requeued": self.serve_requeued,
            "serve_batches": self.serve_batches,
            "serve_queue_peak": self.serve_queue_peak,
            "serve_deadline_misses": self.serve_deadline_misses,
            "serve_degraded_events": self.serve_degraded_events,
            "serve_latency_p50_cycles": self.serve_latency_p50_cycles,
            "serve_latency_p95_cycles": self.serve_latency_p95_cycles,
            "serve_latency_p99_cycles": self.serve_latency_p99_cycles,
            "serve_overlap_cycles": self.serve_overlap_cycles,
            "serve_overlapped_batches": self.serve_overlapped_batches,
            "pipeline_depth": self.pipeline_depth,
            "pipeline_stall_cycles": self.pipeline_stall_cycles,
            "comp_overlap_cycles": self.comp_overlap_cycles,
            "idle_cycles": self.idle_cycles,
            "scheduler_groups_peak": self.scheduler_groups_peak,
            "gpus": [{
                "stage_cycles": dict(g.stage_cycles),
                "traffic_bytes": dict(g.traffic_bytes),
                "triangles_processed": g.triangles_processed,
                "fragments_generated": g.fragments_generated,
                "fragments_early_z_tested": g.fragments_early_z_tested,
                "fragments_passed_early_z": g.fragments_passed_early_z,
                "fragments_passed_late": g.fragments_passed_late,
                "fragments_shaded": g.fragments_shaded,
                "draws_executed": g.draws_executed,
                "busy_until": g.busy_until,
            } for g in self.gpus],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunStats":
        """Rebuild a :meth:`to_dict` snapshot (draw samples are not kept)."""
        stats = cls(num_gpus=int(data["num_gpus"]),
                    frame_cycles=float(data["frame_cycles"]),
                    composition_groups=int(data["composition_groups"]),
                    accelerated_groups=int(data["accelerated_groups"]),
                    link_retries=int(data["link_retries"]),
                    retransmitted_bytes=float(data["retransmitted_bytes"]),
                    backoff_cycles=float(data["backoff_cycles"]),
                    dropped_transfers=int(data["dropped_transfers"]),
                    corrupted_transfers=int(data["corrupted_transfers"]),
                    failed_gpus=[int(g) for g in data["failed_gpus"]],
                    redistributed_draws=int(data["redistributed_draws"]),
                    recovery_cycles=float(data["recovery_cycles"]),
                    baseline_frame_cycles=float(
                        data["baseline_frame_cycles"]),
                    # absent in journals written before these fields existed
                    frame_index=int(data.get("frame_index", 0)),
                    fault_events=int(data.get("fault_events", 0)),
                    sanitizer_accesses=int(
                        data.get("sanitizer_accesses", 0)),
                    artifact_hits=int(data.get("artifact_hits", 0)),
                    artifact_misses=int(data.get("artifact_misses", 0)),
                    artifact_evictions=int(
                        data.get("artifact_evictions", 0)),
                    artifact_disk_loads=int(
                        data.get("artifact_disk_loads", 0)),
                    artifact_disk_corrupt=int(
                        data.get("artifact_disk_corrupt", 0)),
                    serve_requests=int(data.get("serve_requests", 0)),
                    serve_admitted=int(data.get("serve_admitted", 0)),
                    serve_completed=int(data.get("serve_completed", 0)),
                    serve_rejected=int(data.get("serve_rejected", 0)),
                    serve_throttled=int(data.get("serve_throttled", 0)),
                    serve_shed=int(data.get("serve_shed", 0)),
                    serve_requeued=int(data.get("serve_requeued", 0)),
                    serve_batches=int(data.get("serve_batches", 0)),
                    serve_queue_peak=int(data.get("serve_queue_peak", 0)),
                    serve_deadline_misses=int(
                        data.get("serve_deadline_misses", 0)),
                    serve_degraded_events=int(
                        data.get("serve_degraded_events", 0)),
                    serve_latency_p50_cycles=float(
                        data.get("serve_latency_p50_cycles", 0.0)),
                    serve_latency_p95_cycles=float(
                        data.get("serve_latency_p95_cycles", 0.0)),
                    serve_latency_p99_cycles=float(
                        data.get("serve_latency_p99_cycles", 0.0)),
                    serve_overlap_cycles=float(
                        data.get("serve_overlap_cycles", 0.0)),
                    serve_overlapped_batches=int(
                        data.get("serve_overlapped_batches", 0)),
                    pipeline_depth=int(data.get("pipeline_depth", 0)),
                    pipeline_stall_cycles=float(
                        data.get("pipeline_stall_cycles", 0.0)),
                    comp_overlap_cycles=float(
                        data.get("comp_overlap_cycles", 0.0)),
                    idle_cycles=float(data.get("idle_cycles", 0.0)),
                    scheduler_groups_peak=int(
                        data.get("scheduler_groups_peak", 0)))
        stats.gpus = []
        for entry in data["gpus"]:
            gpu = GPUStats(
                triangles_processed=int(entry["triangles_processed"]),
                fragments_generated=int(entry["fragments_generated"]),
                fragments_early_z_tested=int(
                    entry["fragments_early_z_tested"]),
                fragments_passed_early_z=int(
                    entry["fragments_passed_early_z"]),
                fragments_passed_late=int(entry["fragments_passed_late"]),
                fragments_shaded=int(entry["fragments_shaded"]),
                draws_executed=int(entry["draws_executed"]),
                busy_until=float(entry["busy_until"]))
            gpu.stage_cycles.update(entry["stage_cycles"])
            gpu.traffic_bytes.update(entry["traffic_bytes"])
            stats.gpus.append(gpu)
        return stats

    @property
    def total_fragments_passed(self) -> int:
        return sum(g.fragments_passed for g in self.gpus)

    @property
    def total_fragments_shaded(self) -> int:
        return sum(g.fragments_shaded for g in self.gpus)

    @property
    def total_triangles(self) -> int:
        return sum(g.triangles_processed for g in self.gpus)


def speedup(baseline: RunStats, candidate: RunStats) -> float:
    """Performance of ``candidate`` relative to ``baseline`` (higher=faster)."""
    if candidate.frame_cycles == 0:
        raise ZeroDivisionError("candidate run has zero frame cycles")
    return baseline.frame_cycles / candidate.frame_cycles


def gmean(values: Iterable[float]) -> float:
    """Geometric mean, as used by the paper's summary columns."""
    vals = list(values)
    if not vals:
        raise ValueError("gmean of empty sequence")
    product = 1.0
    for v in vals:
        if v <= 0:
            raise ValueError("gmean requires positive values")
        product *= v
    return product ** (1.0 / len(vals))


def normalize(results: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalize a {name: cycles} mapping to speedups over ``baseline_key``."""
    base = results[baseline_key]
    return {name: base / cycles for name, cycles in results.items()}
