"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation. Each returns plain
dict/list data that :mod:`repro.harness.report` renders as the same rows or
series the paper plots. All functions accept a trace ``scale`` and default to
the full Table III suite at ``tiny`` scale (see DESIGN.md section 6 for the
scaling argument).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..config import TABLE2, SystemConfig
from ..core import (composition_scheduler_size_bytes,
                    composition_scheduler_traffic_bytes,
                    draw_scheduler_size_bytes, draw_scheduler_traffic_bytes,
                    plan_frame, split_into_groups, summarize_plan)
from ..sfr.base import reference_pass
from ..stats import (STAGE_COMPOSITION, STAGE_DISTRIBUTION, STAGE_FRAGMENT,
                     STAGE_GEOMETRY, STAGE_PROJECTION, STAGE_SYNC,
                     TRAFFIC_COMPOSITION, gmean)
from ..composition import default_factorization
from ..errors import ConfigError
from ..traces import (BENCHMARK_NAMES, TABLE3, load_benchmark, load_stress,
                      scale_for)
from .runner import MAIN_SCHEMES, make_setup, run, run_benchmark

Benchmarks = Sequence[str]


# --------------------------------------------------------------------- tables

def table2_config(config: SystemConfig = TABLE2) -> Dict[str, str]:
    """The simulated architecture configuration (paper Table II)."""
    link = config.link
    return {
        "GPU frequency": f"{config.gpu.frequency_hz / 1e9:g} GHz",
        "Number of GPUs": str(config.num_gpus),
        "Number of SMs": (f"{config.num_gpus * config.gpu.num_sms} "
                          f"({config.gpu.num_sms} per GPU)"),
        "Number of ROPs": (f"{config.num_gpus * config.gpu.num_rops} "
                           f"({config.gpu.num_rops} per GPU)"),
        "SM configuration": (f"{config.gpu.shader_cores_per_sm} shader cores"
                             f", {config.gpu.texture_units_per_sm} TEX"),
        "Composition group threshold": str(config.composition_threshold),
        "Inter-GPU bandwidth": f"{link.bandwidth_gb_per_s:g} GB/s",
        "Inter-GPU latency": f"{link.latency_cycles} cycles",
    }


def table3_benchmarks(scale: str = "tiny") -> List[Dict[str, object]]:
    """Benchmark suite statistics (paper Table III), at paper and run scale."""
    rows = []
    for name in BENCHMARK_NAMES:
        spec = TABLE3[name]
        trace = load_benchmark(name, scale)
        summary = trace.summary()
        rows.append({
            "benchmark": name,
            "paper_resolution": f"{spec.width} x {spec.height}",
            "paper_draws": spec.num_draws,
            "paper_triangles": spec.num_triangles,
            "run_resolution": summary["resolution"],
            "run_draws": summary["draws"],
            "run_triangles": summary["triangles"],
        })
    return rows


# -------------------------------------------------------------- motivation

def fig2_geometry_share(scale: str = "tiny",
                        benchmarks: Benchmarks = BENCHMARK_NAMES,
                        gpu_counts: Sequence[int] = (1, 2, 4, 8),
                        ) -> Dict[str, Dict[int, float]]:
    """Fraction of busy cycles spent in geometry processing, conventional
    SFR (primitive duplication), per GPU count."""
    shares: Dict[str, Dict[int, float]] = {}
    for bench in benchmarks:
        shares[bench] = {}
        for n in gpu_counts:
            setup = make_setup(scale, num_gpus=n)
            result = run_benchmark("duplication", bench, setup)
            shares[bench][n] = result.stats.stage_fraction(STAGE_GEOMETRY)
    return shares


def fig4_gpupd_overheads(scale: str = "tiny",
                         benchmarks: Benchmarks = BENCHMARK_NAMES,
                         gpu_counts: Sequence[int] = (2, 4, 8),
                         ) -> Dict[str, Dict[int, Dict[str, float]]]:
    """GPUpd's extra-stage share of busy cycles (projection, distribution)."""
    overheads: Dict[str, Dict[int, Dict[str, float]]] = {}
    for bench in benchmarks:
        overheads[bench] = {}
        for n in gpu_counts:
            setup = make_setup(scale, num_gpus=n)
            result = run_benchmark("gpupd", bench, setup)
            overheads[bench][n] = {
                "projection": result.stats.stage_fraction(STAGE_PROJECTION),
                "distribution": result.stats.stage_fraction(
                    STAGE_DISTRIBUTION),
            }
    return overheads


def fig5_ideal_speedup(scale: str = "tiny",
                       benchmarks: Benchmarks = BENCHMARK_NAMES,
                       ) -> Dict[str, Dict[str, float]]:
    """Potential of parallel composition: ideal GPUpd vs ideal CHOPIN."""
    return _speedup_table(scale, benchmarks,
                          ("gpupd", "gpupd-ideal", "chopin-ideal"))


def fig8_round_robin(scale: str = "tiny",
                     benchmarks: Benchmarks = BENCHMARK_NAMES,
                     ) -> Dict[str, Dict[str, float]]:
    """Round-robin draw scheduling vs GPUpd (load-imbalance strawman)."""
    return _speedup_table(scale, benchmarks, ("gpupd", "chopin-rr"))


def fig9_triangle_rate(scale: str = "tiny", benchmark: str = "cod2",
                       ) -> List[Dict[str, float]]:
    """Per-draw triangle rate: geometry stage vs whole pipeline (cod2).

    The correlation between the two series is the justification for using
    remaining geometry-stage triangles as the scheduler's load estimate.
    """
    setup = make_setup(scale, num_gpus=1)
    trace = load_benchmark(benchmark, scale)
    prep = reference_pass(trace, setup.config)
    rows = []
    for draw, metrics in zip(trace.frame.draws, prep.metrics):
        triangles = draw.num_triangles
        if triangles == 0:
            continue
        geo = setup.costs.geometry_cycles(triangles, draw.vertex_cost)
        frag = setup.costs.fragment_cycles(
            metrics.triangles_rasterized, metrics.fragments_shaded,
            draw.pixel_cost)
        rows.append({
            "draw": draw.draw_id,
            "triangles": triangles,
            "geometry_rate": geo / triangles,
            "pipeline_rate": (geo + frag) / triangles,
        })
    return rows


def fig9_correlation(scale: str = "tiny", benchmark: str = "cod2") -> float:
    """Pearson correlation of the two Fig 9 series."""
    rows = fig9_triangle_rate(scale, benchmark)
    geo = np.array([r["geometry_rate"] for r in rows])
    pipe = np.array([r["pipeline_rate"] for r in rows])
    return float(np.corrcoef(geo, pipe)[0, 1])


# ------------------------------------------------------------- main results

#: cell marker for jobs that failed beyond their retry budget
FAILED = "FAILED"


def _speedup_table(scale: str, benchmarks: Benchmarks,
                   schemes: Sequence[str], num_gpus: int = 8,
                   table2_baseline: bool = False,
                   **setup_kwargs) -> Dict[str, Dict[str, float]]:
    """Speedup matrix over primitive duplication.

    With ``table2_baseline`` the baseline runs on the *default* Table II
    link configuration regardless of ``setup_kwargs`` — the normalization
    the paper uses for its link-parameter sweeps (Fig 20/21).

    When an experiment engine is active, the whole grid is prefetched
    through it (so ``--jobs N`` parallelism applies) and cells whose job
    failed beyond the retry budget degrade to the string ``"FAILED"``
    instead of aborting the figure; the GMean column then aggregates the
    surviving benchmarks only.
    """
    from ..errors import HarnessError
    from .engine import active_engine
    setup = make_setup(scale, num_gpus=num_gpus, **setup_kwargs)
    baseline_setup = make_setup(scale, num_gpus=num_gpus) \
        if table2_baseline else setup
    engine = active_engine()
    if engine is not None:
        engine.prefetch(("duplication",), benchmarks, baseline_setup)
        engine.prefetch(schemes, benchmarks, setup)
    table: Dict[str, Dict[str, float]] = {}
    for bench in benchmarks:
        table[bench] = {}
        try:
            base = run_benchmark("duplication", bench, baseline_setup)
        except HarnessError:
            table[bench] = {scheme: FAILED for scheme in schemes}
            continue
        for scheme in schemes:
            try:
                result = run_benchmark(scheme, bench, setup)
            except HarnessError:
                table[bench][scheme] = FAILED
                continue
            table[bench][scheme] = base.frame_cycles / result.frame_cycles
    table["GMean"] = {}
    for scheme in schemes:
        cells = [table[b][scheme] for b in benchmarks
                 if isinstance(table[b][scheme], float)]
        table["GMean"][scheme] = gmean(cells) if cells else FAILED
    return table


def fig13_performance(scale: str = "tiny",
                      benchmarks: Benchmarks = BENCHMARK_NAMES,
                      ) -> Dict[str, Dict[str, float]]:
    """The headline result: all schemes on the 8-GPU Table II system."""
    return _speedup_table(scale, benchmarks, MAIN_SCHEMES)


BREAKDOWN_STAGES = (STAGE_GEOMETRY, STAGE_FRAGMENT, STAGE_PROJECTION,
                    STAGE_DISTRIBUTION, STAGE_COMPOSITION, STAGE_SYNC)
BREAKDOWN_SCHEMES = ("duplication", "gpupd", "chopin", "chopin+sched",
                     "chopin-ideal")


def fig14_breakdown(scale: str = "tiny",
                    benchmarks: Benchmarks = BENCHMARK_NAMES,
                    ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Busy-cycle breakdown by stage, normalized to duplication's total."""
    setup = make_setup(scale)
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for bench in benchmarks:
        base_total = sum(run_benchmark("duplication", bench, setup)
                         .stats.stage_cycle_totals().values())
        table[bench] = {}
        for scheme in BREAKDOWN_SCHEMES:
            totals = run_benchmark(scheme, bench, setup) \
                .stats.stage_cycle_totals()
            table[bench][scheme] = {
                stage: totals.get(stage, 0.0) / base_total
                for stage in BREAKDOWN_STAGES
            }
    return table


def fig15_depth_test(scale: str = "tiny",
                     benchmarks: Benchmarks = BENCHMARK_NAMES,
                     ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fragments passing depth/stencil tests, normalized to duplication,
    split into early-Z and late ("other") passes."""
    setup = make_setup(scale)
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for bench in benchmarks:
        dup = run_benchmark("duplication", bench, setup).stats
        chopin = run_benchmark("chopin+sched", bench, setup).stats
        base = max(dup.total_fragments_passed, 1)
        table[bench] = {}
        for label, stats in (("duplication", dup), ("chopin+sched", chopin)):
            early = sum(g.fragments_passed_early_z for g in stats.gpus)
            late = sum(g.fragments_passed_late for g in stats.gpus)
            table[bench][label] = {"early": early / base,
                                   "other": late / base,
                                   "total": (early + late) / base}
    return table


def fig16_culling_sensitivity(scale: str = "tiny", benchmark: str = "ut3",
                              retained: Sequence[float] = (
                                  0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30,
                                  0.35, 0.40),
                              ) -> List[Dict[str, float]]:
    """Artificially retain depth-culled fragments and watch CHOPIN's edge
    erode (paper Fig 16, ut3)."""
    base_setup = make_setup(scale)
    dup = run_benchmark("duplication", benchmark, base_setup)
    rows = []
    for fraction in retained:
        setup = make_setup(scale, retained_cull_fraction=fraction)
        result = run_benchmark("chopin+sched", benchmark, setup)
        extra = (result.stats.total_fragments_shaded
                 / max(dup.stats.total_fragments_shaded, 1)) - 1.0
        rows.append({
            "retained_fraction": fraction,
            "speedup": dup.frame_cycles / result.frame_cycles,
            "extra_fragments": extra,
        })
    return rows


def fig17_traffic(scale: str = "tiny",
                  benchmarks: Benchmarks = BENCHMARK_NAMES,
                  ) -> Dict[str, float]:
    """Composition traffic in MB, rescaled to paper-equivalent pixels."""
    setup = make_setup(scale)
    pixel_scale = scale_for(scale).resolution_divisor ** 2
    traffic = {}
    for bench in benchmarks:
        result = run_benchmark("chopin+sched", bench, setup)
        traffic[bench] = (result.stats.traffic_total(TRAFFIC_COMPOSITION)
                          * pixel_scale / 1e6)
    traffic["Avg"] = float(np.mean([traffic[b] for b in benchmarks]))
    return traffic


# ---------------------------------------------------------- sensitivity

def fig18_update_interval(scale: str = "tiny",
                          benchmarks: Benchmarks = BENCHMARK_NAMES,
                          intervals: Sequence[int] = (1, 256, 512, 1024),
                          schemes: Sequence[str] = (
                              "chopin", "chopin+sched", "chopin-ideal"),
                          ) -> Dict[int, Dict[str, float]]:
    """Draw-scheduler statistics update frequency sweep (paper-scale
    triangle units)."""
    table: Dict[int, Dict[str, float]] = {}
    for interval in intervals:
        speeds = _speedup_table(scale, benchmarks, schemes,
                                scheduler_update_interval=interval)
        table[interval] = speeds["GMean"]
    return table


def fig19_gpu_scaling(scale: str = "tiny",
                      benchmarks: Benchmarks = BENCHMARK_NAMES,
                      gpu_counts: Sequence[int] = (2, 4, 8, 16),
                      schemes: Sequence[str] = MAIN_SCHEMES,
                      ) -> Dict[int, Dict[str, float]]:
    """Speedup vs duplication at the same GPU count, per GPU count."""
    table: Dict[int, Dict[str, float]] = {}
    for n in gpu_counts:
        speeds = _speedup_table(scale, benchmarks, schemes, num_gpus=n)
        table[n] = speeds["GMean"]
    return table


def fig20_bandwidth(scale: str = "tiny",
                    benchmarks: Benchmarks = BENCHMARK_NAMES,
                    bandwidths: Sequence[float] = (16.0, 32.0, 64.0, 128.0),
                    schemes: Sequence[str] = MAIN_SCHEMES,
                    ) -> Dict[float, Dict[str, float]]:
    """Inter-GPU link bandwidth sweep (GB/s)."""
    table: Dict[float, Dict[str, float]] = {}
    for bandwidth in bandwidths:
        speeds = _speedup_table(scale, benchmarks, schemes,
                                table2_baseline=True,
                                bandwidth_gb_per_s=bandwidth)
        table[bandwidth] = speeds["GMean"]
    return table


def fig21_latency(scale: str = "tiny",
                  benchmarks: Benchmarks = BENCHMARK_NAMES,
                  latencies: Sequence[int] = (100, 200, 300, 400),
                  schemes: Sequence[str] = MAIN_SCHEMES,
                  ) -> Dict[int, Dict[str, float]]:
    """Inter-GPU link latency sweep (cycles)."""
    table: Dict[int, Dict[str, float]] = {}
    for latency in latencies:
        speeds = _speedup_table(scale, benchmarks, schemes,
                                table2_baseline=True,
                                latency_cycles=latency)
        table[latency] = speeds["GMean"]
    return table


def fig22_threshold(scale: str = "tiny",
                    benchmarks: Benchmarks = BENCHMARK_NAMES,
                    thresholds: Sequence[int] = (256, 1024, 4096, 16384),
                    schemes: Sequence[str] = (
                        "chopin", "chopin+sched", "chopin-ideal"),
                    ) -> Dict[int, Dict[str, float]]:
    """Composition-group size threshold sweep (paper-scale triangles)."""
    table: Dict[int, Dict[str, float]] = {}
    for threshold in thresholds:
        speeds = _speedup_table(scale, benchmarks, schemes,
                                composition_threshold=threshold)
        table[threshold] = speeds["GMean"]
    return table


def fig22_coverage(scale: str = "tiny",
                   benchmarks: Benchmarks = BENCHMARK_NAMES,
                   thresholds: Sequence[int] = (4096, 16384),
                   ) -> Dict[int, Dict[str, float]]:
    """Accelerated groups / triangle coverage per threshold (§VI-E's
    '6.5 groups covering 92.44% of triangles' observation)."""
    divisor = scale_for(scale).triangle_divisor
    table: Dict[int, Dict[str, float]] = {}
    for threshold in thresholds:
        groups, coverage = [], []
        for bench in benchmarks:
            trace = load_benchmark(bench, scale)
            setup = make_setup(scale, composition_threshold=threshold)
            plans = plan_frame(split_into_groups(trace.frame), setup.config)
            summary = summarize_plan(plans)
            groups.append(summary.accelerated_groups)
            coverage.append(summary.triangle_coverage)
        table[threshold] = {
            "accelerated_groups": float(np.mean(groups)),
            "triangle_coverage": float(np.mean(coverage)),
        }
    return table


# -------------------------------------------------------- hardware & trends

def sec6d_scheduler_traffic(num_gpus: int = 8) -> Dict[str, object]:
    """Scheduler bandwidth estimates (paper §VI-D)."""
    return {
        "draw_sched_traffic_1M_tris_interval_1024":
            draw_scheduler_traffic_bytes(1_000_000, 1024),
        "draw_sched_traffic_1B_tris_interval_1024":
            draw_scheduler_traffic_bytes(1_000_000_000, 1024),
        "composition_sched_traffic_bytes":
            composition_scheduler_traffic_bytes(num_gpus),
    }


def sec6f_hardware_cost(num_gpus: int = 8) -> Dict[str, int]:
    """Scheduler table storage (paper §VI-F: 128 B + 27 B at 8 GPUs)."""
    return {
        "draw_scheduler_bytes": draw_scheduler_size_bytes(num_gpus),
        "composition_scheduler_bytes":
            composition_scheduler_size_bytes(num_gpus),
    }


def sec6g_workload_trend(scale: str = "tiny", benchmark: str = "cry",
                         detail_factors: Sequence[float] = (1.0, 2.0, 4.0),
                         ) -> List[Dict[str, float]]:
    """Primitive vs fragment processing time as geometric detail grows.

    The paper's §VI-G argument: triangle counts grow much faster than
    resolutions (Crysis Remastered: primitive time already exceeds fragment
    time), which favours sort-last schemes. We scale a trace's triangle
    count by ``detail_factors`` at fixed resolution and report both times.
    """
    setup = make_setup(scale, num_gpus=1)
    trace = load_benchmark(benchmark, scale)
    prep = reference_pass(trace, setup.config)
    base_geo = 0.0
    base_frag = 0.0
    for draw, metrics in zip(trace.frame.draws, prep.metrics):
        base_geo += setup.costs.geometry_cycles(draw.num_triangles,
                                                draw.vertex_cost)
        base_frag += setup.costs.fragment_cycles(
            metrics.triangles_rasterized, metrics.fragments_shaded,
            draw.pixel_cost)
    rows = []
    for factor in detail_factors:
        # More, proportionally smaller triangles: geometry scales with the
        # factor; fragment work stays pinned to the resolution.
        rows.append({
            "detail_factor": factor,
            "primitive_cycles": base_geo * factor,
            "fragment_cycles": base_frag,
            "primitive_share": (base_geo * factor)
            / (base_geo * factor + base_frag),
        })
    return rows


# ------------------------------------------------ composition head-to-head

#: classic sort-last exchange algorithms, modeled analytically
EXCHANGE_ALGORITHMS = ("direct-send", "binary-swap", "radix-k")

#: DES-simulated composition transports (all share CHOPIN's render path)
HEAD_TO_HEAD_SCHEMES = ("chopin", "chopin+sched", "dfb")


def _exchange_rounds(algorithm: str, num_pixels: float, num_gpus: int,
                     ) -> List[tuple]:
    """Per-round ``(messages_per_gpu, pixels_per_message)`` of an exchange.

    The schedules are the textbook ones (and match the functional
    implementations in :mod:`repro.composition`): direct-send is a single
    all-to-all round over 1/n slices; binary-swap halves each GPU's span
    over log2(n) pairwise rounds; radix-k runs a direct-send within groups
    of ``k_i`` per round over the default factorization of n.
    """
    n = num_gpus
    if n <= 1:
        return []
    if algorithm == "direct-send":
        return [(n - 1, num_pixels / n)]
    if algorithm == "binary-swap":
        if n & (n - 1):
            raise ConfigError(f"binary-swap needs a power-of-two GPU "
                              f"count, got {n}")
        rounds = []
        span = float(num_pixels)
        while span and len(rounds) < n.bit_length() - 1:
            span /= 2.0
            rounds.append((1, span))
        return rounds
    if algorithm == "radix-k":
        rounds = []
        span = float(num_pixels)
        for k in default_factorization(n):
            rounds.append((k - 1, span / k))
            span /= k
        return rounds
    raise ConfigError(f"unknown exchange algorithm {algorithm!r}; choose "
                      f"from {EXCHANGE_ALGORITHMS}")


def exchange_compose_cycles(algorithm: str, num_pixels: float,
                            config: SystemConfig, costs,
                            gather: bool = True) -> float:
    """Analytic critical-path cycles of one full-framebuffer exchange.

    Mirrors the DES interconnect's per-message cost — one head latency
    plus the payload serialized on the sender's egress port — and adds ROP
    blend time for each round's received pixels. Rounds are barriers (the
    round r+1 payload is the reduction of round r), which is exactly what
    makes these algorithms *synchronous*: none of the transfer time can
    hide behind rendering, unlike CHOPIN's per-group overlap or DFB's tile
    streaming. ``num_pixels`` counts MSAA samples; with ``gather`` the
    final 1/n-slices are pulled to a display GPU over one more round
    (serialized on the receiver's ingress port).
    """
    link = config.link
    bandwidth = link.bandwidth_bytes_per_cycle()
    total = 0.0
    for messages, pixels in _exchange_rounds(algorithm, num_pixels,
                                             config.num_gpus):
        total += messages * (link.latency_cycles
                             + pixels * config.pixel_bytes / bandwidth)
        total += costs.compose_cycles(messages * pixels)
    if gather and config.num_gpus > 1:
        slice_pixels = num_pixels / config.num_gpus
        total += link.latency_cycles + (config.num_gpus - 1) \
            * slice_pixels * config.pixel_bytes / bandwidth
    return total


def composition_head_to_head(scale: str = "tiny",
                             benchmarks: Benchmarks = ("wolf", "cod2"),
                             gpu_counts: Sequence[int] = (8, 16, 32, 64),
                             stress: Sequence[str] = ("transparency-heavy",),
                             pipeline_depth=None) -> Dict:
    """Head-to-head of composition transports across GPU counts.

    Three DES rows share CHOPIN's render path and differ only in how
    sub-images travel: ``chopin`` (naive direct-send gated on receiver
    readiness), ``chopin+sched`` (the §IV-E pairing scheduler) and ``dfb``
    (asynchronous per-tile streaming to tile owners). Three analytic rows
    graft a classic frame-end sort-last exchange (direct-send /
    binary-swap / radix-k over the full framebuffer, no render overlap)
    onto the composition-free ``chopin-ideal`` schedule of the same
    workload. Benchmarks plus the ``stress`` workloads (default: the
    transparency-heavy blend-a-third-of-the-frame trace) each run at every
    GPU count; DES cells carry the pipelining counters
    (``comp_overlap_cycles``, ``idle_cycles``, ``pipeline_stall_cycles``)
    alongside ``frame_cycles`` and busy composition cycles.
    """
    workloads = [(name, load_benchmark(name, scale)) for name in benchmarks]
    workloads += [(name, load_stress(name, scale)) for name in stress]
    table: Dict = {}
    for name, trace in workloads:
        table[name] = {}
        for num_gpus in gpu_counts:
            setup = make_setup(scale, num_gpus=num_gpus,
                               pipeline_depth=pipeline_depth)
            config = setup.config
            row: Dict[str, Dict[str, float]] = {}
            for scheme in HEAD_TO_HEAD_SCHEMES:
                result = run(scheme, trace, setup)
                stats = result.stats
                stages = stats.stage_cycle_totals()
                row[scheme] = {
                    "frame_cycles": result.frame_cycles,
                    "composition_cycles": stages.get(STAGE_COMPOSITION, 0.0),
                    "comp_overlap_cycles": stats.comp_overlap_cycles,
                    "idle_cycles": stats.idle_cycles,
                    "pipeline_stall_cycles": stats.pipeline_stall_cycles,
                }
            ideal = run("chopin-ideal", trace, setup)
            pixels = float(trace.width * trace.height * config.msaa_samples)
            for algorithm in EXCHANGE_ALGORITHMS:
                compose = exchange_compose_cycles(algorithm, pixels,
                                                  config, setup.costs)
                row[algorithm] = {
                    "frame_cycles": ideal.frame_cycles + compose,
                    "composition_cycles": compose,
                    "comp_overlap_cycles": 0.0,
                    "idle_cycles": 0.0,
                    "pipeline_stall_cycles": 0.0,
                }
            table[name][num_gpus] = row
    return table
