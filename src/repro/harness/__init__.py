"""Experiment harness: runner, experiments, reports, animation, export."""

from .runner import (MAIN_SCHEMES, SCHEMES, Setup, build_scheme,
                     clear_result_cache, compare, make_setup, run,
                     run_benchmark)
from .animation import AnimationResult, compare_afr_sfr, run_animation
from . import experiments, export, report, sweeps

__all__ = [
    "AnimationResult",
    "MAIN_SCHEMES",
    "SCHEMES",
    "Setup",
    "build_scheme",
    "clear_result_cache",
    "compare",
    "compare_afr_sfr",
    "experiments",
    "export",
    "make_setup",
    "report",
    "run",
    "run_animation",
    "run_benchmark",
    "sweeps",
]
