"""Experiment harness: engine, runner, experiments, reports, export."""

from .runner import (MAIN_SCHEMES, SCHEMES, Setup, build_scheme,
                     clear_result_cache, compare, make_setup, run,
                     run_benchmark)
from .animation import AnimationResult, compare_afr_sfr, run_animation
from .engine import (Engine, EngineCounters, JobOutcome, JobSpec, Journal,
                     active_engine, benchmark_job, set_active_engine)
from . import engine, experiments, export, report, sweeps

__all__ = [
    "AnimationResult",
    "Engine",
    "EngineCounters",
    "JobOutcome",
    "JobSpec",
    "Journal",
    "MAIN_SCHEMES",
    "SCHEMES",
    "Setup",
    "active_engine",
    "benchmark_job",
    "build_scheme",
    "clear_result_cache",
    "compare",
    "compare_afr_sfr",
    "engine",
    "experiments",
    "export",
    "make_setup",
    "report",
    "run",
    "run_animation",
    "run_benchmark",
    "set_active_engine",
    "sweeps",
]
