"""Result export: serialize scheme runs to JSON or CSV.

For downstream analysis (plotting, spreadsheets) the harness can dump its
measurements in machine-readable form:

    rows = collect_rows(benchmarks, schemes, setup)
    write_csv(rows, "results.csv")
    write_json(rows, "results.json")
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, Iterable, List, Union

from ..sfr.base import SchemeResult
from ..stats import ALL_STAGES
from .runner import Setup, run_benchmark

PathLike = Union[str, pathlib.Path]

#: fault-injection counters appended to every row (zero when fault-free)
FAULT_COLUMNS = ("link_retries", "dropped_transfers", "corrupted_transfers",
                 "retransmitted_bytes", "backoff_cycles", "failed_gpus",
                 "redistributed_draws", "recovery_cycles",
                 "recovery_overhead_cycles", "frame_index", "fault_events")

#: engine supervision counters (see repro.harness.engine; zero/False when
#: the run was unsupervised) plus race-sanitizer coverage (shared-state
#: accesses recorded; zero when the run was not sanitized)
ENGINE_COLUMNS = ("job_attempts", "job_retries", "job_timeouts",
                  "job_resumed", "sanitizer_accesses")

#: artifact-store counters (see repro.render.store): cached functional
#: work this run reused vs recomputed; zero when the result was a hit
ARTIFACT_COLUMNS = ("artifact_hits", "artifact_misses",
                    "artifact_evictions", "artifact_disk_loads",
                    "artifact_disk_corrupt")

#: frame-serving counters (see repro.serve; zero outside serve runs)
SERVE_COLUMNS = ("serve_requests", "serve_admitted", "serve_completed",
                 "serve_rejected", "serve_throttled", "serve_shed",
                 "serve_requeued", "serve_batches", "serve_queue_peak",
                 "serve_deadline_misses", "serve_degraded_events",
                 "serve_latency_p50_cycles", "serve_latency_p95_cycles",
                 "serve_latency_p99_cycles", "serve_overlap_cycles",
                 "serve_overlapped_batches")

#: cross-group pipelining counters (see repro.sfr.chopin / repro.sfr.dfb;
#: zero for schemes without an overlapped composition chain)
PIPELINE_COLUMNS = ("pipeline_depth", "pipeline_stall_cycles",
                    "comp_overlap_cycles", "idle_cycles",
                    "scheduler_groups_peak")

#: the flat columns a result row carries
COLUMNS = ("benchmark", "scheme", "num_gpus", "scale", "status",
           "frame_cycles",
           "speedup_vs_duplication", "triangles", "fragments_shaded",
           "fragments_passed", "traffic_bytes") + tuple(
               f"cycles_{stage}" for stage in ALL_STAGES) \
    + FAULT_COLUMNS + ENGINE_COLUMNS + ARTIFACT_COLUMNS + SERVE_COLUMNS \
    + PIPELINE_COLUMNS


def result_row(result: SchemeResult, setup: Setup,
               baseline_cycles: float) -> Dict[str, object]:
    """Flatten one run into an export row."""
    totals = result.stats.stage_cycle_totals()
    row: Dict[str, object] = {
        "benchmark": result.trace_name,
        "scheme": result.scheme,
        "num_gpus": result.num_gpus,
        "scale": setup.scale,
        "status": "ok",
        "frame_cycles": result.frame_cycles,
        "speedup_vs_duplication": baseline_cycles / result.frame_cycles,
        "triangles": result.stats.total_triangles,
        "fragments_shaded": result.stats.total_fragments_shaded,
        "fragments_passed": result.stats.total_fragments_passed,
        "traffic_bytes": result.stats.traffic_total(),
    }
    for stage in ALL_STAGES:
        row[f"cycles_{stage}"] = totals.get(stage, 0.0)
    row.update(result.stats.fault_summary())
    row.update(result.stats.engine_summary())
    row.update(result.stats.artifact_summary())
    row.update(result.stats.serve_summary())
    row.update(result.stats.pipeline_summary())
    return row


def failed_row(benchmark: str, scheme: str, setup: Setup,
               error: Exception) -> Dict[str, object]:
    """Placeholder row for a job that failed beyond its retry budget.

    Keeps the export schema intact so a salvaged sweep still writes a
    well-formed CSV: measurement columns are empty, ``status`` is
    ``failed``, and the supervision counters record the spent attempts.
    """
    row: Dict[str, object] = {column: "" for column in COLUMNS}
    row.update({
        "benchmark": benchmark, "scheme": scheme,
        "num_gpus": setup.config.num_gpus, "scale": setup.scale,
        "status": "failed",
        "job_attempts": getattr(error, "attempts", 0),
        "job_retries": 0, "job_timeouts": 0, "job_resumed": False,
        "sanitizer_accesses": 0,
        "artifact_hits": 0, "artifact_misses": 0,
        "artifact_evictions": 0, "artifact_disk_loads": 0,
        "artifact_disk_corrupt": 0,
    })
    row.update({column: 0 for column in SERVE_COLUMNS})
    row.update({column: 0 for column in PIPELINE_COLUMNS})
    return row


def collect_rows(benchmarks: Iterable[str], schemes: Iterable[str],
                 setup: Setup) -> List[Dict[str, object]]:
    """Run (benchmark x scheme) and flatten everything into rows.

    Under an active experiment engine a job that fails beyond its retry
    budget contributes a ``status=failed`` placeholder row (and, when the
    baseline itself failed, so do all its dependents) instead of aborting
    the export.
    """
    from ..errors import HarnessError
    from .engine import active_engine
    engine = active_engine()
    if engine is not None:
        wanted = ["duplication"] + [s for s in schemes
                                    if s != "duplication"]
        engine.prefetch(wanted, list(benchmarks), setup)
    rows: List[Dict[str, object]] = []
    for bench in benchmarks:
        try:
            baseline = run_benchmark("duplication", bench, setup)
        except HarnessError as exc:
            rows.append(failed_row(bench, "duplication", setup, exc))
            rows.extend(failed_row(bench, scheme, setup, exc)
                        for scheme in schemes if scheme != "duplication")
            continue
        rows.append(result_row(baseline, setup, baseline.frame_cycles))
        for scheme in schemes:
            if scheme == "duplication":
                continue
            try:
                result = run_benchmark(scheme, bench, setup)
            except HarnessError as exc:
                rows.append(failed_row(bench, scheme, setup, exc))
                continue
            rows.append(result_row(result, setup, baseline.frame_cycles))
    return rows


def write_csv(rows: List[Dict[str, object]], path: PathLike) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def write_json(rows: List[Dict[str, object]], path: PathLike) -> None:
    with open(path, "w") as handle:
        json.dump(rows, handle, indent=2)


def read_rows(path: PathLike) -> List[Dict[str, object]]:
    """Load rows back from a JSON export."""
    with open(path) as handle:
        return json.load(handle)


#: per-frame soak export schema (see repro.harness.engine.run_soak)
SOAK_COLUMNS = ("benchmark", "scheme", "num_gpus", "trace_fingerprint",
                "frame_index", "fault_events", "bit_identical",
                "frame_cycles", "baseline_frame_cycles",
                "recovery_overhead_cycles", "failed_gpus",
                "redistributed_draws", "link_retries")


def soak_rows(report) -> List[Dict[str, object]]:
    """Flatten a :class:`~repro.harness.engine.SoakReport` into rows."""
    rows = []
    for frame in report.frames:
        rows.append({
            "benchmark": report.benchmark,
            "scheme": report.scheme,
            "num_gpus": report.num_gpus,
            "trace_fingerprint": report.trace_fingerprint,
            "frame_index": frame.frame_index,
            "fault_events": frame.fault_events,
            "bit_identical": frame.bit_identical,
            "frame_cycles": frame.frame_cycles,
            "baseline_frame_cycles": frame.baseline_frame_cycles,
            "recovery_overhead_cycles": frame.recovery_overhead_cycles,
            "failed_gpus": len(frame.failed_gpus),
            "redistributed_draws": frame.stats.redistributed_draws,
            "link_retries": frame.stats.link_retries,
        })
    return rows


def write_soak_csv(report, path: PathLike) -> None:
    """One CSV row per soak frame (schema: ``SOAK_COLUMNS``)."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=SOAK_COLUMNS)
        writer.writeheader()
        for row in soak_rows(report):
            writer.writerow(row)


#: serve export schema (see repro.serve.daemon.ServeReport): a leading
#: ``session=all`` aggregate row (the only one carrying the percentile,
#: queue-depth and degraded columns), then one row per client session
SERVE_SESSION_COLUMNS = ("benchmark", "scheme", "session", "submitted",
                         "admitted", "rejected", "throttled", "shed",
                         "completed", "requeues", "deadline_misses",
                         "artifact_hit_rate", "latency_mean_cycles",
                         "latency_max_cycles", "latency_p50_cycles",
                         "latency_p95_cycles", "latency_p99_cycles",
                         "queue_peak", "degraded_events",
                         "overlap_cycles", "overlapped_batches")


def serve_rows(report) -> List[Dict[str, object]]:
    """Flatten a :class:`~repro.serve.daemon.ServeReport` into rows."""
    stats = report.stats
    rows: List[Dict[str, object]] = [{
        "benchmark": "+".join(report.benchmarks),
        "scheme": report.scheme,
        "session": "all",
        "submitted": stats.serve_requests,
        "admitted": stats.serve_admitted,
        "rejected": stats.serve_rejected,
        "throttled": stats.serve_throttled,
        "shed": stats.serve_shed,
        "completed": stats.serve_completed,
        "requeues": stats.serve_requeued,
        "deadline_misses": stats.serve_deadline_misses,
        "artifact_hit_rate": report.artifact_hit_rate,
        "latency_mean_cycles": report.slo.mean_cycles,
        "latency_max_cycles": report.slo.max_cycles,
        "latency_p50_cycles": stats.serve_latency_p50_cycles,
        "latency_p95_cycles": stats.serve_latency_p95_cycles,
        "latency_p99_cycles": stats.serve_latency_p99_cycles,
        "queue_peak": stats.serve_queue_peak,
        "degraded_events": stats.serve_degraded_events,
        "overlap_cycles": stats.serve_overlap_cycles,
        "overlapped_batches": stats.serve_overlapped_batches,
    }]
    for session in report.sessions:
        rows.append({
            "benchmark": "+".join(report.benchmarks),
            "scheme": report.scheme,
            "session": session.session,
            "submitted": session.submitted,
            "admitted": session.admitted,
            "rejected": session.rejected,
            "throttled": session.throttled,
            "shed": session.shed,
            "completed": session.completed,
            "requeues": session.requeues,
            "deadline_misses": session.deadline_misses,
            "artifact_hit_rate": session.hit_rate,
            "latency_mean_cycles": session.latency_mean_cycles,
            "latency_max_cycles": session.latency_max_cycles,
            "latency_p50_cycles": "", "latency_p95_cycles": "",
            "latency_p99_cycles": "", "queue_peak": "",
            "degraded_events": "",
            "overlap_cycles": "", "overlapped_batches": "",
        })
    return rows


def write_serve_csv(report, path: PathLike) -> None:
    """Aggregate + per-session CSV (schema: ``SERVE_SESSION_COLUMNS``)."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=SERVE_SESSION_COLUMNS)
        writer.writeheader()
        for row in serve_rows(report):
            writer.writerow(row)


def write_serve_json(report, path: PathLike) -> None:
    """Full serve report (counters, SLOs, sessions, events) as JSON."""
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2)
