"""Resilient job-graph execution engine for the experiment harness.

The paper's evaluation is a large grid of (scheme x benchmark x config)
simulations. The sweep and figure drivers used to be serial, all-or-nothing
loops: one hung or crashing simulation lost the whole run. This module makes
the *harness* fault-tolerant the way PR 1 made the *simulated system*
fault-tolerant:

- every unit of work is a :class:`JobSpec` — a pure-data description of one
  simulation (scheme, benchmark, setup keywords, seed, code version) with a
  stable content :meth:`~JobSpec.fingerprint`;
- an :class:`Engine` runs specs either serially in-process (the default —
  deterministic, cheap, shares the runner's result cache) or in supervised
  worker subprocesses (``jobs`` > 1 or a ``timeout``), with wall-clock
  timeouts, bounded retries with exponential backoff, and crash
  classification: :class:`~repro.errors.JobTimeout` and
  :class:`~repro.errors.WorkerCrashed` are transient and retried; a
  :class:`~repro.errors.SimulationError` / :class:`~repro.errors.ConfigError`
  raised by the job itself is deterministic and fails immediately;
- every completion is appended to an on-disk :class:`Journal` (JSONL, one
  fingerprint-keyed entry per line, flushed per entry so a SIGKILL loses at
  most the in-flight job); ``resume`` pre-loads a journal so an interrupted
  two-hour sweep restarts in seconds, skipping fingerprint-matched jobs;
- a job that fails beyond its retry budget degrades gracefully: the engine
  records a failed outcome (it never raises mid-batch), drivers render the
  cell as ``FAILED``, and the CLI exits nonzero-but-informative.

Typical use::

    engine = Engine(jobs=4, timeout=120.0, journal="run.jsonl")
    outcomes = engine.run_jobs([benchmark_job("chopin+sched", "wolf")])

or transparently underneath the existing drivers::

    with engine.activated():
        table = experiments.fig13_performance()
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..errors import (ConfigError, HarnessError, JobTimeout, ReproError,
                      RetryBudgetExhausted, WorkerCrashed)
from ..stats import RunStats

#: bump when the journal entry layout changes incompatibly
JOURNAL_VERSION = 1

#: outcome states
STATUS_OK = "ok"
STATUS_FAILED = "failed"

#: exception class names the engine retries (everything else is permanent)
TRANSIENT_ERRORS = ("JobTimeout", "WorkerCrashed")


def _code_version() -> str:
    from .. import __version__
    return __version__


# --------------------------------------------------------------------- specs

@dataclass(frozen=True)
class JobSpec:
    """A deterministic, serializable description of one unit of work.

    ``params`` is a sorted tuple of ``(key, value)`` pairs — for benchmark
    jobs these are :func:`~repro.harness.runner.make_setup` keywords
    (including ``scale``). Two specs with equal fields have equal
    fingerprints in any process on any machine.
    """

    kind: str = "benchmark"
    scheme: str = ""
    benchmark: str = ""
    params: Tuple[Tuple[str, object], ...] = ()
    seed: int = 0
    code_version: str = field(default_factory=_code_version)

    @property
    def fingerprint(self) -> str:
        """Stable content hash identifying this job across processes."""
        canon = json.dumps({
            "kind": self.kind, "scheme": self.scheme,
            "benchmark": self.benchmark,
            "params": [[k, v] for k, v in self.params],
            "seed": self.seed, "code_version": self.code_version,
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()[:32]

    @property
    def label(self) -> str:
        if self.kind == "benchmark":
            return f"{self.scheme}/{self.benchmark}"
        return self.kind

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "scheme": self.scheme,
                "benchmark": self.benchmark,
                "params": [[k, v] for k, v in self.params],
                "seed": self.seed, "code_version": self.code_version}

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobSpec":
        return cls(kind=data["kind"], scheme=data["scheme"],
                   benchmark=data["benchmark"],
                   params=tuple((k, v) for k, v in data["params"]),
                   seed=int(data.get("seed", 0)),
                   code_version=data.get("code_version", ""))


def benchmark_job(scheme: str, benchmark: str, scale: str = "tiny",
                  seed: int = 0, **setup_kwargs) -> JobSpec:
    """Spec for one (scheme, benchmark, make_setup-kwargs) simulation.

    Delegates parameter canonicalization to ``make_setup`` (via the Setup's
    ``origin``) so a spec built here fingerprints identically to one built
    from a driver's live Setup.
    """
    from .runner import make_setup
    setup = make_setup(scale, **setup_kwargs)
    spec = spec_for_setup(scheme, benchmark, setup)
    if spec is None:
        raise ConfigError(
            f"cannot build a portable job for {scheme}/{benchmark}: "
            f"the setup is not replayable (fault plans cannot be journaled)")
    if seed:
        spec = JobSpec(kind=spec.kind, scheme=spec.scheme,
                       benchmark=spec.benchmark, params=spec.params,
                       seed=seed, code_version=spec.code_version)
    return spec


def spec_for_setup(scheme: str, benchmark: str, setup) -> Optional[JobSpec]:
    """Spec from an existing Setup, or None when it is not portable.

    A Setup records the ``make_setup`` keywords it was built from in
    ``setup.origin``; hand-built or post-hoc-modified setups (``origin``
    empty) and fault-injected setups (a FaultPlan is not journal
    serializable) cannot be replayed in another process, so they run
    unsupervised in-process and are never journaled.
    """
    origin = getattr(setup, "origin", ())
    if not origin:
        return None
    if any(k == "faults" for k, _ in origin):
        return None
    return JobSpec(kind="benchmark", scheme=scheme, benchmark=benchmark,
                   params=tuple(origin))


# ----------------------------------------------------------------- execution

def _payload_from_result(result) -> Dict[str, object]:
    return {"scheme": result.scheme, "trace_name": result.trace_name,
            "num_gpus": result.num_gpus, "stats": result.stats.to_dict()}


def result_from_payload(payload: Mapping):
    """Rebuild a SchemeResult from a journaled payload.

    The framebuffer and per-draw metrics are not journaled, so ``image`` is
    ``None`` — every figure/sweep driver consumes only timing statistics.
    """
    from ..sfr.base import SchemeResult
    return SchemeResult(scheme=payload["scheme"],
                        trace_name=payload["trace_name"],
                        num_gpus=int(payload["num_gpus"]),
                        stats=RunStats.from_dict(payload["stats"]),
                        image=None)


def _execute_benchmark(spec: JobSpec):
    from .runner import make_setup, run_benchmark_direct
    kwargs = spec.param_dict()
    scale = kwargs.pop("scale", "tiny")
    setup = make_setup(scale, **kwargs)
    return run_benchmark_direct(spec.scheme, spec.benchmark, setup)


def _execute_diagnostic(spec: JobSpec, in_process: bool) -> Dict[str, object]:
    """Built-in self-test kinds used by the test suite and CI.

    - ``sleep``: sleep ``seconds`` (exercises the timeout path);
    - ``crash``: die without reporting (worker death classification);
    - ``fail``: raise a deterministic SimulationError (never retried);
    - ``flaky``: crash until ``counter`` (a scratch file) reaches
      ``fail_times``, then succeed (retry-then-recover path).
    """
    params = spec.param_dict()
    if spec.kind == "sleep":
        time.sleep(float(params.get("seconds", 0.0)))
        return {"slept": float(params.get("seconds", 0.0))}
    if spec.kind == "crash":
        if in_process:
            raise WorkerCrashed(f"job {spec.label} crashed (in-process)")
        os._exit(13)
    if spec.kind == "fail":
        from ..errors import SimulationError
        raise SimulationError(params.get("message", "deterministic failure"))
    if spec.kind == "flaky":
        counter = pathlib.Path(str(params["counter"]))
        seen = int(counter.read_text()) if counter.exists() else 0
        if seen < int(params.get("fail_times", 1)):
            counter.write_text(str(seen + 1))
            if in_process:
                raise WorkerCrashed(f"flaky job attempt {seen + 1}")
            os._exit(13)
        return {"attempts_survived": seen}
    raise ConfigError(f"unknown job kind {spec.kind!r}")


def execute_spec(spec: JobSpec, in_process: bool = True):
    """Run a spec's work in the current process and return its payload."""
    if spec.kind == "benchmark":
        return _payload_from_result(_execute_benchmark(spec))
    return _execute_diagnostic(spec, in_process)


def _worker_entry(conn, spec_json: str) -> None:
    """Subprocess entry: run the spec, send (status, ...) over the pipe."""
    try:
        payload = execute_spec(JobSpec.from_dict(json.loads(spec_json)),
                               in_process=False)
        conn.send((STATUS_OK, payload))
    except (KeyboardInterrupt, SystemExit, GeneratorExit):
        # Kill-style exceptions must take the worker down, not masquerade
        # as a job result: the parent then sees a dead worker and
        # classifies it as a (transient, retryable) WorkerCrashed.
        raise
    # Process boundary: report over the pipe instead of propagating (the
    # kill-style exceptions already re-raised above).
    except BaseException as exc:  # simlint: disable=broad-except
        conn.send(("error", type(exc).__name__, str(exc)))
    finally:
        conn.close()


# ------------------------------------------------------------------- journal

class Journal:
    """Append-only JSONL record of job completions.

    Line 1 is a header; every other line is one outcome keyed by the job
    fingerprint. Entries are flushed (and fsynced) per write, so killing the
    process loses at most the job that was in flight. A truncated final line
    (mid-write SIGKILL) is tolerated on load.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        self._handle = None

    def _open(self):
        if self._handle is None:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = open(self.path, "a")
            if fresh:
                self._write_line({"journal": "repro-engine",
                                  "version": JOURNAL_VERSION,
                                  "code_version": _code_version()})
        return self._handle

    def _write_line(self, entry: Mapping) -> None:
        handle = self._handle
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def record(self, outcome: "JobOutcome") -> None:
        self._open()
        self._write_line({
            "fingerprint": outcome.spec.fingerprint,
            "spec": outcome.spec.to_dict(),
            "status": outcome.status,
            "payload": outcome.payload,
            "error": outcome.error,
            "message": outcome.message,
            "attempts": outcome.attempts,
            "retries": outcome.retries,
            "timeouts": outcome.timeouts,
            "attempt_log": outcome.attempt_log,
        })

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def load(path: Union[str, pathlib.Path]) -> Dict[str, Mapping]:
        """fingerprint -> entry for every parseable line (latest wins)."""
        entries: Dict[str, Mapping] = {}
        journal_path = pathlib.Path(path)
        if not journal_path.exists():
            raise HarnessError(f"journal {journal_path} does not exist")
        with open(journal_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a mid-line kill
                if "fingerprint" in entry:
                    entries[entry["fingerprint"]] = entry
        return entries


# ------------------------------------------------------------------ outcomes

@dataclass
class JobOutcome:
    """What happened to one job: result payload or classified failure."""

    spec: JobSpec
    status: str
    payload: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    message: Optional[str] = None
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    elapsed_s: float = 0.0
    resumed: bool = False
    #: per-attempt observability: one dict per attempt, in order —
    #: ``{"attempt", "status", ...}`` plus, for failures, the error class,
    #: its message, and the backoff delay slept before the next attempt
    #: (``backoff_s`` is 0.0 on the final, non-retried attempt)
    attempt_log: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def result(self):
        """The job's SchemeResult (rebuilt from the payload)."""
        if not self.ok:
            raise RetryBudgetExhausted(
                f"job {self.spec.label} failed after {self.attempts} "
                f"attempt(s): {self.error}: {self.message}",
                fingerprint=self.spec.fingerprint,
                last_error=self.error or "", attempts=self.attempts)
        result = result_from_payload(self.payload)
        self._stamp(result.stats)
        return result

    def _stamp(self, stats: RunStats) -> None:
        stats.job_attempts = self.attempts
        stats.job_retries = self.retries
        stats.job_timeouts = self.timeouts
        stats.job_resumed = self.resumed


@dataclass
class EngineCounters:
    """Aggregate supervision counters for one engine's lifetime."""

    jobs: int = 0          # unique jobs asked for (after dedup)
    completed: int = 0
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    resumed: int = 0       # skipped because the resume journal had them
    memo_hits: int = 0     # deduplicated within this engine's lifetime
    prewarmed: int = 0     # artifacts rendered ahead of dispatch

    def as_dict(self) -> Dict[str, int]:
        return {"jobs": self.jobs, "completed": self.completed,
                "failed": self.failed, "retries": self.retries,
                "timeouts": self.timeouts, "crashes": self.crashes,
                "resumed": self.resumed, "memo_hits": self.memo_hits,
                "prewarmed": self.prewarmed}


# -------------------------------------------------------------------- engine

class Engine:
    """Supervised executor for :class:`JobSpec` batches.

    Parameters
    ----------
    jobs:
        Worker parallelism. 1 (default) runs serially; with ``isolate``
        unset, parallel runs use one subprocess per job.
    timeout:
        Per-attempt wall-clock budget in seconds (None = unlimited).
        Enforcing it requires subprocess isolation, which it implies.
    retries:
        Extra attempts allowed after a *transient* failure (timeout or
        worker death). Deterministic job errors never retry.
    backoff / backoff_cap:
        Exponential retry delay: ``backoff * 2**(attempt-1)`` seconds,
        capped at ``backoff_cap``.
    journal:
        Path to append completions to (created if missing).
    resume:
        Path of a previous journal; fingerprint-matched successful entries
        are replayed instead of re-simulated.
    isolate:
        Force (True) or forbid (False) subprocess workers. Default: isolate
        exactly when ``jobs > 1`` or a timeout is set.
    prewarm:
        Render each batch's geometry artifacts into the shared
        :mod:`repro.render` store once before dispatch (default on).
        Forked workers inherit the warm store copy-on-write, so a grid of
        (scheme x benchmark) jobs pays for the functional pass once per
        benchmark environment rather than once per job.
    """

    def __init__(self, jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 2, backoff: float = 0.25,
                 backoff_cap: float = 4.0,
                 journal: Optional[Union[str, pathlib.Path]] = None,
                 resume: Optional[Union[str, pathlib.Path]] = None,
                 isolate: Optional[bool] = None,
                 mp_context: str = "fork", prewarm: bool = True):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.isolate = (jobs > 1 or timeout is not None) \
            if isolate is None else isolate
        self.prewarm = prewarm
        try:
            self._mp = multiprocessing.get_context(mp_context)
        except ValueError:
            self._mp = multiprocessing.get_context()
        self.counters = EngineCounters()
        self.journal = Journal(journal) if journal else None
        self._memo: Dict[str, JobOutcome] = {}
        self._resumed_seen: set = set()
        self._lock = threading.Lock()
        self._sleep: Callable[[float], None] = time.sleep
        if resume:
            self._load_resume(resume)

    # -- resume ------------------------------------------------------------

    def _load_resume(self, path: Union[str, pathlib.Path]) -> None:
        for fingerprint, entry in Journal.load(path).items():
            if entry.get("status") != STATUS_OK:
                continue  # failed entries get a fresh chance
            self._memo[fingerprint] = JobOutcome(
                spec=JobSpec.from_dict(entry["spec"]), status=STATUS_OK,
                payload=entry["payload"], attempts=entry.get("attempts", 1),
                retries=entry.get("retries", 0),
                timeouts=entry.get("timeouts", 0), resumed=True,
                attempt_log=entry.get("attempt_log", []))

    # -- single job --------------------------------------------------------

    def run_job(self, spec: JobSpec) -> JobOutcome:
        """Run (or replay) one spec through supervision + memo + journal."""
        fingerprint = spec.fingerprint
        with self._lock:
            cached = self._memo.get(fingerprint)
            if cached is not None:
                if cached.resumed and fingerprint not in self._resumed_seen:
                    self._resumed_seen.add(fingerprint)
                    self.counters.resumed += 1
                else:
                    self.counters.memo_hits += 1
                return cached
        outcome = self._run_attempts(spec)
        with self._lock:
            self.counters.jobs += 1
            if outcome.ok:
                self.counters.completed += 1
            else:
                self.counters.failed += 1
            self._memo[fingerprint] = outcome
            if self.journal is not None:
                self.journal.record(outcome)
        return outcome

    def _run_attempts(self, spec: JobSpec) -> JobOutcome:
        attempts = retries = timeouts = 0
        error = message = None
        attempt_log: List[Dict[str, object]] = []
        started = time.monotonic()
        while attempts <= self.retries:
            attempts += 1
            try:
                payload = self._run_supervised(spec)
                attempt_log.append({"attempt": attempts,
                                    "status": STATUS_OK, "backoff_s": 0.0})
                return JobOutcome(spec=spec, status=STATUS_OK,
                                  payload=payload, attempts=attempts,
                                  retries=retries, timeouts=timeouts,
                                  elapsed_s=time.monotonic() - started,
                                  attempt_log=attempt_log)
            except HarnessError as exc:
                error, message = type(exc).__name__, str(exc)
                if isinstance(exc, JobTimeout):
                    timeouts += 1
                    self.counters.timeouts += 1
                elif isinstance(exc, WorkerCrashed):
                    self.counters.crashes += 1
                will_retry = (error in TRANSIENT_ERRORS
                              and attempts <= self.retries)
                backoff_s = (min(self.backoff * 2 ** (attempts - 1),
                                 self.backoff_cap) if will_retry else 0.0)
                attempt_log.append({"attempt": attempts,
                                    "status": STATUS_FAILED,
                                    "error": error, "message": message,
                                    "backoff_s": backoff_s})
                if not will_retry:
                    break
                retries += 1
                self.counters.retries += 1
                self._sleep(backoff_s)
            except ReproError as exc:  # deterministic job error: no retry
                # Only library errors are classified as a FAILED cell.
                # Anything else (KeyboardInterrupt, a programming error in
                # the sim) propagates: it is not a property of the job and
                # must not be recorded in the journal as one.
                error, message = type(exc).__name__, str(exc)
                attempt_log.append({"attempt": attempts,
                                    "status": STATUS_FAILED,
                                    "error": error, "message": message,
                                    "backoff_s": 0.0})
                break
        return JobOutcome(spec=spec, status=STATUS_FAILED, error=error,
                          message=message, attempts=attempts,
                          retries=retries, timeouts=timeouts,
                          elapsed_s=time.monotonic() - started,
                          attempt_log=attempt_log)

    def _run_supervised(self, spec: JobSpec) -> Dict[str, object]:
        if not self.isolate:
            return execute_spec(spec, in_process=True)
        parent, child = self._mp.Pipe(duplex=False)
        proc = self._mp.Process(target=_worker_entry,
                                args=(child, json.dumps(spec.to_dict())))
        proc.start()
        child.close()
        try:
            if not parent.poll(self.timeout):
                raise JobTimeout(
                    f"job {spec.label} exceeded {self.timeout:g}s "
                    f"wall-clock budget")
            try:
                msg = parent.recv()
            except EOFError:
                msg = None
        finally:
            if proc.is_alive():
                proc.kill()
            proc.join()
            parent.close()
        if msg is None:
            raise WorkerCrashed(
                f"worker for {spec.label} died without a result "
                f"(exit code {proc.exitcode})")
        if msg[0] == STATUS_OK:
            return msg[1]
        _, error_name, error_message = msg
        if error_name in TRANSIENT_ERRORS:
            raise WorkerCrashed(f"{spec.label}: {error_message}")
        # Re-raise under the child's exception class name so crash
        # classification and reports see the real cause, not a proxy.
        import repro.errors as errors_module
        exc_cls = getattr(errors_module, error_name, None)
        if not (isinstance(exc_cls, type) and issubclass(exc_cls, Exception)):
            exc_cls = type(error_name, (ReproError,), {})
        raise exc_cls(error_message)

    # -- batches -----------------------------------------------------------

    def prewarm_store(self, specs: Iterable[JobSpec]) -> int:
        """Warm the render artifact store for a batch of benchmark jobs.

        Deduplicates the (benchmark, setup-params) environments behind the
        specs and renders each one's assignment-independent artifacts
        (geometry phase, single-frame reference pass) into the
        process-wide :class:`~repro.render.ArtifactStore` exactly once,
        before any job dispatches. Serial in-process jobs then hit the
        warm store directly; ``fork``-context worker subprocesses inherit
        it copy-on-write. With ``jobs > 1`` distinct environments warm in
        parallel threads. Returns the number of artifacts rendered.
        """
        from ..render import render_service
        from ..traces import load_benchmark
        from .runner import make_setup
        environments: Dict[Tuple, JobSpec] = {}
        for spec in specs:
            if spec.kind != "benchmark":
                continue
            environments.setdefault((spec.benchmark, spec.params), spec)
        if not environments:
            return 0
        service = render_service()

        def warm(spec: JobSpec) -> int:
            kwargs = spec.param_dict()
            scale = kwargs.pop("scale", "tiny")
            setup = make_setup(scale, **kwargs)
            trace = load_benchmark(spec.benchmark, scale)
            return service.prewarm(trace, setup.config)

        targets = list(environments.values())
        if self.jobs > 1 and len(targets) > 1:
            from concurrent.futures import ThreadPoolExecutor
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                warmed = sum(pool.map(warm, targets))
        else:
            warmed = sum(warm(spec) for spec in targets)
        with self._lock:
            self.counters.prewarmed += warmed
        return warmed

    def run_jobs(self, specs: Iterable[JobSpec]) -> Dict[str, JobOutcome]:
        """Run a batch; returns fingerprint -> outcome.

        Specs are deduplicated by fingerprint (so e.g. a sweep's shared
        baseline simulates once). Benchmark jobs not already memoized or
        resumed pre-warm the shared artifact store before dispatch (see
        :meth:`prewarm_store`). With ``jobs > 1`` distinct jobs run in
        parallel worker subprocesses; outcomes are keyed, so assembly order
        — and therefore every derived table — is independent of completion
        order.
        """
        unique: Dict[str, JobSpec] = {}
        for spec in specs:
            unique.setdefault(spec.fingerprint, spec)
        if self.prewarm:
            with self._lock:
                pending = [spec for fp, spec in unique.items()
                           if fp not in self._memo]
            if pending:
                self.prewarm_store(pending)
        if self.jobs <= 1 or len(unique) <= 1:
            return {fp: self.run_job(spec) for fp, spec in unique.items()}
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = {fp: pool.submit(self.run_job, spec)
                       for fp, spec in unique.items()}
            return {fp: future.result() for fp, future in futures.items()}

    # -- benchmark convenience --------------------------------------------

    def run_benchmark(self, scheme: str, benchmark: str, setup):
        """Engine-supervised drop-in for ``runner.run_benchmark``.

        Portable setups go through the full spec/journal path; hand-built
        or fault-injected setups fall back to direct in-process execution
        (still classified, never journaled). Raises
        :class:`~repro.errors.RetryBudgetExhausted` when the job failed
        beyond budget — callers that salvage partial tables catch it.
        """
        spec = spec_for_setup(scheme, benchmark, setup)
        if spec is None:
            from .runner import run_benchmark_direct
            return run_benchmark_direct(scheme, benchmark, setup)
        outcome = self.run_job(spec)
        if not self.isolate and outcome.ok and not outcome.resumed:
            # In-process fast path: the simulation just ran here, so the
            # runner's result cache holds the real SchemeResult (image
            # included) — hand that back instead of a payload round trip.
            from .runner import run_benchmark_direct
            result = run_benchmark_direct(scheme, benchmark, setup)
            outcome._stamp(result.stats)
            return result
        return outcome.result()

    def prefetch(self, schemes: Sequence[str], benchmarks: Sequence[str],
                 setup) -> None:
        """Warm the memo/journal for a (scheme x benchmark) grid.

        Used by drivers to expose their whole grid to the engine up front,
        so ``jobs > 1`` parallelism applies even though the driver itself
        assembles its table serially. Hand-built setups are skipped.
        """
        specs = []
        for scheme in schemes:
            for bench in benchmarks:
                spec = spec_for_setup(scheme, bench, setup)
                if spec is not None:
                    specs.append(spec)
        if specs:
            self.run_jobs(specs)

    def failures(self) -> List[JobOutcome]:
        """Failed outcomes seen so far, in first-seen order."""
        with self._lock:
            return [o for o in self._memo.values() if not o.ok]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    @contextlib.contextmanager
    def activated(self):
        """Route ``runner.run_benchmark`` through this engine within the
        block (see :func:`set_active_engine`)."""
        token = set_active_engine(self)
        try:
            yield self
        finally:
            restore_active_engine(token)
            self.close()


# ------------------------------------------------------- active-engine hook

_ACTIVE_ENGINE: List[Optional[Engine]] = [None]


def set_active_engine(engine: Optional[Engine]) -> Optional[Engine]:
    """Install ``engine`` as the routing target; returns the previous one."""
    previous = _ACTIVE_ENGINE[0]
    _ACTIVE_ENGINE[0] = engine
    return previous


def restore_active_engine(previous: Optional[Engine]) -> None:
    _ACTIVE_ENGINE[0] = previous


def active_engine() -> Optional[Engine]:
    return _ACTIVE_ENGINE[0]


# ------------------------------------------------------------- soak running
#
# A *soak* run renders N consecutive frames under one long MTTF-generated
# failure trace (repro.faults.traces), carrying fail-stop state across frame
# boundaries: plan_for_window() marks a GPU already dead at a window's start
# as failed at relative cycle 0, so a GPU that dies in frame f stays dead in
# frame f+1 unless the trace repaired it by then. Every frame's image is
# checked bit-for-bit against the fault-free oracle of the same setup, and
# the per-frame recovery overhead (frame cycles minus the oracle's) is
# stamped into the frame's RunStats for reports/CSV.


@dataclass(frozen=True)
class SoakFrameResult:
    """One frame of a soak run."""

    frame_index: int
    fault_events: int            # trace events inside this frame's window
    bit_identical: bool          # image matches the fault-free oracle
    frame_cycles: float          # unit: cycles
    baseline_frame_cycles: float  # unit: cycles # the oracle's frame time
    failed_gpus: Tuple[int, ...]
    stats: RunStats

    @property
    def recovery_overhead_cycles(self) -> float:  # unit: cycles
        return self.frame_cycles - self.baseline_frame_cycles


@dataclass(frozen=True)
class SoakReport:
    """Outcome of a multi-frame soak run under one failure trace."""

    scheme: str
    benchmark: str
    num_gpus: int
    trace_fingerprint: str
    frames: Tuple[SoakFrameResult, ...]

    @property
    def all_identical(self) -> bool:
        return all(frame.bit_identical for frame in self.frames)

    @property
    def total_recovery_overhead_cycles(self) -> float:  # unit: cycles
        return sum(frame.recovery_overhead_cycles for frame in self.frames)

    @property
    def faulty_frames(self) -> int:
        return sum(1 for frame in self.frames if frame.fault_events)


def run_soak(trace, scheme: str, benchmark: str, setup,
             frames: Optional[int] = None, strict: bool = False) -> SoakReport:
    """Render consecutive frames of ``benchmark`` under a failure trace.

    ``trace`` is a :class:`repro.faults.traces.FailureTrace`; it must have
    been generated for ``setup``'s fabric (fingerprint-checked, raising
    :class:`~repro.errors.TraceFingerprintError` otherwise). The fault-free
    oracle is rendered once; frames whose trace window is fault-free reuse
    it outright. With ``strict=True`` the first non-bit-identical frame
    raises :class:`~repro.errors.FaultError` instead of being reported.
    """
    import numpy as np

    from ..errors import FaultError
    from ..faults.traces import plan_for_window, validate_trace
    from .runner import run_benchmark_direct

    validate_trace(trace, setup.config)
    total = trace.generator.frames if frames is None else frames
    if not 1 <= total <= trace.generator.frames:
        raise ConfigError(
            f"soak frame count must lie in 1..{trace.generator.frames} "
            f"(the trace horizon); got {total}")
    if setup.config.faults is not None:
        setup = setup.replace_config(faults=None)

    oracle = run_benchmark_direct(scheme, benchmark, setup)
    window = trace.generator.frame_cycles
    results: List[SoakFrameResult] = []
    for index in range(total):
        lo, hi = window * index, window * (index + 1)
        events = sum(1 for e in trace.events if lo <= e.time < hi)
        plan = plan_for_window(trace, setup.config, index)
        if plan is None:
            result = oracle
        else:
            result = run_benchmark_direct(
                scheme, benchmark, setup.replace_config(faults=plan))
        identical = bool(
            np.array_equal(result.image.color, oracle.image.color)
            and np.array_equal(result.image.depth, oracle.image.depth))
        if strict and not identical:
            raise FaultError(
                f"soak frame {index} of {scheme}/{benchmark} diverged "
                f"from the fault-free oracle under trace "
                f"{trace.fingerprint}")
        # results can come from the run cache; stamp a private stats copy
        stats = RunStats.from_dict(result.stats.to_dict())
        stats.frame_index = index
        stats.fault_events = events
        stats.baseline_frame_cycles = oracle.stats.frame_cycles
        results.append(SoakFrameResult(
            frame_index=index,
            fault_events=events,
            bit_identical=identical,
            frame_cycles=result.stats.frame_cycles,
            baseline_frame_cycles=oracle.stats.frame_cycles,
            failed_gpus=tuple(result.stats.failed_gpus),
            stats=stats))
    return SoakReport(scheme=scheme, benchmark=benchmark,
                      num_gpus=setup.config.num_gpus,
                      trace_fingerprint=trace.fingerprint,
                      frames=tuple(results))
