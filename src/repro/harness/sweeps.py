"""Generic parameter-sweep utility over the experiment setup space.

The per-figure drivers in :mod:`repro.harness.experiments` hard-code the
paper's axes; this module exposes the same machinery for ad-hoc
exploration:

    from repro.harness.sweeps import sweep

    table = sweep("bandwidth_gb_per_s", [8, 16, 32, 64, 128],
                  schemes=("chopin+sched",), benchmarks=("cod2", "wolf"))

Any keyword accepted by :func:`repro.harness.make_setup` can be the swept
``parameter`` (``num_gpus``, ``latency_cycles``, ``composition_threshold``,
``scheduler_update_interval``, ``msaa_samples``, ``topology``,
``retained_cull_fraction``, ``dram_gb_per_s``, ...).

Sweeps execute through the :mod:`repro.harness.engine`: the whole
(value x scheme x benchmark) grid is expanded into deterministic job specs
up front, deduplicated by fingerprint (so a shared baseline simulates once,
not once per scheme), run with the engine's supervision (parallel workers,
timeouts, retries, journal), and salvaged into a partial table with
explicit ``"FAILED"`` cells when a job fails beyond its retry budget.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..stats import gmean
from .engine import Engine, JobSpec, active_engine, benchmark_job

#: parameters the sweep accepts (make_setup keywords)
SWEEPABLE = ("num_gpus", "bandwidth_gb_per_s", "latency_cycles",
             "composition_threshold", "scheduler_update_interval",
             "retained_cull_fraction", "topology", "msaa_samples",
             "model_memory", "dram_gb_per_s", "pipeline_depth")

#: cell marker for jobs that failed beyond their retry budget
FAILED = "FAILED"


def expand_sweep(parameter: str, values: Iterable,
                 schemes: Sequence[str] = ("chopin+sched",),
                 benchmarks: Sequence[str] = ("cod2",),
                 scale: str = "tiny",
                 baseline: str = "duplication",
                 baseline_follows_sweep: bool = True,
                 **fixed) -> Tuple[List, List[JobSpec]]:
    """Expand a sweep into its deterministic job specs.

    Returns ``(values, specs)``; specs may contain duplicate fingerprints
    (e.g. the pinned baseline repeated per value) — the engine deduplicates,
    which is what makes baseline hoisting free.
    """
    if parameter not in SWEEPABLE:
        raise ConfigError(
            f"cannot sweep {parameter!r}; choose from {SWEEPABLE}")
    if parameter in fixed:
        raise ConfigError(f"{parameter!r} is both swept and fixed")
    values = list(values)
    specs: List[JobSpec] = []
    for value in values:
        swept = {parameter: value, **fixed}
        base_kwargs = swept if baseline_follows_sweep else dict(fixed)
        for bench in benchmarks:
            specs.append(benchmark_job(baseline, bench, scale, **base_kwargs))
            for scheme in schemes:
                specs.append(benchmark_job(scheme, bench, scale, **swept))
    return values, specs


def _frame_cycles(outcome) -> Optional[float]:
    if outcome is None or not outcome.ok:
        return None
    return float(outcome.payload["stats"]["frame_cycles"])


def sweep(parameter: str, values: Iterable,
          schemes: Sequence[str] = ("chopin+sched",),
          benchmarks: Sequence[str] = ("cod2",),
          scale: str = "tiny",
          baseline: str = "duplication",
          baseline_follows_sweep: bool = True,
          engine: Optional[Engine] = None,
          **fixed) -> Dict:
    """Speedup of ``schemes`` over ``baseline`` at each parameter value.

    Returns ``{value: {scheme: gmean_speedup}}``. With
    ``baseline_follows_sweep`` the baseline re-runs at each swept value
    (Fig 19-style normalization); otherwise it is pinned to the default
    configuration (Fig 20/21-style) and simulates exactly once per
    benchmark, however many values and schemes the sweep covers.

    Runs on the given ``engine`` (or the session's active one, or a fresh
    serial in-process engine). A cell whose contributing job failed beyond
    the retry budget holds the string ``"FAILED"`` instead of a float; the
    remaining cells are still exact.
    """
    eng = engine or active_engine() or Engine()
    values, specs = expand_sweep(
        parameter, values, schemes=schemes, benchmarks=benchmarks,
        scale=scale, baseline=baseline,
        baseline_follows_sweep=baseline_follows_sweep, **fixed)
    outcomes = eng.run_jobs(specs)

    def cycles(scheme: str, bench: str, value) -> Optional[float]:
        swept = {parameter: value, **fixed}
        if scheme == baseline and not baseline_follows_sweep:
            swept = dict(fixed)
        spec = benchmark_job(scheme, bench, scale, **swept)
        return _frame_cycles(outcomes.get(spec.fingerprint))

    table: Dict = {}
    for value in values:
        per_scheme: Dict[str, object] = {}
        for scheme in schemes:
            speedups = []
            for bench in benchmarks:
                base = cycles(baseline, bench, value)
                result = cycles(scheme, bench, value)
                if base is None or result is None:
                    speedups = None
                    break
                speedups.append(base / result)
            per_scheme[scheme] = FAILED if speedups is None \
                else gmean(speedups)
        table[value] = per_scheme
    return table


def crossover(parameter: str, values: Sequence, scheme_a: str,
              scheme_b: str, benchmarks: Sequence[str] = ("cod2",),
              scale: str = "tiny", engine: Optional[Engine] = None,
              **fixed):
    """First swept value at which ``scheme_a`` *overtakes* ``scheme_b``.

    A crossover requires a sign change: ``scheme_a`` must trail (margin
    <= 0) at the preceding value and lead (margin > 0) at the returned
    one — leading from ``values[0]`` onward is dominance, not a crossover,
    and returns ``None``. Returns ``(value, margin_before, margin_after)``
    with the margins on both sides of the flip, or ``None`` when the
    verdict never flips in the given range. Values whose cells are
    ``FAILED`` are skipped (they can hide a flip, never invent one).
    """
    table = sweep(parameter, values, schemes=(scheme_a, scheme_b),
                  benchmarks=benchmarks, scale=scale, engine=engine, **fixed)
    prev_margin = None
    for value in values:
        cells = table[value]
        if FAILED in (cells[scheme_a], cells[scheme_b]):
            continue
        margin = cells[scheme_a] - cells[scheme_b]
        if prev_margin is not None and prev_margin <= 0 and margin > 0:
            return value, prev_margin, margin
        prev_margin = margin
    return None
