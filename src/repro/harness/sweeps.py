"""Generic parameter-sweep utility over the experiment setup space.

The per-figure drivers in :mod:`repro.harness.experiments` hard-code the
paper's axes; this module exposes the same machinery for ad-hoc
exploration:

    from repro.harness.sweeps import sweep

    table = sweep("bandwidth_gb_per_s", [8, 16, 32, 64, 128],
                  schemes=("chopin+sched",), benchmarks=("cod2", "wolf"))

Any keyword accepted by :func:`repro.harness.make_setup` can be the swept
``parameter`` (``num_gpus``, ``latency_cycles``, ``composition_threshold``,
``scheduler_update_interval``, ``msaa_samples``, ``topology``,
``retained_cull_fraction``, ``dram_gb_per_s``, ...).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from ..errors import ConfigError
from ..stats import gmean
from .runner import make_setup, run_benchmark

#: parameters the sweep accepts (make_setup keywords)
SWEEPABLE = ("num_gpus", "bandwidth_gb_per_s", "latency_cycles",
             "composition_threshold", "scheduler_update_interval",
             "retained_cull_fraction", "topology", "msaa_samples",
             "model_memory", "dram_gb_per_s")


def sweep(parameter: str, values: Iterable,
          schemes: Sequence[str] = ("chopin+sched",),
          benchmarks: Sequence[str] = ("cod2",),
          scale: str = "tiny",
          baseline: str = "duplication",
          baseline_follows_sweep: bool = True,
          **fixed) -> Dict:
    """Speedup of ``schemes`` over ``baseline`` at each parameter value.

    Returns ``{value: {scheme: gmean_speedup}}``. With
    ``baseline_follows_sweep`` the baseline re-runs at each swept value
    (Fig 19-style normalization); otherwise it is pinned to the default
    configuration (Fig 20/21-style).
    """
    if parameter not in SWEEPABLE:
        raise ConfigError(
            f"cannot sweep {parameter!r}; choose from {SWEEPABLE}")
    if parameter in fixed:
        raise ConfigError(f"{parameter!r} is both swept and fixed")

    pinned_setup = make_setup(scale, **fixed)
    table: Dict = {}
    for value in values:
        setup = make_setup(scale, **{parameter: value}, **fixed)
        baseline_setup = setup if baseline_follows_sweep else pinned_setup
        per_scheme: Dict[str, float] = {}
        for scheme in schemes:
            speedups = []
            for bench in benchmarks:
                base = run_benchmark(baseline, bench, baseline_setup)
                result = run_benchmark(scheme, bench, setup)
                speedups.append(base.frame_cycles / result.frame_cycles)
            per_scheme[scheme] = gmean(speedups)
        table[value] = per_scheme
    return table


def crossover(parameter: str, values: Sequence, scheme_a: str,
              scheme_b: str, benchmarks: Sequence[str] = ("cod2",),
              scale: str = "tiny", **fixed):
    """First swept value at which ``scheme_a`` overtakes ``scheme_b``.

    Returns ``(value, margin)`` or ``None`` if no crossover occurs in the
    given range — the "where does the verdict flip" question most of the
    paper's sensitivity studies are implicitly asking.
    """
    table = sweep(parameter, values, schemes=(scheme_a, scheme_b),
                  benchmarks=benchmarks, scale=scale, **fixed)
    for value in values:
        margin = table[value][scheme_a] - table[value][scheme_b]
        if margin > 0:
            return value, margin
    return None
