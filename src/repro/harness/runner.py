"""Experiment runner: scheme registry, scaled configs, and result caching.

Everything the benchmark harness and the examples need to launch a run:

- :data:`SCHEMES` — name -> scheme class, covering every bar in the paper's
  figures (duplication baseline, GPUpd and its ideal, CHOPIN with/without
  the composition scheduler, IdealCHOPIN, and the round-robin strawman);
- :func:`make_setup` — a Table II :class:`~repro.config.SystemConfig` plus
  cost model, consistently re-scaled for a chosen trace scale;
- :func:`run` — execution of (scheme, benchmark, setup) cached in the
  ``result`` namespace of the :mod:`repro.render` artifact store, so the
  many figures that share runs (Fig 13/14/15/17...) pay for each
  simulation once and exports can report per-run artifact reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Type

from ..config import SystemConfig
from ..errors import ConfigError
from ..faults.plan import FaultPlan
from ..sfr import (Chopin, ChopinOracle, ChopinRoundRobin, ChopinSampled,
                   ChopinWithScheduler, DistributedFramebufferChopin, GPUpd,
                   IdealChopin, IdealGPUpd, PrimitiveDuplication, SchemeResult,
                   SFRScheme, SortMiddle)
from ..timing.costs import CostModel
from ..traces import load_benchmark, scale_for
from ..traces.trace import Trace

SCHEMES: Dict[str, Type[SFRScheme]] = {
    "duplication": PrimitiveDuplication,
    "gpupd": GPUpd,
    "gpupd-ideal": IdealGPUpd,
    "chopin": Chopin,
    "chopin+sched": ChopinWithScheduler,
    "chopin-ideal": IdealChopin,
    "chopin-rr": ChopinRoundRobin,
    "chopin-oracle": ChopinOracle,
    "chopin-sampled": ChopinSampled,
    "dfb": DistributedFramebufferChopin,
    "sort-middle": SortMiddle,
}

#: the Fig 13 bar order
MAIN_SCHEMES = ("gpupd", "gpupd-ideal", "chopin", "chopin+sched",
                "chopin-ideal")

#: GPUpd's distribution batch size at paper scale (primitives per batch)
GPUPD_BATCH_PRIMITIVES = 2048


@dataclass(frozen=True)
class Setup:
    """A fully resolved experiment environment.

    ``origin`` records the exact :func:`make_setup` keywords this setup was
    built from (sorted ``(key, value)`` pairs) — the experiment engine uses
    it to fingerprint and replay jobs in other processes. Hand-built or
    post-hoc-modified setups leave it empty and simply run unsupervised.
    """

    scale: str
    config: SystemConfig
    costs: CostModel
    origin: tuple = ()

    def replace_config(self, **kwargs) -> "Setup":
        # the modification invalidates origin: no longer replayable
        return Setup(scale=self.scale, config=replace(self.config, **kwargs),
                     costs=self.costs)

    @property
    def gpupd_batch(self) -> int:
        divisor = scale_for(self.scale).triangle_divisor
        return max(1, GPUPD_BATCH_PRIMITIVES // divisor)


def make_setup(scale: str = "tiny", num_gpus: int = 8,
               bandwidth_gb_per_s: Optional[float] = None,
               latency_cycles: Optional[int] = None,
               composition_threshold: Optional[int] = None,
               scheduler_update_interval: Optional[int] = None,
               retained_cull_fraction: float = 0.0,
               topology: Optional[str] = None,
               msaa_samples: int = 1,
               model_memory: bool = False,
               dram_gb_per_s: Optional[float] = None,
               faults: Optional["FaultPlan"] = None,
               sanitize: bool = False,
               watchdog_cycles: Optional[float] = None,
               pipeline_depth: Optional[int] = None) -> Setup:
    """Build a Table II setup re-scaled for ``scale``.

    ``composition_threshold`` and ``scheduler_update_interval`` are given in
    *paper-scale primitives* and divided by the scale's triangle divisor, so
    sweeps like Fig 18/22 use the paper's axis values directly.
    """
    origin_kwargs = {
        "scale": scale, "num_gpus": num_gpus,
        "bandwidth_gb_per_s": bandwidth_gb_per_s,
        "latency_cycles": latency_cycles,
        "composition_threshold": composition_threshold,
        "scheduler_update_interval": scheduler_update_interval,
        "retained_cull_fraction": retained_cull_fraction,
        "topology": topology, "msaa_samples": msaa_samples,
        "model_memory": model_memory, "dram_gb_per_s": dram_gb_per_s,
        # marker only: a FaultPlan is not journal-serializable, so the
        # engine treats fault-injected setups as non-portable
        "faults": repr(faults) if faults is not None else None,
        # None when off so pre-existing journal fingerprints stay valid
        "sanitize": True if sanitize else None,
        "watchdog_cycles": watchdog_cycles,
        "pipeline_depth": pipeline_depth,
    }
    origin = tuple(sorted((k, v) for k, v in origin_kwargs.items()
                          if v is not None))
    trace_scale = scale_for(scale)
    divisor = trace_scale.triangle_divisor
    gpu_kwargs = {}
    if dram_gb_per_s is not None:
        # per-GPU share of the system DRAM bandwidth (Table II: 2 TB/s / 8)
        gpu_kwargs["dram_bandwidth_bytes_per_s"] = int(
            dram_gb_per_s * 1e9 / num_gpus)
    threshold = composition_threshold if composition_threshold is not None \
        else 4096
    interval = scheduler_update_interval if scheduler_update_interval \
        is not None else 1
    from ..config import GPUConfig
    config = SystemConfig(
        num_gpus=num_gpus,
        gpu=GPUConfig(**gpu_kwargs),
        tile_size=trace_scale.tile_size(),
        composition_threshold=max(1, threshold // divisor),
        scheduler_update_interval=max(1, interval // divisor or 1),
        primitive_id_bytes=trace_scale.primitive_id_bytes(),
        retained_cull_fraction=retained_cull_fraction,
        msaa_samples=msaa_samples,
        faults=faults,
        sanitize=sanitize,
        watchdog_cycles=watchdog_cycles,
        pipeline_depth=pipeline_depth,
    )
    if bandwidth_gb_per_s is not None or latency_cycles is not None:
        config = config.with_link(bandwidth_gb_per_s=bandwidth_gb_per_s,
                                  latency_cycles=latency_cycles)
    if topology is not None:
        from dataclasses import replace as dc_replace
        config = dc_replace(config,
                            link=dc_replace(config.link, topology=topology))
    costs = CostModel(gpu=config.gpu,
                      draw_issue_cost=trace_scale.draw_issue_cost(),
                      model_memory=model_memory)
    return Setup(scale=scale, config=config, costs=costs, origin=origin)


def build_scheme(name: str, setup: Setup) -> SFRScheme:
    """Instantiate a registered scheme for the given setup."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}")
    faults = setup.config.faults
    if (faults is not None and faults.gpu_failures
            and not cls.supports_fail_stop):
        supported = sorted(s for s, c in SCHEMES.items()
                           if c.supports_fail_stop)
        raise ConfigError(
            f"scheme {name!r} cannot recover from GPU fail-stop failures; "
            f"drop the fail= entries from the fault plan or use one of "
            f"{supported}")
    if name.startswith("gpupd"):
        return cls(setup.config, setup.costs,
                   batch_primitives=setup.gpupd_batch)
    if name == "sort-middle":
        # attribute payloads scale like primitive IDs (see TraceScale)
        factor = scale_for(setup.scale).cost_multiplier
        from ..sfr.sort_middle import ATTRIBUTE_BYTES_PER_TRIANGLE
        return cls(setup.config, setup.costs,
                   attribute_bytes=max(1, round(
                       ATTRIBUTE_BYTES_PER_TRIANGLE * factor)),
                   batch_primitives=setup.gpupd_batch)
    return cls(setup.config, setup.costs)


def _result_fields(scheme: str, trace: Trace, setup: Setup) -> dict:
    """Identifying fields of one run's result artifact.

    Mirrors what used to be the runner's private ``_cache_key`` tuple,
    with the trace identified by content fingerprint instead of
    ``id()`` so entries survive re-loading and disk spill. Fault plans
    are keyed by their (deterministic) repr.
    """
    cfg = setup.config
    return {
        "scheme": scheme, "trace": trace.fingerprint,
        "trace_name": trace.name, "scale": setup.scale,
        "num_gpus": cfg.num_gpus, "tile_size": cfg.tile_size,
        "composition_threshold": cfg.composition_threshold,
        "scheduler_update_interval": cfg.scheduler_update_interval,
        "retained_cull_fraction": cfg.retained_cull_fraction,
        "bandwidth_gb_per_s": cfg.link.bandwidth_gb_per_s,
        "latency_cycles": cfg.link.latency_cycles,
        "link_ideal": cfg.link.ideal, "topology": cfg.link.topology,
        "msaa_samples": cfg.msaa_samples,
        "model_memory": setup.costs.model_memory,
        "dram_bandwidth_bytes_per_s": cfg.gpu.dram_bandwidth_bytes_per_s,
        "faults": repr(cfg.faults) if cfg.faults is not None else None,
        "sanitize": cfg.sanitize,
        # 0 = unbounded window; part of the key so depth variants of the
        # same setup never collide in the result cache
        "pipeline_depth": cfg.pipeline_depth or 0,
    }


def run(scheme: str, trace: Trace, setup: Setup,
        use_cache: bool = True) -> SchemeResult:
    """Run one scheme on one trace (result cached in the artifact store).

    On a miss, the store-counter growth the computation caused (geometry
    artifact hits/misses, reference/prep lookups) is stamped onto the
    result's :class:`~repro.stats.RunStats`, so exports can report how
    much cached work each run reused. Hits return the stored result
    unchanged — its counters describe the run that computed it.
    """
    from ..render import render_service
    service = render_service()

    def compute() -> SchemeResult:
        before = service.counters()
        result = build_scheme(scheme, setup).run(trace)
        grew = service.counters().delta(before)
        result.stats.artifact_hits = grew.hits
        result.stats.artifact_misses = grew.misses
        result.stats.artifact_evictions = grew.evictions
        result.stats.artifact_disk_loads = grew.disk_loads
        result.stats.artifact_disk_corrupt = grew.disk_corrupt
        return result

    if not use_cache:
        return compute()
    return service.cached("result", _result_fields(scheme, trace, setup),
                          compute)


def run_benchmark_direct(scheme: str, benchmark: str,
                         setup: Setup) -> SchemeResult:
    """Run one scheme on a named benchmark, bypassing engine supervision.

    This is the raw execution path the engine's workers call; everything
    else should go through :func:`run_benchmark`.
    """
    return run(scheme, load_benchmark(benchmark, setup.scale), setup)


def run_benchmark(scheme: str, benchmark: str, setup: Setup) -> SchemeResult:
    """Run one scheme on a named Table III benchmark.

    When an experiment engine is active (``Engine.activated()`` or the
    CLI's ``--jobs/--timeout/--journal/--resume`` flags), the run is
    supervised: journaled, resumable, retried on transient failures, and
    raising :class:`~repro.errors.RetryBudgetExhausted` once the retry
    budget is gone. Without an engine this is plain cached execution.
    """
    from .engine import active_engine
    engine = active_engine()
    if engine is not None:
        return engine.run_benchmark(scheme, benchmark, setup)
    return run_benchmark_direct(scheme, benchmark, setup)


def compare(benchmark: str, setup: Setup,
            schemes: Iterable[str] = MAIN_SCHEMES,
            baseline: str = "duplication") -> Dict[str, float]:
    """Speedups of ``schemes`` over ``baseline`` on one benchmark."""
    base = run_benchmark(baseline, benchmark, setup)
    speedups = {baseline: 1.0}
    for scheme in schemes:
        result = run_benchmark(scheme, benchmark, setup)
        speedups[scheme] = base.frame_cycles / result.frame_cycles
    return speedups


def clear_result_cache() -> None:
    """Drop cached scheme results from the artifact store.

    Kept for callers that want a targeted invalidation;
    ``render_service().reset()`` clears every namespace at once.
    """
    from ..render import render_service
    render_service().reset("result")
