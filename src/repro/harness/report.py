"""ASCII rendering of experiment results — the rows the paper's figures plot.

Each ``render_*`` function takes the matching experiment's return value and
produces a fixed-width table string; ``print`` it or write it to a report.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def _format_cell(value, width: int = 8) -> str:
    if isinstance(value, float):
        return f"{value:{width}.3f}"
    return f"{value!s:>{width}}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Generic fixed-width table."""
    widths = [max(len(str(h)), 8) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_format_cell(cell).strip()))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(f"{h:>{w}}" for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(
            _format_cell(cell, w).rjust(w)
            for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_keyed_matrix(data: Mapping, row_label: str, title: str = "",
                        percent: bool = False) -> str:
    """Render {row: {col: value}} as a table (e.g., speedup matrices)."""
    rows_keys = list(data)
    col_keys: List[str] = []
    for row in rows_keys:
        for col in data[row]:
            if col not in col_keys:
                col_keys.append(col)
    rows = []
    for row in rows_keys:
        cells: List[object] = [row]
        for col in col_keys:
            value = data[row].get(col, "")
            if percent and isinstance(value, float):
                value = f"{100 * value:.1f}%"
            cells.append(value)
        rows.append(cells)
    return render_table([row_label] + [str(c) for c in col_keys], rows, title)


def render_fig2(shares: Mapping, title: str = "Fig 2: geometry share of "
                "busy cycles (conventional SFR)") -> str:
    data = {bench: {f"{n} GPU{'s' if n > 1 else ''}": frac
                    for n, frac in per_n.items()}
            for bench, per_n in shares.items()}
    return render_keyed_matrix(data, "bench", title, percent=True)


def render_fig4(overheads: Mapping, title: str = "Fig 4: GPUpd overhead "
                "share (projection / distribution)") -> str:
    data = {}
    for bench, per_n in overheads.items():
        data[bench] = {}
        for n, parts in per_n.items():
            data[bench][f"proj@{n}"] = f"{100 * parts['projection']:.1f}%"
            data[bench][f"dist@{n}"] = f"{100 * parts['distribution']:.1f}%"
    return render_keyed_matrix(data, "bench", title)


def render_speedups(table: Mapping, title: str) -> str:
    return render_keyed_matrix(table, "bench", title)


def render_fig9(rows: Sequence[Mapping], title: str = "Fig 9: triangle rate "
                "(cycles/tri), geometry vs whole pipeline",
                max_rows: int = 20) -> str:
    shown = rows[:max_rows]
    body = [[r["draw"], r["triangles"], r["geometry_rate"],
             r["pipeline_rate"]] for r in shown]
    table = render_table(["draw", "tris", "geo rate", "pipe rate"], body,
                         title)
    if len(rows) > max_rows:
        table += f"\n... ({len(rows) - max_rows} more draws)"
    return table


def render_fig14(table: Mapping, title: str = "Fig 14: cycle breakdown "
                 "(normalized to duplication)") -> str:
    lines = [title]
    for bench, per_scheme in table.items():
        lines.append(f"\n[{bench}]")
        data = {scheme: {stage: f"{share:.3f}"
                         for stage, share in stages.items() if share > 0}
                for scheme, stages in per_scheme.items()}
        lines.append(render_keyed_matrix(data, "scheme"))
    return "\n".join(lines)


def render_fig15(table: Mapping, title: str = "Fig 15: fragments passing "
                 "depth/stencil (normalized to duplication)") -> str:
    data = {}
    for bench, per_scheme in table.items():
        data[bench] = {}
        for scheme, parts in per_scheme.items():
            tag = "dup" if scheme == "duplication" else "chopin+"
            data[bench][f"{tag} early"] = parts["early"]
            data[bench][f"{tag} total"] = parts["total"]
    return render_keyed_matrix(data, "bench", title)


def render_fig16(rows: Sequence[Mapping], title: str = "Fig 16: sensitivity "
                 "to retained depth-culled fragments (ut3)") -> str:
    body = [[f"{r['retained_fraction']:.0%}", r["speedup"],
             f"{r['extra_fragments']:.1%}"] for r in rows]
    return render_table(["retained", "speedup", "extra frags"], body, title)


def render_fig17(traffic: Mapping, title: str = "Fig 17: composition "
                 "traffic (MB, paper-equivalent)") -> str:
    body = [[bench, mb] for bench, mb in traffic.items()]
    return render_table(["bench", "MB"], body, title)


def render_sweep(table: Mapping, axis_label: str, title: str) -> str:
    return render_keyed_matrix(table, axis_label, title)


def render_fault_summary(stats, title: str = "fault injection") -> str:
    """Human-readable recovery report for one run's RunStats.

    Shows link-retry counters whenever transient errors fired, and the
    fail-stop recovery block (survivor re-rendering, overhead vs. the
    fault-free baseline) whenever a GPU died mid-frame.
    """
    lines = [title + ":"] if title else []
    if stats.link_retries:
        lines.append(
            f"  link retries      : {stats.link_retries} "
            f"({stats.dropped_transfers} dropped, "
            f"{stats.corrupted_transfers} corrupted)")
        lines.append(
            f"  retransmitted     : {stats.retransmitted_bytes / 1e6:.2f} MB")
        lines.append(
            f"  detect+backoff    : {stats.backoff_cycles:,.0f} cycles")
    if stats.failed_gpus:
        gpus = ", ".join(f"GPU{g}" for g in stats.failed_gpus)
        lines.append(f"  fail-stopped      : {gpus}")
        lines.append(
            f"  redistributed     : {stats.redistributed_draws} draws "
            f"({stats.recovery_cycles:,.0f} engine cycles re-rendered)")
        lines.append(
            f"  recovery overhead : {stats.recovery_overhead_cycles:,.0f} "
            f"cycles vs fault-free baseline "
            f"({stats.baseline_frame_cycles:,.0f})")
    if len(lines) <= 1:
        return f"{title}: none" if title else "no faults"
    return "\n".join(lines)


def render_engine_summary(counters, failures: Sequence = (),
                          title: str = "engine") -> str:
    """Supervision report for one engine run (see repro.harness.engine).

    ``counters`` is an :class:`~repro.harness.engine.EngineCounters`;
    ``failures`` the failed :class:`~repro.harness.engine.JobOutcome`\\ s,
    each rendered with its classified cause so a ``FAILED`` cell in the
    table above is explained rather than mysterious.
    """
    c = counters
    lines = [f"{title}: {c.jobs} jobs "
             f"({c.completed} completed, {c.failed} failed, "
             f"{c.resumed} resumed from journal, {c.memo_hits} deduplicated)"]
    if c.retries or c.timeouts or c.crashes:
        lines.append(f"  retries  : {c.retries} "
                     f"({c.timeouts} timeouts, {c.crashes} worker crashes)")
    if getattr(c, "prewarmed", 0):
        lines.append(f"  prewarm  : {c.prewarmed} artifact(s) rendered "
                     f"into the store before dispatch")
    for outcome in failures:
        lines.append(f"  FAILED   : {outcome.spec.label} "
                     f"after {outcome.attempts} attempt(s) — "
                     f"{outcome.error}: {outcome.message}")
    return "\n".join(lines)


def render_dict(data: Mapping, title: str = "") -> str:
    body = [[key, value] for key, value in data.items()]
    return render_table(["key", "value"], body, title)


def render_table3(rows: Sequence[Mapping], title: str = "Table III: "
                  "benchmarks (paper-scale vs generated)") -> str:
    body = [[r["benchmark"], r["paper_resolution"], r["paper_draws"],
             r["paper_triangles"], r["run_resolution"], r["run_draws"],
             r["run_triangles"]] for r in rows]
    return render_table(
        ["bench", "paper res", "draws", "tris", "run res", "run draws",
         "run tris"], body, title)


def render_soak_report(report, title: str = "") -> str:
    """Per-frame table for a multi-frame soak run under a failure trace.

    ``report`` is a :class:`~repro.harness.engine.SoakReport`. Every frame
    shows its trace-event count, surviving fail-stops, frame time, recovery
    overhead vs. the fault-free oracle, and the bit-identity verdict.
    """
    head = title or (f"soak: {report.scheme} on {report.benchmark} "
                     f"({report.num_gpus} GPUs, trace "
                     f"{report.trace_fingerprint})")
    lines = [head]
    lines.append(f"  {'frame':>5}  {'events':>6}  {'dead GPUs':<12} "
                 f"{'cycles':>14}  {'overhead':>12}  image")
    for frame in report.frames:
        dead = ",".join(str(g) for g in frame.failed_gpus) or "-"
        verdict = "identical" if frame.bit_identical else "DIVERGED"
        lines.append(
            f"  {frame.frame_index:>5}  {frame.fault_events:>6}  "
            f"{dead:<12} {frame.frame_cycles:>14,.0f}  "
            f"{frame.recovery_overhead_cycles:>12,.0f}  {verdict}")
    lines.append(
        f"  {len(report.frames)} frames, {report.faulty_frames} with "
        f"faults, total recovery overhead "
        f"{report.total_recovery_overhead_cycles:,.0f} cycles "
        f"(oracle frame {report.frames[0].baseline_frame_cycles:,.0f})")
    if not report.all_identical:
        lines.append("  ERROR: at least one frame diverged from the "
                     "fault-free oracle")
    return "\n".join(lines)


def render_serve_report(report, title: str = "") -> str:
    """Overload/SLO report for one serve run.

    ``report`` is a :class:`~repro.serve.daemon.ServeReport`: the
    admission/shedding ledger, latency percentiles over completed
    requests, a per-session table, and the degraded-mode event log
    (GPU failures, revivals, watchdog trips).
    """
    stats = report.stats
    head = title or (f"serve: {report.scheme} on "
                     f"{'+'.join(report.benchmarks)} "
                     f"({report.groups} group(s) x {report.group_gpus} "
                     f"GPUs, policy {report.policy}, "
                     f"queue limit {report.queue_limit})")
    lines = [head]
    lines.append(
        f"  requests  : {stats.serve_requests} submitted, "
        f"{stats.serve_admitted} admitted, {stats.serve_completed} "
        f"completed, {stats.serve_rejected} rejected, "
        f"{stats.serve_throttled} throttled, {stats.serve_shed} shed")
    if report.shed_reasons:
        reasons = ", ".join(f"{reason}={count}" for reason, count
                            in sorted(report.shed_reasons.items()))
        lines.append(f"  shed by   : {reasons}")
    lines.append(
        f"  queue     : peak depth {stats.serve_queue_peak}, "
        f"{stats.serve_batches} batches, {stats.serve_requeued} requeues, "
        f"{stats.serve_deadline_misses} deadline misses")
    if stats.serve_overlapped_batches:
        lines.append(
            f"  overlap   : {stats.serve_overlapped_batches} "
            f"back-to-back batches pipelined, "
            f"{stats.serve_overlap_cycles:,.0f} cycles saved")
    lines.append(
        f"  latency   : p50 {stats.serve_latency_p50_cycles:,.0f}  "
        f"p95 {stats.serve_latency_p95_cycles:,.0f}  "
        f"p99 {stats.serve_latency_p99_cycles:,.0f} cycles "
        f"(mean {report.slo.mean_cycles:,.0f}, "
        f"max {report.slo.max_cycles:,.0f})")
    lines.append(
        f"  drained   : {report.drained_at_cycles:,.0f} cycles, "
        f"throughput {report.slo.throughput_per_mcycle:.2f} frames/Mcycle, "
        f"store hit rate {report.artifact_hit_rate:.0%}")
    lines.append(f"  {'session':>7}  {'subm':>5}  {'admit':>5}  "
                 f"{'done':>5}  {'shed':>5}  {'thrtl':>5}  "
                 f"{'hit rate':>8}  {'mean lat':>12}")
    for session in report.sessions:
        lines.append(
            f"  {session.session:>7}  {session.submitted:>5}  "
            f"{session.admitted:>5}  {session.completed:>5}  "
            f"{session.shed:>5}  {session.throttled:>5}  "
            f"{session.hit_rate:>8.0%}  "
            f"{session.latency_mean_cycles:>12,.0f}")
    for event in report.events:
        lines.append(f"  event     : cycle {event.time:,.0f} "
                     f"{event.kind} — {event.detail}")
    if report.degraded:
        lines.append("  DEGRADED  : the daemon finished in degraded mode "
                     "(see events above)")
    return "\n".join(lines)


def render_head_to_head(table: Mapping, title: str = "Composition "
                        "head-to-head: DES transports vs analytic "
                        "sort-last exchanges") -> str:
    """Render :func:`~repro.harness.experiments.composition_head_to_head`.

    One block per workload; rows are (GPU count, contender), columns the
    frame total, busy composition cycles and the pipelining counters. The
    analytic exchange rows model a synchronous frame-end composition, so
    their overlap/idle columns are zero by construction.
    """
    headers = ["gpus", "contender", "frame", "compose",
               "overlap", "idle", "stall"]
    blocks = []
    for workload, counts in table.items():
        rows = []
        for num_gpus, contenders in counts.items():
            for contender, cells in contenders.items():
                rows.append([num_gpus, contender,
                             cells["frame_cycles"],
                             cells["composition_cycles"],
                             cells["comp_overlap_cycles"],
                             cells["idle_cycles"],
                             cells["pipeline_stall_cycles"]])
        blocks.append(render_table(headers, rows, f"{title}\n[{workload}]"))
    return "\n\n".join(blocks)
