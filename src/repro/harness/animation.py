"""Multi-frame animation runs: SFR frame pacing vs AFR (paper §I).

SFR renders frames back-to-back on all GPUs — every frame's latency drops,
and display intervals track per-frame cost directly. AFR interleaves whole
frames across GPUs — throughput scales but latency doesn't, and cost
variance becomes pacing jitter (micro-stutter). :func:`compare_afr_sfr`
quantifies both on the same animated trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..sfr import AlternateFrameRendering
from ..traces.trace import Trace
from .runner import Setup, build_scheme


@dataclass
class AnimationResult:
    """Frame-by-frame timing of one scheme over a multi-frame trace."""

    scheme: str
    num_gpus: int
    frame_cycles: List[float] = field(default_factory=list)

    @property
    def completion_times(self) -> List[float]:
        return np.cumsum(self.frame_cycles).tolist()

    @property
    def display_intervals(self) -> np.ndarray:
        return np.asarray(self.frame_cycles)

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.frame_cycles))

    @property
    def micro_stutter(self) -> float:
        """Coefficient of variation of display intervals."""
        intervals = self.display_intervals
        mean = float(intervals.mean())
        return float(intervals.std() / mean) if mean else 0.0

    @property
    def total_cycles(self) -> float:
        return float(np.sum(self.frame_cycles))


def run_animation(scheme: str, trace: Trace,
                  setup: Setup) -> AnimationResult:
    """Render every frame of a multi-frame trace with an SFR scheme.

    Frames are independent single-frame renders executed back-to-back
    (inter-frame state such as temporal reprojection is out of scope).
    """
    result = AnimationResult(scheme=scheme, num_gpus=setup.config.num_gpus)
    for index, frame in enumerate(trace.frames):
        single = Trace(name=f"{trace.name}#{index}", width=trace.width,
                       height=trace.height, frames=[frame])
        run = build_scheme(scheme, setup).run(single)
        result.frame_cycles.append(run.frame_cycles)
    return result


def compare_afr_sfr(trace: Trace, setup: Setup,
                    sfr_scheme: str = "chopin+sched") -> Dict[str, object]:
    """AFR vs SFR on one animated trace: latency, throughput, stutter."""
    sfr = run_animation(sfr_scheme, trace, setup)
    afr = AlternateFrameRendering(setup.config, setup.costs).run(trace)
    afr_intervals = afr.display_intervals
    return {
        "frames": len(trace.frames),
        "num_gpus": setup.config.num_gpus,
        "sfr_scheme": sfr_scheme,
        "sfr_mean_latency": sfr.mean_latency,
        "afr_mean_latency": float(np.mean(afr.frame_cycles)),
        "sfr_stutter": sfr.micro_stutter,
        "afr_stutter": afr.micro_stutter,
        "sfr_total_cycles": sfr.total_cycles,
        "afr_total_cycles": float(max(afr.completion_times)),
        "afr_interval_max": float(afr_intervals.max())
        if len(afr_intervals) else 0.0,
    }
