"""Common machinery for split-frame-rendering scheme implementations.

Every scheme follows the same contract: ``scheme.run(trace)`` renders the
trace's frame on a simulated ``config.num_gpus``-GPU system and returns a
:class:`SchemeResult` holding

- the final framebuffer (which must match single-GPU rendering — the
  correctness invariant the test suite enforces across all schemes),
- a :class:`~repro.stats.RunStats` with per-GPU stage cycles and traffic,
- the end-to-end frame time in cycles (``stats.frame_cycles``), which is
  what all of the paper's speedup figures compare.

The functional single-GPU *reference pass* lives here too: it renders the
frame once with per-owner fragment attribution and records per-draw metrics.
Sort-first schemes (primitive duplication, GPUpd) reuse it directly because
every GPU observes the same depth history; CHOPIN runs its own per-GPU
functional pass (sort-last GPUs see partial depth).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..config import SystemConfig
from ..errors import PipelineError
from ..framebuffer.framebuffer import Framebuffer
from ..render import (DrawMetrics, ReferencePass, build_shader_library,
                      render_service)
from ..stats import RunStats
from ..timing.costs import CostModel
from ..traces.trace import Trace

__all__ = ["ReferencePass", "SFRScheme", "SchemeResult",
           "build_shader_library", "clear_reference_cache",
           "reference_pass", "render_reference_image"]


@dataclass
class SchemeResult:
    """Outcome of one simulated run."""

    scheme: str
    trace_name: str
    num_gpus: int
    stats: RunStats
    image: Framebuffer
    #: per-draw functional metrics in submission order (when recorded)
    draw_metrics: List[DrawMetrics] = field(default_factory=list)

    @property
    def frame_cycles(self) -> float:
        return self.stats.frame_cycles


def reference_pass(trace: Trace, config: SystemConfig,
                   use_cache: bool = True) -> ReferencePass:
    """Render the frame once on a virtual single GPU, attributing fragments
    to tile owners. Stored in the render service's artifact store, keyed
    by (trace fingerprint, num_gpus, tile_size)."""
    return render_service().reference_pass(trace, config,
                                           use_cache=use_cache)


def clear_reference_cache() -> None:
    """Deprecated: use ``render_service().reset()`` instead.

    The reference pass now lives in the content-addressed artifact store
    alongside every other functional artifact; this shim drops only the
    ``reference`` namespace, matching the old module cache's scope.
    """
    warnings.warn(
        "clear_reference_cache() is deprecated; use "
        "repro.render.render_service().reset() for the unified store",
        DeprecationWarning, stacklevel=2)
    render_service().reset("reference")


def render_reference_image(trace: Trace,
                           config: Optional[SystemConfig] = None) -> Framebuffer:
    """Ground-truth final image (single GPU, submission order)."""
    cfg = config or SystemConfig(num_gpus=1)
    return reference_pass(trace, cfg, use_cache=False).image


class SFRScheme:
    """Base class: holds the system config and the derived cost model."""

    name = "base"
    #: can this scheme finish a frame after a GPU fail-stops? Schemes that
    #: cannot must be rejected when the fault plan contains ``gpu_failures``
    #: (the harness enforces this).
    supports_fail_stop = False

    def __init__(self, config: SystemConfig,
                 costs: Optional[CostModel] = None) -> None:
        self.config = config
        self.costs = costs or CostModel(gpu=config.gpu)

    def run(self, trace: Trace) -> SchemeResult:
        raise NotImplementedError

    def _make_sim(self):
        """Simulator for one frame, honoring ``config.sanitize`` and the
        configured virtual-time watchdog budget (``--watchdog-cycles``)."""
        from ..sim import Simulator
        return Simulator(sanitize=self.config.sanitize,
                         watchdog_cycles=self.config.watchdog_cycles)

    @staticmethod
    def _run_sim_checked(sim, processes, stats=None) -> float:
        """Run the event loop and fail loudly on deadlock.

        A drained event queue with unfinished GPU processes means the
        protocol wedged (e.g., a circular port/gate dependency); silently
        returning a too-small frame time would corrupt every speedup figure.
        Under ``--sanitize``, same-cycle access conflicts observed during
        the run fail it here too, after the frame completes, and the
        sanitizer's coverage (shared-state accesses recorded) lands in
        ``stats.sanitizer_accesses`` when ``stats`` is given.
        """
        frame_cycles = sim.run()
        stuck = [p.name for p in processes if not p.triggered]
        if stuck:
            from ..errors import SimulationError
            raise SimulationError(
                f"simulation deadlocked with pending processes: {stuck}")
        if sim.sanitizer is not None:
            if stats is not None:
                stats.sanitizer_accesses = sim.sanitizer.accesses_recorded
            sim.sanitizer.raise_if_conflicts()
        return frame_cycles

    # -- shared helpers -----------------------------------------------------

    def _segments(self, trace: Trace,
                  prep: ReferencePass) -> List[Tuple[int, int]]:
        """Frame split into [start, end) draw ranges between sync points."""
        n = trace.frame.num_draws
        bounds = [0] + list(prep.sync_points) + [n]
        return [(a, b) for a, b in zip(bounds, bounds[1:]) if b > a]

    def _sync_broadcast_bytes(self, trace: Trace) -> float:
        """Per-GPU bytes broadcast at a render-target switch: each GPU sends
        its owned region of the current colour+depth surfaces to every peer."""
        own_pixels = trace.width * trace.height / self.config.num_gpus
        return own_pixels * self.config.effective_pixel_bytes

    def _check_image(self, result_image: Framebuffer,
                     reference: Framebuffer, tol: float = 2e-3) -> None:
        if not result_image.same_image(reference, tol=tol):
            raise PipelineError(
                f"{self.name}: final image deviates from single-GPU "
                f"reference by {result_image.max_color_error(reference):.4f}")
