"""Common machinery for split-frame-rendering scheme implementations.

Every scheme follows the same contract: ``scheme.run(trace)`` renders the
trace's frame on a simulated ``config.num_gpus``-GPU system and returns a
:class:`SchemeResult` holding

- the final framebuffer (which must match single-GPU rendering — the
  correctness invariant the test suite enforces across all schemes),
- a :class:`~repro.stats.RunStats` with per-GPU stage cycles and traffic,
- the end-to-end frame time in cycles (``stats.frame_cycles``), which is
  what all of the paper's speedup figures compare.

The functional single-GPU *reference pass* lives here too: it renders the
frame once with per-owner fragment attribution and records per-draw metrics.
Sort-first schemes (primitive duplication, GPUpd) reuse it directly because
every GPU observes the same depth history; CHOPIN runs its own per-GPU
functional pass (sort-last GPUs see partial depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..errors import PipelineError
from ..framebuffer.framebuffer import Framebuffer, SurfacePool
from ..geometry.primitives import DrawCommand
from ..raster.pipeline import DrawMetrics, GraphicsPipeline
from ..raster.tiles import TileGrid
from ..shading.shaders import ShaderLibrary
from ..shading.texture import checkerboard, value_noise
from ..stats import RunStats
from ..timing.costs import CostModel
from ..traces.trace import Trace


@dataclass
class SchemeResult:
    """Outcome of one simulated run."""

    scheme: str
    trace_name: str
    num_gpus: int
    stats: RunStats
    image: Framebuffer
    #: per-draw functional metrics in submission order (when recorded)
    draw_metrics: List[DrawMetrics] = field(default_factory=list)

    @property
    def frame_cycles(self) -> float:
        return self.stats.frame_cycles


def build_shader_library(trace: Trace,
                         num_textures: int = 4) -> ShaderLibrary:
    """Deterministic texture set for a trace (ids 0..num_textures-1)."""
    shaders = ShaderLibrary(trace.width, trace.height)
    for texture_id in range(num_textures):
        if texture_id % 2 == 0:
            texture = checkerboard(size=16, squares=4 + texture_id)
        else:
            texture = value_noise(size=16, seed=texture_id)
        shaders.register_texture(texture_id, texture)
    return shaders


@dataclass
class ReferencePass:
    """Single-GPU functional render with per-owner attribution."""

    trace: Trace
    num_gpus: int
    grid: TileGrid
    owner_map: np.ndarray
    pool: SurfacePool
    metrics: List[DrawMetrics]
    #: indices i such that a render-target/depth-buffer sync precedes draw i
    sync_points: List[int]
    #: per-surface touched masks at frame end {render_target: (H, W) bool}
    touched: Dict[int, np.ndarray]

    @property
    def image(self) -> Framebuffer:
        return self.pool.render_target(0)


_REFERENCE_CACHE: Dict[Tuple[int, int, int], ReferencePass] = {}


def reference_pass(trace: Trace, config: SystemConfig,
                   use_cache: bool = True) -> ReferencePass:
    """Render the frame once on a virtual single GPU, attributing fragments
    to tile owners. Cached per (trace, num_gpus, tile_size)."""
    key = (id(trace), config.num_gpus, config.tile_size)
    if use_cache and key in _REFERENCE_CACHE:
        return _REFERENCE_CACHE[key]

    frame = trace.frame
    grid = TileGrid(trace.width, trace.height, config.tile_size)
    owner_map = grid.owner_map(config.num_gpus)
    shaders = build_shader_library(trace)
    pipeline = GraphicsPipeline(trace.width, trace.height, shaders)
    pool = SurfacePool(trace.width, trace.height)
    metrics: List[DrawMetrics] = []
    sync_points: List[int] = []
    touched: Dict[int, np.ndarray] = {}

    previous: Optional[DrawCommand] = None
    for index, draw in enumerate(frame.draws):
        if previous is not None:
            prev_state, state = previous.state, draw.state
            if (prev_state.render_target != state.render_target
                    or prev_state.depth_buffer != state.depth_buffer):
                sync_points.append(index)
        mask = touched.setdefault(
            draw.state.render_target,
            np.zeros((trace.height, trace.width), dtype=bool))
        metrics.append(pipeline.execute_draw(
            draw, pool, mvp=trace.camera, owner_map=owner_map,
            num_owners=config.num_gpus, touched=mask))
        previous = draw

    result = ReferencePass(trace=trace, num_gpus=config.num_gpus, grid=grid,
                           owner_map=owner_map, pool=pool, metrics=metrics,
                           sync_points=sync_points, touched=touched)
    if use_cache:
        _REFERENCE_CACHE[key] = result
    return result


def clear_reference_cache() -> None:
    _REFERENCE_CACHE.clear()


def render_reference_image(trace: Trace,
                           config: Optional[SystemConfig] = None) -> Framebuffer:
    """Ground-truth final image (single GPU, submission order)."""
    cfg = config or SystemConfig(num_gpus=1)
    return reference_pass(trace, cfg, use_cache=False).image


class SFRScheme:
    """Base class: holds the system config and the derived cost model."""

    name = "base"
    #: can this scheme finish a frame after a GPU fail-stops? Schemes that
    #: cannot must be rejected when the fault plan contains ``gpu_failures``
    #: (the harness enforces this).
    supports_fail_stop = False

    def __init__(self, config: SystemConfig,
                 costs: Optional[CostModel] = None) -> None:
        self.config = config
        self.costs = costs or CostModel(gpu=config.gpu)

    def run(self, trace: Trace) -> SchemeResult:
        raise NotImplementedError

    def _make_sim(self):
        """Simulator for one frame, honoring ``config.sanitize``."""
        from ..sim import Simulator
        return Simulator(sanitize=self.config.sanitize)

    @staticmethod
    def _run_sim_checked(sim, processes, stats=None) -> float:
        """Run the event loop and fail loudly on deadlock.

        A drained event queue with unfinished GPU processes means the
        protocol wedged (e.g., a circular port/gate dependency); silently
        returning a too-small frame time would corrupt every speedup figure.
        Under ``--sanitize``, same-cycle access conflicts observed during
        the run fail it here too, after the frame completes, and the
        sanitizer's coverage (shared-state accesses recorded) lands in
        ``stats.sanitizer_accesses`` when ``stats`` is given.
        """
        frame_cycles = sim.run()
        stuck = [p.name for p in processes if not p.triggered]
        if stuck:
            from ..errors import SimulationError
            raise SimulationError(
                f"simulation deadlocked with pending processes: {stuck}")
        if sim.sanitizer is not None:
            if stats is not None:
                stats.sanitizer_accesses = sim.sanitizer.accesses_recorded
            sim.sanitizer.raise_if_conflicts()
        return frame_cycles

    # -- shared helpers -----------------------------------------------------

    def _segments(self, trace: Trace,
                  prep: ReferencePass) -> List[Tuple[int, int]]:
        """Frame split into [start, end) draw ranges between sync points."""
        n = trace.frame.num_draws
        bounds = [0] + list(prep.sync_points) + [n]
        return [(a, b) for a, b in zip(bounds, bounds[1:]) if b > a]

    def _sync_broadcast_bytes(self, trace: Trace) -> float:
        """Per-GPU bytes broadcast at a render-target switch: each GPU sends
        its owned region of the current colour+depth surfaces to every peer."""
        own_pixels = trace.width * trace.height / self.config.num_gpus
        return own_pixels * self.config.effective_pixel_bytes

    def _check_image(self, result_image: Framebuffer,
                     reference: Framebuffer, tol: float = 2e-3) -> None:
        if not result_image.same_image(reference, tol=tol):
            raise PipelineError(
                f"{self.name}: final image deviates from single-GPU "
                f"reference by {result_image.max_color_error(reference):.4f}")
