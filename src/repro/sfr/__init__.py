"""Split-frame-rendering schemes: duplication, GPUpd, CHOPIN, AFR."""

from .base import (ReferencePass, SchemeResult, SFRScheme,
                   build_shader_library, clear_reference_cache,
                   reference_pass, render_reference_image)
from .duplication import PrimitiveDuplication
from .gpupd import GPUpd, IdealGPUpd, clear_projection_cache
from .chopin import (Chopin, ChopinOracle, ChopinRoundRobin, ChopinSampled,
                     ChopinWithScheduler, IdealChopin, clear_chopin_cache)
from .dfb import DistributedFramebufferChopin
from .sort_middle import SortMiddle
from .afr import AFRResult, AlternateFrameRendering, frame_render_cycles

__all__ = [
    "AFRResult",
    "AlternateFrameRendering",
    "Chopin",
    "ChopinOracle",
    "ChopinRoundRobin",
    "ChopinSampled",
    "ChopinWithScheduler",
    "DistributedFramebufferChopin",
    "GPUpd",
    "IdealChopin",
    "IdealGPUpd",
    "PrimitiveDuplication",
    "ReferencePass",
    "SchemeResult",
    "SFRScheme",
    "SortMiddle",
    "build_shader_library",
    "clear_chopin_cache",
    "clear_projection_cache",
    "clear_reference_cache",
    "frame_render_cycles",
    "reference_pass",
    "render_reference_image",
]
