"""CHOPIN: sort-last SFR with parallel image composition (paper §III-B/IV).

Execution model per composition group (Fig 7):

- **duplicate** groups (below the primitive threshold) run as conventional
  SFR: every GPU processes the group's geometry, fragments stay in each
  GPU's own tiles, and no composition is needed;
- **opaque** groups distribute whole draw commands across GPUs via the draw
  command scheduler; each GPU renders its draws over the *full* screen into
  its local surfaces, and at the group boundary the sub-images are
  depth-composited out-of-order;
- **transparent** groups split the group's primitives into equal contiguous
  chunks, render each into a fresh layer (cleared to the blend operator's
  identity), and reduce *adjacent* layers as soon as both are available
  (associativity), finally blending the composed layer over the background
  exactly once.

The scheme runs in three passes:

1. an **assignment pass** — an analytic replay of the driver issuing draws
   (one per ``draw_issue_cost`` cycles) to the GPU with the fewest remaining
   geometry-stage triangles, with progress reported at the configured
   update interval (Fig 18's knob). Assignment depends only on
   geometry-side timing, so it is identical across link configurations;
2. a **functional pass** — per-GPU rendering with *local* surfaces (each
   GPU's depth buffer knows only its own draws plus composed results for
   its owned tiles — the source of CHOPIN's extra shaded fragments,
   §VI-B/Fig 15), followed by exact sub-image composition, producing the
   final image, fragment counts, and per-pair composition traffic;
3. a **timing pass** — the cycle-level DES: pipelined GPU engines, the
   interconnect with port contention, and either naive direct-send
   (transfers gated on busy receivers congest the fabric) or the image
   composition scheduler (only ready+idle pairs exchange).

Correctness invariant (tested): the final image equals single-GPU rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..composition.compositor import (SubImage, blend_merge, composite_opaque,
                                      resolve_to_background)
from ..composition.dfb import plan_group_tiles, tree_edge_tile_sizes
from ..composition.operators import identity_for
from ..config import SystemConfig
from ..core.composition_scheduler import ImageCompositionScheduler
from ..core.draw_scheduler import (DrawScheduler,
                                   LeastRemainingTrianglesScheduler,
                                   OracleLPTScheduler, RoundRobinScheduler,
                                   SampledRateScheduler)
from ..core.workflow import (GroupMode, GroupPlan, PipelineWindow,
                             plan_trace_frame, summarize_plan)
from ..errors import FaultError, SchedulingError
from ..faults.degraded import (first_unfinished_group, merge_chunks,
                               nearest_survivor, rebuild_reduction,
                               redistribute_draw_works, repair_region_matrix,
                               repair_tile_owner, repair_tile_sources,
                               scatter_sizes, tile_owner_matrix,
                               tile_pixel_counts)
from ..faults.plan import FaultPlan
from ..framebuffer.depth import DEPTH_CLEAR
from ..framebuffer.framebuffer import Framebuffer, SurfacePool
from ..raster.tiles import TileGrid
from ..render import render_service
from ..sim import Barrier, Countdown, Event, Simulator
from ..stats import (RunStats, STAGE_COMPOSITION, TRAFFIC_COMPOSITION,
                     TRAFFIC_SYNC)
from ..timing.gpu import DrawWork, GPUEngine
from ..timing.interconnect import Interconnect
from ..traces.trace import Trace
from .base import SchemeResult, SFRScheme

#: bytes per depth-buffer pixel broadcast during transparent-group sync
DEPTH_BYTES = 4


@dataclass
class _FragTally:
    """Per-GPU functional fragment counters accumulated by the prep pass."""

    generated: int = 0
    shaded: int = 0
    early_tested: int = 0
    early_passed: int = 0
    late_passed: int = 0


@dataclass
class _GroupPrep:
    """Everything the timing pass needs for one composition group."""

    plan: GroupPlan
    mode: GroupMode
    #: [gpu] -> DrawWork list (all modes)
    works: List[List[DrawWork]] = field(default_factory=list)
    #: [gpu] -> issue time (cycles after group start) per work (opaque only)
    issue_times: List[List[float]] = field(default_factory=list)
    #: composition message pixels, src -> dst (opaque only)
    region_pixels: Optional[np.ndarray] = None
    #: adjacent-pair reduction levels: [[(sender, receiver, pixels)]]
    tree_levels: List[List[Tuple[int, int, int]]] = field(default_factory=list)
    #: final scatter pixels root -> gpu (transparent only; index 0 = root)
    scatter_pixels: Optional[List[int]] = None
    #: [gpu] -> touched-tile bitmap of its layer (transparent only); lets
    #: degraded mode rebuild the reduction tree over any survivor set
    layer_tiles: List[np.ndarray] = field(default_factory=list)
    #: [gpu] -> touched-tile bitmap of its sub-image (opaque only); the
    #: DFB scheme streams exactly these tiles to their owners
    touched_tiles: List[np.ndarray] = field(default_factory=list)


@dataclass
class _ChopinPrep:
    """Cached functional-pass output for one (trace, config, variant)."""

    groups: List[_GroupPrep]
    image: Framebuffer
    tallies: List[_FragTally]
    total_groups: int
    accelerated_groups: int
    #: (tiles_y, tiles_x) pixel area / owning GPU of every tile, for
    #: degraded-mode tree rebuild and tile inheritance
    tile_pixels: Optional[np.ndarray] = None
    tile_owner: Optional[np.ndarray] = None


@dataclass
class _GroupRepair:
    """Recovery actions for one composition group after fail-stop(s)."""

    #: GPUs still running when this group executes / GPUs dead by then
    alive: List[int]
    dead: List[int]
    #: survivor -> [(work, issue_offset, not_before_cycle)] — draws adopted
    #: from dead GPUs; ``not_before`` is the failure (detection) cycle
    adopted: Dict[int, List[Tuple[DrawWork, float, float]]] = field(
        default_factory=dict)
    #: repaired src->dst composition matrix (opaque groups)
    region_pixels: Optional[np.ndarray] = None
    #: repaired tile-source bitmaps and tile ownership (opaque groups, DFB:
    #: survivors stream the dead GPUs' tiles, inheritors own their regions)
    touched_tiles: Optional[List[np.ndarray]] = None
    tile_owner: Optional[np.ndarray] = None
    #: rebuilt reduction tree + scatter over survivors (transparent groups)
    tree_levels: Optional[List[List[Tuple[int, int, int]]]] = None
    scatter_sizes: Optional[Dict[int, int]] = None
    root: int = 0
    #: merged per-survivor layer bitmaps (transparent groups, DFB streams)
    layer_bitmaps: Optional[Dict[int, np.ndarray]] = None


@dataclass
class _DegradedPlan:
    """Frame-level recovery plan derived from the fault-free baseline.

    ``failure_group[gpu]`` is the first group the dead GPU cannot complete
    (groups before it ran normally); ``repairs[gi]`` exists for every group
    at which at least one GPU is dead.
    """

    failure_group: Dict[int, int]
    repairs: Dict[int, _GroupRepair]
    redistributed_draws: int = 0
    recovery_cycles: float = 0.0


def clear_chopin_cache() -> None:
    """Drop cached CHOPIN functional preps from the artifact store.

    Kept for callers that want a targeted invalidation;
    ``render_service().reset()`` clears every namespace at once.
    """
    render_service().reset("chopin-prep")


class Chopin(SFRScheme):
    """CHOPIN with naive direct-send composition (no composition scheduler)."""

    name = "chopin"
    use_composition_scheduler = False
    #: how opaque sub-images travel: ``"subimage"`` exchanges whole
    #: per-region messages at the group boundary; ``"tiles"`` (the DFB
    #: scheme) streams fixed-size tiles to their owners with no receiver
    #: gating, and transparent tree edges stream per tile too
    composition_style = "subimage"
    #: CHOPIN can finish a frame after a GPU fail-stops (degraded mode)
    supports_fail_stop = True

    def __init__(self, config: SystemConfig, costs=None,
                 draw_scheduler: str = "least-remaining") -> None:
        super().__init__(config, costs)
        if draw_scheduler not in ("least-remaining", "round-robin",
                                  "oracle", "sampled"):
            raise SchedulingError(
                f"unknown draw scheduler {draw_scheduler!r}")
        self.draw_scheduler_kind = draw_scheduler

    # ------------------------------------------------------------------ API

    def run(self, trace: Trace) -> SchemeResult:
        prep = self._functional_pass(trace)
        plan = self.config.faults
        if plan is None or not plan.gpu_failures:
            result, _ = self._timing_pass(trace, prep)
            return result

        # Fail-stop recovery (static-partition degraded mode): run the
        # fault-free baseline to learn each GPU's per-group involvement
        # timeline, map every failure cycle onto the first group that GPU
        # cannot complete, then re-run timing with survivors adopting the
        # dead GPUs' work from that group on. The composed image is
        # assignment-independent — every draw is still rendered by some
        # survivor — so the functional image stays exact; the cost of
        # recovery shows up as extra frame cycles vs. the baseline.
        baseline, ends = self._timing_pass(trace, prep, link_faults=False)
        degraded = self._plan_degradation(prep, plan, ends)
        if degraded is None:
            # Every failure lands after the frame already completed.
            result, _ = self._timing_pass(trace, prep)
            return result
        result, _ = self._timing_pass(trace, prep, degraded=degraded)
        stats = result.stats
        stats.failed_gpus = sorted(degraded.failure_group)
        stats.redistributed_draws = degraded.redistributed_draws
        stats.recovery_cycles = degraded.recovery_cycles
        stats.baseline_frame_cycles = baseline.stats.frame_cycles
        return result

    def _plan_degradation(self, prep: _ChopinPrep, plan: FaultPlan,
                          ends: List[List[float]],
                          ) -> Optional[_DegradedPlan]:
        """Build per-group repairs from baseline involvement timelines."""
        n = self.config.num_gpus
        num_groups = len(prep.groups)
        failure_group: Dict[int, int] = {}
        for failure in plan.gpu_failures:
            fg = first_unfinished_group(ends[failure.gpu], failure.cycle)
            if fg < num_groups:
                failure_group[failure.gpu] = fg
        if not failure_group:
            return None
        fail_cycle = {f: plan.failure_cycle(f) for f in failure_group}
        dplan = _DegradedPlan(failure_group=failure_group, repairs={})

        for gi, gp in enumerate(prep.groups):
            dead = sorted(f for f, fg in failure_group.items() if fg <= gi)
            if not dead:
                continue
            alive = [g for g in range(n) if g not in dead]
            if not alive:
                raise FaultError(
                    f"no GPU survives to execute composition group {gi}")
            inherit = {f: nearest_survivor(f, alive) for f in dead}
            repair = _GroupRepair(alive=alive, dead=dead)

            def adopt(survivor: int, work: DrawWork, offset: float,
                      source: int) -> None:
                repair.adopted.setdefault(survivor, []).append(
                    (work, offset, fail_cycle[source]))
                dplan.redistributed_draws += 1
                dplan.recovery_cycles += (work.geometry_cycles
                                          + work.fragment_cycles)

            if gp.mode is GroupMode.DUPLICATE:
                # SFR tiles: the inheritor re-renders the group to cover
                # the dead GPU's owned tiles.
                for f in dead:
                    for work in gp.works[f]:
                        adopt(inherit[f], work, 0.0, f)
            elif gp.mode is GroupMode.OPAQUE_PARALLEL:
                # Re-issue the dead GPUs' draws across all survivors via
                # the paper's own least-remaining-triangles scheduler,
                # seeded with the survivors' existing loads.
                lost = []
                for f in dead:
                    lost.extend(
                        (work, when, f)
                        for work, when in zip(gp.works[f],
                                              gp.issue_times[f]))
                lost.sort(key=lambda item: item[1])
                base = {g: sum(w.triangles for w in gp.works[g])
                        for g in alive}
                targets = redistribute_draw_works(
                    [work for work, _, _ in lost], alive, base, n)
                for (work, when, f), survivor in zip(lost, targets):
                    adopt(survivor, work, when, f)
                repair.region_pixels = repair_region_matrix(
                    gp.region_pixels, dead, inherit)
                repair.touched_tiles = repair_tile_sources(
                    gp.touched_tiles, dead, inherit)
                repair.tile_owner = repair_tile_owner(
                    prep.tile_owner, dead, inherit)
            else:  # transparent: merge chunks into adjacent survivors
                merged = merge_chunks(list(range(n)), dead, inherit)
                bitmaps: Dict[int, np.ndarray] = {}
                for survivor, chunk_ids in sorted(merged.items()):
                    bitmap = np.zeros_like(gp.layer_tiles[survivor])
                    for chunk in chunk_ids:
                        bitmap |= gp.layer_tiles[chunk]
                        if chunk != survivor:
                            for work in gp.works[chunk]:
                                adopt(survivor, work, 0.0, chunk)
                    bitmaps[survivor] = bitmap
                levels, root, root_bitmap = rebuild_reduction(
                    sorted(merged), bitmaps, prep.tile_pixels)
                repair.tree_levels = levels
                repair.root = root
                repair.scatter_sizes = scatter_sizes(
                    root_bitmap, prep.tile_pixels, prep.tile_owner,
                    dead, inherit)
                repair.layer_bitmaps = bitmaps
            dplan.repairs[gi] = repair
        return dplan

    # -------------------------------------------------------- assignment

    def _make_scheduler(self, draws=()) -> DrawScheduler:
        if self.draw_scheduler_kind == "round-robin":
            return RoundRobinScheduler(self.config.num_gpus)
        if self.draw_scheduler_kind == "oracle":
            # Unrealistic upper bound (§IV-D: exact runtimes are unknown
            # before execution): least-loaded by estimated *total* cycles.
            return OracleLPTScheduler(
                self.config.num_gpus,
                costs=[self._estimate_draw_cycles(d) for d in draws])
        if self.draw_scheduler_kind == "sampled":
            # OO-VR-style: rates sampled from the first draws, reused for
            # the frame (the §IV-D strawman the paper rejects).
            return SampledRateScheduler(
                self.config.num_gpus, self._sampled_estimates(draws))
        return LeastRemainingTrianglesScheduler(self.config.num_gpus)

    def _sampled_estimates(self, draws, sample_size: int = 8):
        """Wimmer-Wonka ``c1*#tv + c2*#pix`` with rates frozen from the
        first ``sample_size`` draws."""
        sample = list(draws)[:sample_size] or list(draws)
        if not sample:
            return []
        c1 = float(np.mean([d.vertex_cost for d in sample])) \
            / self.config.gpu.num_sms
        c2 = float(np.mean([d.pixel_cost for d in sample])) \
            / self.config.gpu.num_rops
        estimates = []
        for draw in draws:
            pixels = self._estimate_draw_pixels(draw)
            estimates.append(c1 * draw.num_triangles + c2 * pixels)
        return estimates

    def _estimate_draw_pixels(self, draw) -> float:
        """Area-based pixel estimate against a nominal 10k-pixel screen."""
        edges_a = draw.positions[:, 1, :2] - draw.positions[:, 0, :2]
        edges_b = draw.positions[:, 2, :2] - draw.positions[:, 0, :2]
        area_ndc = 0.5 * np.abs(edges_a[:, 0] * edges_b[:, 1]
                                - edges_a[:, 1] * edges_b[:, 0]).sum()
        return float(area_ndc) / 4.0 * 0.5 * 10_000

    def _estimate_draw_cycles(self, draw) -> float:
        """Geometry plus area-based fragment estimate for one draw."""
        geometry = self.costs.geometry_cycles(draw.num_triangles,
                                              draw.vertex_cost)
        edges_a = draw.positions[:, 1, :2] - draw.positions[:, 0, :2]
        edges_b = draw.positions[:, 2, :2] - draw.positions[:, 0, :2]
        area_ndc = 0.5 * np.abs(edges_a[:, 0] * edges_b[:, 1]
                                - edges_a[:, 1] * edges_b[:, 0]).sum()
        # NDC covers 4 units^2; assume ~half the coverage survives early-Z
        # and price it against a nominal 10k-pixel screen — LPT only needs
        # *relative* costs, so the nominal size cancels out.
        screen_fraction = float(area_ndc) / 4.0 * 0.5
        fragments = int(screen_fraction * 10_000)
        return geometry + self.costs.fragment_cycles(
            draw.num_triangles, fragments, draw.pixel_cost)

    def _assign_group(self, draws) -> Tuple[List[int], List[float]]:
        """Analytic driver replay: per-draw GPU assignment + issue times."""
        n = self.config.num_gpus
        scheduler = self._make_scheduler(draws)
        issue_cost = self.costs.draw_issue_cost
        interval = max(1, self.config.scheduler_update_interval)
        free_at = [0.0] * n
        pending: List[List[Tuple[float, int]]] = [[] for _ in range(n)]
        pointers = [0] * n
        assignment: List[int] = []
        issue_times: List[float] = []
        for k, draw in enumerate(draws):
            now = k * issue_cost
            for gpu in range(n):
                chunks = pending[gpu]
                while (pointers[gpu] < len(chunks)
                       and chunks[pointers[gpu]][0] <= now):
                    scheduler.report_processed(
                        gpu, chunks[pointers[gpu]][1])
                    pointers[gpu] += 1
            gpu = scheduler.pick(draw.num_triangles)
            assignment.append(gpu)
            issue_times.append(now)
            triangles = draw.num_triangles
            if triangles:
                cycles = self.costs.geometry_cycles(
                    triangles, draw.vertex_cost)
                start = max(free_at[gpu], now)
                per_tri = cycles / triangles
                done = 0
                while done < triangles:
                    chunk = min(interval, triangles - done)
                    done += chunk
                    pending[gpu].append((start + done * per_tri, chunk))
                free_at[gpu] = start + cycles
        return assignment, issue_times

    # -------------------------------------------------------- functional

    def _prep_fields(self, trace: Trace) -> dict:
        """Identifying fields of this variant's functional prep artifact."""
        cfg = self.config
        return {
            # bumped when the prep *content* changes shape: rev 2 added the
            # per-GPU touched-tile bitmaps of opaque groups (DFB streaming)
            "prep_rev": 2,
            "trace": trace.fingerprint, "num_gpus": cfg.num_gpus,
            "tile_size": cfg.tile_size,
            "composition_threshold": cfg.composition_threshold,
            "scheduler_update_interval": cfg.scheduler_update_interval,
            "retained_cull_fraction": cfg.retained_cull_fraction,
            "draw_scheduler": self.draw_scheduler_kind,
            "draw_issue_cost": self.costs.draw_issue_cost,
            "model_memory": self.costs.model_memory,
            "fragment_memory_bytes": self.costs.fragment_memory_bytes,
            "l2_hit_rate": self.costs.l2_hit_rate,
            "dram_bandwidth_bytes_per_s":
                self.costs.gpu.dram_bandwidth_bytes_per_s,
        }

    def _functional_pass(self, trace: Trace) -> _ChopinPrep:
        return render_service().cached(
            "chopin-prep", self._prep_fields(trace),
            lambda: self._compute_functional_pass(trace))

    def _compute_functional_pass(self, trace: Trace) -> _ChopinPrep:
        cfg = self.config
        n = cfg.num_gpus
        width, height = trace.width, trace.height
        grid = TileGrid(width, height, cfg.tile_size)
        own_masks = [grid.gpu_pixel_mask(g, n) for g in range(n)]
        owner_map = grid.owner_map(n)
        session = render_service().session(trace)
        global_pool = SurfacePool(width, height)
        local_pools = [SurfacePool(width, height) for _ in range(n)]
        rng = np.random.default_rng(0xC40F1)
        tallies = [_FragTally() for _ in range(n)]

        plans = plan_trace_frame(trace, cfg)
        group_preps: List[_GroupPrep] = []
        for plan in plans:
            if plan.mode is GroupMode.DUPLICATE:
                group_preps.append(self._prep_duplicate(
                    plan, session, global_pool, local_pools, own_masks,
                    owner_map, tallies))
            elif plan.mode is GroupMode.OPAQUE_PARALLEL:
                group_preps.append(self._prep_opaque(
                    plan, session, global_pool, local_pools, own_masks,
                    grid, tallies, rng))
            else:
                group_preps.append(self._prep_transparent(
                    plan, session, global_pool, local_pools, own_masks,
                    grid, tallies))

        summary = summarize_plan(plans)
        return _ChopinPrep(groups=group_preps,
                           image=global_pool.render_target(0).copy(),
                           tallies=tallies,
                           total_groups=summary.total_groups,
                           accelerated_groups=summary.accelerated_groups,
                           tile_pixels=tile_pixel_counts(grid),
                           tile_owner=tile_owner_matrix(grid, n))

    def _tally(self, tallies, gpu: int, metrics, early_z: bool) -> None:
        tally = tallies[gpu]
        tally.generated += metrics.fragments_generated
        tally.shaded += metrics.fragments_shaded
        if early_z:
            tally.early_tested += metrics.early_z_tested
            tally.early_passed += metrics.early_z_passed
        tally.late_passed += metrics.late_passed

    def _refresh_own_regions(self, plan, global_pool, local_pools,
                             own_masks) -> None:
        """Composed results land at region owners: each GPU's local surfaces
        become authoritative (= global) inside its own tiles."""
        rt, db = plan.group.render_target, plan.group.depth_buffer
        global_color = global_pool.render_target(rt).color
        global_depth = global_pool.depth_buffer(db)
        for gpu, mask in enumerate(own_masks):
            local_pools[gpu].render_target(rt).color[mask] = global_color[mask]
            local_pools[gpu].depth_buffer(db)[mask] = global_depth[mask]

    def _prep_duplicate(self, plan, session, global_pool, local_pools,
                        own_masks, owner_map, tallies) -> _GroupPrep:
        """Below-threshold group: conventional SFR, no composition."""
        n = self.config.num_gpus
        works: List[List[DrawWork]] = [[] for _ in range(n)]
        for draw in plan.group.draws:
            metrics = session.execute_draw(
                draw, global_pool, owner_map=owner_map, num_owners=n)
            for gpu in range(n):
                generated = int(metrics.generated_by_owner[gpu])
                shaded = int(metrics.shaded_by_owner[gpu])
                passed = int(metrics.passed_by_owner[gpu])
                tally = tallies[gpu]
                tally.generated += generated
                tally.shaded += shaded
                if draw.state.early_z:
                    tally.early_tested += generated
                    tally.early_passed += passed
                else:
                    tally.late_passed += passed
                works[gpu].append(DrawWork(
                    draw_id=draw.draw_id,
                    triangles=draw.num_triangles,
                    geometry_cycles=self.costs.geometry_cycles(
                        draw.num_triangles, draw.vertex_cost),
                    fragment_cycles=self.costs.fragment_cycles(
                        metrics.triangles_rasterized, shaded,
                        draw.pixel_cost),
                    fragments=shaded))
        self._refresh_own_regions(plan, global_pool, local_pools, own_masks)
        return _GroupPrep(plan=plan, mode=plan.mode, works=works)

    def _prep_opaque(self, plan, session, global_pool, local_pools,
                     own_masks, grid, tallies, rng) -> _GroupPrep:
        """Scheduled draws, full-screen local rendering, depth composition."""
        cfg = self.config
        n = cfg.num_gpus
        draws = plan.group.draws
        assignment, issue_times = self._assign_group(draws)
        touched = [np.zeros((grid.height, grid.width), dtype=bool)
                   for _ in range(n)]
        works: List[List[DrawWork]] = [[] for _ in range(n)]
        issues: List[List[float]] = [[] for _ in range(n)]
        for draw, gpu, when in zip(draws, assignment, issue_times):
            metrics = session.execute_draw(
                draw, local_pools[gpu], touched=touched[gpu],
                retained_cull_fraction=cfg.retained_cull_fraction, rng=rng)
            self._tally(tallies, gpu, metrics, draw.state.early_z)
            works[gpu].append(DrawWork(
                draw_id=draw.draw_id,
                triangles=draw.num_triangles,
                geometry_cycles=self.costs.geometry_cycles(
                    draw.num_triangles, draw.vertex_cost),
                fragment_cycles=self.costs.fragment_cycles(
                    metrics.triangles_rasterized, metrics.fragments_shaded,
                    draw.pixel_cost),
                fragments=metrics.fragments_shaded))
            issues[gpu].append(when)

        rt, db = plan.group.render_target, plan.group.depth_buffer
        subimages = [SubImage(color=local_pools[g].render_target(rt).color,
                              depth=local_pools[g].depth_buffer(db),
                              touched=touched[g]) for g in range(n)]
        composed = composite_opaque(subimages)
        resolve_to_background(global_pool.render_target(rt).color,
                              global_pool.depth_buffer(db), composed,
                              plan.group.blend_op)

        region_pixels = np.zeros((n, n), dtype=np.int64)
        for src in range(n):
            sizes = grid.region_sizes_to_gpus(touched[src], n)
            for dst, pixels in sizes.items():
                if dst != src:
                    region_pixels[src, dst] = pixels
        self._refresh_own_regions(plan, global_pool, local_pools, own_masks)
        return _GroupPrep(plan=plan, mode=plan.mode, works=works,
                          issue_times=issues, region_pixels=region_pixels,
                          touched_tiles=[grid.touched_tiles(touched[g])
                                         for g in range(n)])

    def _prep_transparent(self, plan, session, global_pool, local_pools,
                          own_masks, grid, tallies) -> _GroupPrep:
        """Even contiguous split, adjacent-pair associative reduction."""
        cfg = self.config
        n = cfg.num_gpus
        rt, db = plan.group.render_target, plan.group.depth_buffer
        op = plan.group.blend_op
        global_depth = global_pool.depth_buffer(db)
        # Depth sync: transparent fragments must occlusion-test against the
        # full composed depth, which lives distributed at region owners.
        for gpu in range(n):
            local_pools[gpu].depth_buffer(db)[:] = global_depth

        works: List[List[DrawWork]] = [[] for _ in range(n)]
        layers: List[SubImage] = []
        layer_tiles: List[np.ndarray] = []
        clear_depth = np.full((grid.height, grid.width), DEPTH_CLEAR,
                              dtype=np.float32)
        for gpu, chunk in enumerate(plan.chunks):
            layer_fb = Framebuffer(grid.width, grid.height)
            layer_fb.color[:] = identity_for(op)
            temp_pool = SurfacePool(grid.width, grid.height)
            temp_pool.install_render_target(rt, layer_fb)
            temp_pool.install_depth_buffer(
                db, local_pools[gpu].depth_buffer(db))
            touched = np.zeros((grid.height, grid.width), dtype=bool)
            for draw in chunk:
                metrics = session.execute_draw(draw, temp_pool,
                                               touched=touched)
                self._tally(tallies, gpu, metrics, draw.state.early_z)
                works[gpu].append(DrawWork(
                    draw_id=draw.draw_id,
                    triangles=draw.num_triangles,
                    geometry_cycles=self.costs.geometry_cycles(
                        draw.num_triangles, draw.vertex_cost),
                    fragment_cycles=self.costs.fragment_cycles(
                        metrics.triangles_rasterized,
                        metrics.fragments_shaded, draw.pixel_cost),
                    fragments=metrics.fragments_shaded))
            layers.append(SubImage(color=layer_fb.color,
                                   depth=clear_depth.copy(),
                                   touched=touched))
            layer_tiles.append(grid.touched_tiles(touched))

        # Adjacent-pair reduction tree (receiver = lower/earlier side).
        tree_levels: List[List[Tuple[int, int, int]]] = []
        current = dict(enumerate(layers))
        survivors = list(range(n))
        while len(survivors) > 1:
            level: List[Tuple[int, int, int]] = []
            nxt = []
            for i in range(0, len(survivors) - 1, 2):
                receiver, sender = survivors[i], survivors[i + 1]
                pixels = _tile_covered_pixels(current[sender].touched, grid)
                current[receiver] = blend_merge(
                    current[receiver], current[sender], op)
                level.append((sender, receiver, pixels))
                nxt.append(receiver)
            if len(survivors) % 2 == 1:
                nxt.append(survivors[-1])
            survivors = nxt
            tree_levels.append(level)

        root_layer = current[0]
        scatter_map = grid.region_sizes_to_gpus(root_layer.touched, n)
        scatter_pixels = [scatter_map.get(g, 0) for g in range(n)]
        resolve_to_background(global_pool.render_target(rt).color,
                              global_pool.depth_buffer(db), root_layer, op,
                              depth_write=False)
        self._refresh_own_regions(plan, global_pool, local_pools, own_masks)
        return _GroupPrep(plan=plan, mode=plan.mode, works=works,
                          tree_levels=tree_levels,
                          scatter_pixels=scatter_pixels,
                          layer_tiles=layer_tiles)

    # ------------------------------------------------------------ timing

    def _timing_pass(self, trace: Trace, prep: _ChopinPrep,
                     degraded: Optional[_DegradedPlan] = None,
                     link_faults: bool = True,
                     ) -> Tuple[SchemeResult, List[List[float]]]:
        """Run the DES; returns the result plus each GPU's per-group
        involvement-end timeline (used to place fail-stops).

        With ``degraded`` set, repaired groups run over the survivor set:
        adopted draws execute on survivors (gated on the failure cycle),
        composition excludes the dead GPUs, and transparent groups use the
        rebuilt reduction trees and per-group barriers. ``link_faults=False``
        forces perfect links (the fault-free baseline pass).
        """
        cfg = self.config
        n = cfg.num_gpus
        stats = RunStats(num_gpus=n)
        stats.composition_groups = prep.total_groups
        stats.accelerated_groups = prep.accelerated_groups
        sim = self._make_sim()
        engines = [GPUEngine(sim, g, self.costs, stats.gpus[g],
                             update_interval=1 << 30)
                   for g in range(n)]
        interconnect = Interconnect(
            sim, cfg, stats,
            fault_plan=cfg.faults if link_faults else None)
        barrier = Barrier(sim, n)
        pixel_bytes = cfg.pixel_bytes
        samples = cfg.msaa_samples
        num_groups = len(prep.groups)
        ends = [[0.0] * num_groups for _ in range(n)]

        def note_end(gpu: int, gi: int) -> None:
            if sim.now > ends[gpu][gi]:
                ends[gpu][gi] = sim.now

        def repair_of(gi: int) -> Optional[_GroupRepair]:
            if degraded is None:
                return None
            return degraded.repairs.get(gi)

        # Per-GPU cross-group pipeline window: bounds how many rendered
        # groups may await their own composition (``None`` = unbounded).
        windows = [PipelineWindow(cfg.pipeline_depth) for _ in range(n)]
        stall_cycles = [0.0] * n
        overlap_cycles = [0.0] * n
        last_render_end = [0.0] * n

        # Pre-build per-group synchronization objects (no intra-sim races).
        # One scheduler table spans the whole frame: every opaque group is
        # admitted into its in-flight window up front (admission = CGID
        # order) and each GPU's row advances through the groups as its own
        # composition chain progresses; a group retires once every alive
        # participant finished composing it.
        sched: Optional[ImageCompositionScheduler] = None
        comp_remaining: Dict[int, int] = {}
        ready_events: List[List[Event]] = []
        receive_latches: List[List[Optional[Countdown]]] = []
        tile_sends: List[Optional[List[list]]] = []
        chunk_events: List[List[Event]] = []
        scatter_events: List[List[Event]] = []
        region_matrices: List[Optional[np.ndarray]] = []
        group_barriers: Dict[int, Barrier] = {}
        for gi, gp in enumerate(prep.groups):
            repair = repair_of(gi)
            alive = repair.alive if repair is not None else list(range(n))
            ready_events.append([Event(sim) for _ in range(n)])
            if gp.mode is GroupMode.OPAQUE_PARALLEL:
                matrix = gp.region_pixels
                if repair is not None and repair.region_pixels is not None:
                    matrix = repair.region_pixels
                region_matrices.append(matrix)
                if self.composition_style == "tiles":
                    bitmaps = (gp.touched_tiles if repair is None
                               else repair.touched_tiles)
                    owner = (prep.tile_owner if repair is None
                             else repair.tile_owner)
                    sends, recv_counts = plan_group_tiles(
                        bitmaps, prep.tile_pixels, owner)
                    tile_sends.append(sends)
                    latches = [Countdown(sim, recv_counts[dst])
                               for dst in range(n)]
                else:
                    tile_sends.append(None)
                    latches = []
                    for dst in range(n):
                        senders = int((matrix[:, dst] > 0).sum())
                        latches.append(Countdown(sim, senders))
                receive_latches.append(latches)
                if self.use_composition_scheduler and len(alive) > 1:
                    if sched is None:
                        sched = ImageCompositionScheduler(n, sim)
                    cgid = gp.plan.group.index
                    if repair is not None:
                        allowed = [set(alive) - {g} if g in alive else set()
                                   for g in range(n)]
                        sched.open_group(cgid, allowed_partners=allowed)
                    else:
                        sched.open_group(cgid)
                    comp_remaining[cgid] = len(alive)
            else:
                region_matrices.append(None)
                receive_latches.append([None] * n)
                tile_sends.append(None)
            chunk_events.append([Event(sim) for _ in range(n)])
            scatter_events.append([Event(sim) for _ in range(n)])
            if (repair is not None
                    and gp.mode is GroupMode.TRANSPARENT_PARALLEL):
                group_barriers[gi] = Barrier(sim, len(alive))

        # Wire up transparent reduction trees + scatters.
        for gi, gp in enumerate(prep.groups):
            if gp.mode is not GroupMode.TRANSPARENT_PARALLEL:
                continue
            self._wire_transparent(sim, interconnect, stats, gp,
                                   chunk_events[gi], scatter_events[gi],
                                   repair=repair_of(gi),
                                   tile_pixels=prep.tile_pixels)

        def compose_naive(gpu: int, gi: int):
            matrix = region_matrices[gi]
            ready_events[gi][gpu].succeed()
            sends = []
            for offset in range(1, n):
                dst = (gpu + offset) % n
                pixels = int(matrix[gpu, dst]) * samples
                if pixels == 0:
                    continue
                sends.append(sim.process(self._send_subimage(
                    interconnect, stats, gpu, dst, pixels, pixel_bytes,
                    gate=ready_events[gi][dst],
                    latch=receive_latches[gi][dst])))
            if sends:
                yield sim.all_of(sends)
            yield receive_latches[gi][gpu].event

        def compose_tiles(gpu: int, gi: int):
            # DFB: stream every touched tile straight to its owner, no
            # receiver gating — the owner folds tiles in arrival order
            # (any-order argmin reduction, bit-identical by construction).
            # Messages serialize on the sender's egress port, each paying
            # its own head latency: the per-tile message cost model.
            sends = []
            for message in tile_sends[gi][gpu]:
                pixels = message.pixels * samples
                if pixels == 0:
                    continue
                sends.append(sim.process(self._send_subimage(
                    interconnect, stats, gpu, message.dst, pixels,
                    pixel_bytes, gate=None,
                    latch=receive_latches[gi][message.dst])))
            if sends:
                yield sim.all_of(sends)
            yield receive_latches[gi][gpu].event

        def opaque_comp_proc(gpu: int, gi: int,
                             prev_done: Event, done: Event):
            # One composition at a time per GPU, in group (CGID) order; the
            # GPU's engines meanwhile render the next group (Fig 3's
            # overlapped Comp stage).
            if not prev_done.processed:
                yield prev_done
            comp_start = sim.now
            if self.use_composition_scheduler:
                yield from compose_scheduled(gpu, gi)
            elif self.composition_style == "tiles":
                yield from compose_tiles(gpu, gi)
            else:
                yield from compose_naive(gpu, gi)
            # Cycles this composition spent under later groups' rendering:
            # the overlap the cross-group pipeline exists to create.
            overlap = min(sim.now, last_render_end[gpu]) - comp_start
            if overlap > 0:
                overlap_cycles[gpu] += overlap
            note_end(gpu, gi)
            done.succeed()
            cgid = prep.groups[gi].plan.group.index
            if sched is not None and cgid in comp_remaining:
                comp_remaining[cgid] -= 1
                if comp_remaining[cgid] == 0:
                    sched.retire_group(cgid)

        def compose_scheduled(gpu: int, gi: int):
            matrix = region_matrices[gi]
            sched.advance(gpu, prep.groups[gi].plan.group.index)
            sched.mark_ready(gpu)
            in_flight = []
            while not sched.gpu_done(gpu):
                sender = sched.find_sender_for(gpu)
                if sender is None:
                    yield sched.wait_change()
                    continue
                sched.begin(sender, gpu)
                pixels = int(matrix[sender, gpu]) * samples
                if pixels:
                    # Pull the sub-image; free the pair for new matches as
                    # soon as the ports drain (the message tail — latency +
                    # ROP composition — pipelines with the next pull).
                    released = Event(sim)
                    compose_cycles = self.costs.compose_cycles(pixels)
                    in_flight.append(sim.process(interconnect.transfer(
                        sender, gpu, pixels * pixel_bytes,
                        TRAFFIC_COMPOSITION, receive_cycles=compose_cycles,
                        ports_released=released)))
                    stats.add_cycles(gpu, STAGE_COMPOSITION, compose_cycles)
                    yield released
                sched.complete(sender, gpu)
            if in_flight:
                yield sim.all_of(in_flight)

        def run_adopted(gpu: int, repair: _GroupRepair, group_start: float):
            # Draws adopted from dead GPUs: the driver re-issues them after
            # the failure is detected, so none starts before the failure
            # cycle (and opaque re-issues keep their original issue pacing).
            for work, offset, not_before in repair.adopted.get(gpu, ()):
                resume = max(group_start + offset, not_before)
                if resume > sim.now:
                    yield sim.timeout(resume - sim.now)
                yield from engines[gpu].geometry(work)

        def gpu_process(gpu: int):
            # `comp_tail` is this GPU's composition-chain tail: groups
            # compose in CGID order while rendering runs ahead (no global
            # barrier between opaque groups).
            comp_tail = Event(sim)
            comp_tail.succeed()
            for gi, gp in enumerate(prep.groups):
                repair = repair_of(gi)
                if repair is not None and gpu in repair.dead:
                    break  # fail-stop: this GPU leaves the frame here
                # Pipeline-window admission: with a bounded depth, wait for
                # this GPU's own oldest pending composition before starting
                # another group's rendering (sub-image buffers are full).
                gate = windows[gpu].admit_gate()
                while gate is not None:
                    stall_start = sim.now
                    yield gate
                    stall_cycles[gpu] += sim.now - stall_start
                    gate = windows[gpu].admit_gate()
                group_start = sim.now
                alive_count = len(repair.alive) if repair is not None else n
                if gp.mode is GroupMode.DUPLICATE:
                    yield from engines[gpu].run_draws(gp.works[gpu])
                    if repair is not None:
                        yield from run_adopted(gpu, repair, group_start)
                    yield engines[gpu].drain()
                    last_render_end[gpu] = sim.now
                    note_end(gpu, gi)
                elif gp.mode is GroupMode.OPAQUE_PARALLEL:
                    for work, when in zip(gp.works[gpu],
                                          gp.issue_times[gpu]):
                        wait = group_start + when - sim.now
                        if wait > 0:
                            yield sim.timeout(wait)
                        yield from engines[gpu].geometry(work)
                    if repair is not None:
                        yield from run_adopted(gpu, repair, group_start)
                    yield engines[gpu].drain()
                    last_render_end[gpu] = sim.now
                    note_end(gpu, gi)
                    if alive_count > 1:
                        done = Event(sim)
                        sim.process(
                            opaque_comp_proc(gpu, gi, comp_tail, done),
                            name=f"{self.name}-comp-g{gi}-gpu{gpu}")
                        comp_tail = done
                        windows[gpu].push(done)
                else:  # transparent: needs globally composed depth -> sync
                    if not comp_tail.processed:
                        yield comp_tail
                    group_barrier = group_barriers.get(gi, barrier)
                    yield group_barrier.wait()
                    if alive_count > 1:
                        own_pixels = (trace.width * trace.height
                                      / alive_count)
                        yield from interconnect.broadcast(
                            gpu, own_pixels * DEPTH_BYTES, TRAFFIC_SYNC,
                            targets=(repair.alive if repair is not None
                                     else None))
                        yield group_barrier.wait()
                    yield from engines[gpu].run_draws(gp.works[gpu])
                    if repair is not None:
                        yield from run_adopted(gpu, repair, group_start)
                    yield engines[gpu].drain()
                    last_render_end[gpu] = sim.now
                    chunk_events[gi][gpu].succeed()
                    yield scatter_events[gi][gpu]
                    yield group_barrier.wait()
                    note_end(gpu, gi)
            if not comp_tail.processed:
                yield comp_tail

        processes = [sim.process(gpu_process(gpu),
                                 name=f"{self.name}-gpu{gpu}")
                     for gpu in range(n)]
        stats.frame_cycles = self._run_sim_checked(sim, processes,
                                                   stats=stats)

        stats.pipeline_depth = (0 if cfg.pipeline_depth is None
                                else cfg.pipeline_depth)
        stats.pipeline_stall_cycles = sum(stall_cycles)
        stats.comp_overlap_cycles = sum(overlap_cycles)
        busy = sum(g.total_cycles for g in stats.gpus)
        stats.idle_cycles = max(0.0, n * stats.frame_cycles - busy)
        if sched is not None:
            stats.scheduler_groups_peak = sched.groups_peak

        for gpu, tally in enumerate(prep.tallies):
            gstats = stats.gpus[gpu]
            gstats.fragments_generated = tally.generated
            gstats.fragments_shaded = tally.shaded
            gstats.fragments_early_z_tested = tally.early_tested
            gstats.fragments_passed_early_z = tally.early_passed
            gstats.fragments_passed_late = tally.late_passed
        result = SchemeResult(scheme=self.name, trace_name=trace.name,
                              num_gpus=n, stats=stats,
                              image=prep.image.copy())
        return result, ends

    def _send_subimage(self, interconnect, stats, src, dst, pixels,
                       pixel_bytes, gate, latch):
        compose_cycles = self.costs.compose_cycles(pixels)
        yield from interconnect.transfer(
            src, dst, pixels * pixel_bytes, TRAFFIC_COMPOSITION,
            gate=gate, receive_cycles=compose_cycles)
        stats.add_cycles(dst, STAGE_COMPOSITION, compose_cycles)
        latch.arrive()

    def _wire_transparent(self, sim, interconnect, stats, gp,
                          chunk_done, scatter_done,
                          repair: Optional[_GroupRepair] = None,
                          tile_pixels: Optional[np.ndarray] = None) -> None:
        """Spawn the pair-reduction and scatter processes for one group.

        With ``repair`` set, the rebuilt tree (over survivors, merged-chunk
        bitmaps) replaces the fault-free one and the final scatter covers
        only surviving GPUs (dead GPUs' tiles went to their inheritors).

        Under the DFB scheme (``composition_style == "tiles"``) every tree
        edge streams its payload one tile at a time in raster order — the
        receiver folds each tile as it lands (tree-adjacent tile reduction),
        at the cost of one head latency per tile message.
        """
        n = self.config.num_gpus
        pixel_bytes = self.config.pixel_bytes
        samples = self.config.msaa_samples
        if repair is not None and repair.tree_levels is not None:
            tree_levels = repair.tree_levels
            root = repair.root
            scatter_plan = [(dst, repair.scatter_sizes.get(dst, 0))
                            for dst in repair.alive]
            ready: Dict[int, Event] = {m: chunk_done[m]
                                       for m in repair.alive}
            leaf_bitmaps = repair.layer_bitmaps
        else:
            tree_levels = gp.tree_levels
            root = 0
            scatter_plan = [(dst,
                             gp.scatter_pixels[dst] if gp.scatter_pixels
                             else 0)
                            for dst in range(n)]
            ready = dict(enumerate(chunk_done))
            leaf_bitmaps = dict(enumerate(gp.layer_tiles))
        tile_streams = None
        if self.composition_style == "tiles" and tile_pixels is not None:
            tile_streams = tree_edge_tile_sizes(tree_levels, leaf_bitmaps,
                                                tile_pixels)

        def pair_proc(sender, receiver, pixels, ready_s, ready_r, out,
                      tiles=None):
            # Adjacent pairs start only when both sides are available.
            # (Gating a tree transfer on a *previous* transfer's completion
            # would pin the receiver's ingress port against the very message
            # that must complete first — so no naive gating here; this is
            # exactly the readiness handshake §IV-E prescribes.)
            yield sim.all_of([ready_s, ready_r])
            if tiles is not None:
                for tile_px in tiles:
                    tile_px *= samples
                    if tile_px == 0:
                        continue
                    compose_cycles = self.costs.compose_cycles(tile_px)
                    yield from interconnect.transfer(
                        sender, receiver, tile_px * pixel_bytes,
                        TRAFFIC_COMPOSITION, receive_cycles=compose_cycles)
                    stats.add_cycles(receiver, STAGE_COMPOSITION,
                                     compose_cycles)
            elif pixels:
                compose_cycles = self.costs.compose_cycles(pixels)
                yield from interconnect.transfer(
                    sender, receiver, pixels * pixel_bytes,
                    TRAFFIC_COMPOSITION, receive_cycles=compose_cycles)
                stats.add_cycles(receiver, STAGE_COMPOSITION, compose_cycles)
            out.succeed()

        for li, level in enumerate(tree_levels):
            for ei, (sender, receiver, pixels) in enumerate(level):
                pixels *= samples
                out = Event(sim)
                tiles = tile_streams[li][ei] if tile_streams else None
                sim.process(
                    pair_proc(sender, receiver, pixels,
                              ready[sender], ready[receiver], out,
                              tiles=tiles),
                    name=f"pair-{sender}->{receiver}")
                ready[receiver] = out
        root_ready = ready[root]

        def scatter_proc(dst, pixels):
            yield root_ready
            if dst == root:
                # The root blends its own region with the background locally.
                compose_cycles = self.costs.compose_cycles(pixels)
                if compose_cycles:
                    yield sim.timeout(compose_cycles)
                stats.add_cycles(root, STAGE_COMPOSITION, compose_cycles)
            elif pixels:
                compose_cycles = self.costs.compose_cycles(pixels)
                yield from interconnect.transfer(
                    root, dst, pixels * pixel_bytes, TRAFFIC_COMPOSITION,
                    receive_cycles=compose_cycles)
                stats.add_cycles(dst, STAGE_COMPOSITION, compose_cycles)
            scatter_done[dst].succeed()

        for dst, pixels in scatter_plan:
            sim.process(scatter_proc(dst, pixels * samples),
                        name=f"scatter-{dst}")


def _tile_covered_pixels(touched: np.ndarray, grid: TileGrid) -> int:
    """Pixels transferred for a touched mask at tile granularity."""
    tiles = grid.touched_tiles(touched)
    total = 0
    for ty in range(grid.tiles_y):
        for tx in range(grid.tiles_x):
            if tiles[ty, tx]:
                x0, y0, x1, y1 = grid.tile_bounds(tx, ty)
                total += (x1 - x0) * (y1 - y0)
    return total


class ChopinWithScheduler(Chopin):
    """CHOPIN + the image composition scheduler (the paper's CHOPIN+)."""

    name = "chopin+sched"
    use_composition_scheduler = True


class IdealChopin(ChopinWithScheduler):
    """Upper bound: free links, unlimited buffering (the paper's
    IdealCHOPIN)."""

    name = "chopin-ideal"

    def __init__(self, config: SystemConfig, costs=None,
                 draw_scheduler: str = "least-remaining") -> None:
        super().__init__(config.idealized(), costs, draw_scheduler)


class ChopinRoundRobin(Chopin):
    """CHOPIN with naive round-robin draw scheduling (Fig 8's strawman)."""

    name = "chopin-rr"

    def __init__(self, config: SystemConfig, costs=None) -> None:
        super().__init__(config, costs, draw_scheduler="round-robin")


class ChopinSampled(ChopinWithScheduler):
    """§IV-D strawman: OO-VR-style static rate sampling for scheduling."""

    name = "chopin-sampled"

    def __init__(self, config: SystemConfig, costs=None) -> None:
        super().__init__(config, costs, draw_scheduler="sampled")


class ChopinOracle(ChopinWithScheduler):
    """Ablation upper bound: offline LPT scheduling by estimated total draw
    cost. Unrealistic in hardware (per-draw runtimes are unknown before
    execution, §IV-D) — bounds the headroom left above the remaining-
    triangles heuristic."""

    name = "chopin-oracle"

    def __init__(self, config: SystemConfig, costs=None) -> None:
        super().__init__(config, costs, draw_scheduler="oracle")
