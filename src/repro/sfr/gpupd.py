"""GPUpd (Kim et al., MICRO 2017) — the best prior SFR scheme (paper §III-A).

A cooperative sort-first pipeline with two extra stages before normal
rendering:

1. **Primitive projection**: each GPU projects 1/N of every draw's
   primitives to screen space (position-only transform) to learn which
   screen regions — hence which GPUs — each primitive touches.
2. **Primitive distribution**: GPUs exchange primitive IDs so each GPU ends
   up owning exactly the primitives that overlap its tiles. To preserve the
   input primitive order without large reorder buffers, distribution is
   *sequential across source GPUs*: GPU0 sends its lists to everyone, then
   GPU1, and so on — the critical bottleneck the paper measures in Fig 4.

Both published optimizations are modeled: **batching** (primitives flow
through projection/distribution in sub-batches so stages overlap) and
**runahead execution** (a GPU projects batch *i+1* while batch *i* is being
distributed). The idealized variant gets free links (infinite bandwidth,
zero latency), bounding how much faster perfect interconnects could make it.

After distribution each GPU runs the normal pipeline on its owned
primitives; fragments are confined to its own tiles, so the functional
result (and depth-test behaviour) is identical to primitive duplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..config import SystemConfig
from ..geometry.primitives import DrawCommand
from ..geometry.transform import (perspective_divide, to_screen,
                                  transform_positions)
from ..raster.tiles import TileGrid
from ..sim import Barrier, Countdown, Simulator
from ..stats import (RunStats, STAGE_DISTRIBUTION, STAGE_FRAGMENT,
                     STAGE_GEOMETRY, STAGE_PROJECTION, TRAFFIC_PRIMITIVES,
                     TRAFFIC_SYNC)
from ..timing.gpu import DrawWork, GPUEngine
from ..timing.interconnect import Interconnect
from ..traces.trace import Trace
from .base import SchemeResult, SFRScheme, reference_pass
from .duplication import fill_fragment_stats_by_owner


def triangle_owner_matrix(draw: DrawCommand, grid: TileGrid,
                          num_gpus: int, mvp=None) -> np.ndarray:
    """(T, num_gpus) bool: which GPUs' tile regions each triangle overlaps.

    Conservative bounding-box overlap, the same test a hardware binner would
    use before fine rasterization.
    """
    clip = transform_positions(
        draw.positions,
        np.eye(4, dtype=np.float32) if mvp is None else mvp)
    ndc = perspective_divide(clip)
    xy, _ = to_screen(ndc, grid.width, grid.height)
    mins = xy.min(axis=1)
    maxs = xy.max(axis=1)
    ts = grid.tile_size
    tx0 = np.clip(np.floor(mins[:, 0] / ts), 0, grid.tiles_x - 1).astype(int)
    tx1 = np.clip(np.floor(maxs[:, 0] / ts), 0, grid.tiles_x - 1).astype(int)
    ty0 = np.clip(np.floor(mins[:, 1] / ts), 0, grid.tiles_y - 1).astype(int)
    ty1 = np.clip(np.floor(maxs[:, 1] / ts), 0, grid.tiles_y - 1).astype(int)
    offscreen = ((maxs[:, 0] < 0) | (mins[:, 0] >= grid.width)
                 | (maxs[:, 1] < 0) | (mins[:, 1] >= grid.height))
    owners = np.zeros((draw.num_triangles, num_gpus), dtype=bool)
    for t in range(draw.num_triangles):
        if offscreen[t]:
            continue
        for ty in range(ty0[t], ty1[t] + 1):
            for tx in range(tx0[t], tx1[t] + 1):
                owners[t, grid.owner_of_tile(tx, ty, num_gpus)] = True
    return owners


@dataclass
class DrawProjection:
    """Per-draw projection/distribution analysis for one GPU count."""

    #: primitives owned (= overlapping the region of) each GPU
    owned_counts: np.ndarray          # (num_gpus,) int
    #: distribution messages: ids sent from src chunk to dst region
    dist_counts: np.ndarray           # (num_gpus, num_gpus) int, diag = 0


_PROJECTION_CACHE: Dict[Tuple[int, int, int], List[DrawProjection]] = {}


def projection_analysis(trace: Trace,
                        config: SystemConfig) -> List[DrawProjection]:
    """Projection analysis for every draw (cached per trace/GPU-count)."""
    key = (id(trace), config.num_gpus, config.tile_size)
    if key in _PROJECTION_CACHE:
        return _PROJECTION_CACHE[key]
    grid = TileGrid(trace.width, trace.height, config.tile_size)
    n = config.num_gpus
    result: List[DrawProjection] = []
    for draw in trace.frame.draws:
        owners = triangle_owner_matrix(draw, grid, n, mvp=trace.camera)
        owned = owners.sum(axis=0).astype(np.int64)
        bounds = np.linspace(0, draw.num_triangles, n + 1).astype(int)
        dist = np.zeros((n, n), dtype=np.int64)
        for src in range(n):
            lo, hi = bounds[src], bounds[src + 1]
            if hi > lo:
                dist[src] = owners[lo:hi].sum(axis=0)
            dist[src, src] = 0
        result.append(DrawProjection(owned_counts=owned, dist_counts=dist))
    _PROJECTION_CACHE[key] = result
    return result


def clear_projection_cache() -> None:
    _PROJECTION_CACHE.clear()


@dataclass
class _Batch:
    """One projection/distribution/render batch's precomputed work."""

    proj_cycles: np.ndarray           # (num_gpus,)
    works: List[List[DrawWork]]       # [gpu] -> draws' render work
    dist_bytes: np.ndarray            # (num_gpus, num_gpus)
    proj_done: Countdown = None       # all GPUs projected this batch
    dist_done: Countdown = None       # primitive IDs fully exchanged


class GPUpd(SFRScheme):
    """Best-effort realistic GPUpd with batching + runahead."""

    name = "gpupd"

    def __init__(self, config: SystemConfig, costs=None,
                 batch_primitives: int = 2048,
                 runahead: bool = True) -> None:
        super().__init__(config, costs)
        #: primitives per distribution batch. GPUpd pipelines projection /
        #: distribution / rendering at this granularity; each batch costs a
        #: full sequential turn of every source GPU, which is why the
        #: distribution overhead grows with GPU count (Fig 4).
        self.batch_primitives = max(1, batch_primitives)
        #: overlap batch b+1's projection with batch b's distribution (the
        #: GPUpd paper's second optimization); off = fully serialized phases
        self.runahead = runahead

    def run(self, trace: Trace) -> SchemeResult:
        prep = reference_pass(trace, self.config)
        projections = projection_analysis(trace, self.config)
        num_gpus = self.config.num_gpus
        stats = RunStats(num_gpus=num_gpus)
        sim = self._make_sim()
        engines = [GPUEngine(sim, g, self.costs, stats.gpus[g])
                   for g in range(num_gpus)]
        interconnect = Interconnect(sim, self.config, stats)
        barrier = Barrier(sim, num_gpus)
        segments = self._segments(trace, prep)
        frame = trace.frame
        sync_bytes = self._sync_broadcast_bytes(trace)

        # Precompute every segment's batches up front.
        segment_batches: List[List[_Batch]] = []
        for (start, end) in segments:
            batches = []
            for (b_start, b_end) in self._make_batches(frame, start, end):
                batches.append(self._prepare_batch(
                    frame, prep, projections, b_start, b_end, sim))
            segment_batches.append(batches)

        def gpu_process(gpu: int):
            for seg_index, batches in enumerate(segment_batches):
                if self.runahead:
                    # Runahead depth 1: project batch b, then (while batch
                    # b is distributed) render batch b-1.
                    for b, batch in enumerate(batches):
                        yield from engines[gpu].busy_work(
                            float(batch.proj_cycles[gpu]), STAGE_PROJECTION)
                        batch.proj_done.arrive()
                        if b >= 1:
                            yield batches[b - 1].dist_done.event
                            yield from engines[gpu].run_draws(
                                batches[b - 1].works[gpu])
                    yield batches[-1].dist_done.event
                    yield from engines[gpu].run_draws(
                        batches[-1].works[gpu])
                else:
                    # No runahead: project -> wait distribution -> render,
                    # batch by batch.
                    for batch in batches:
                        yield from engines[gpu].busy_work(
                            float(batch.proj_cycles[gpu]), STAGE_PROJECTION)
                        batch.proj_done.arrive()
                        yield batch.dist_done.event
                        yield from engines[gpu].run_draws(batch.works[gpu])
                yield engines[gpu].drain()
                yield barrier.wait()
                if seg_index < len(segment_batches) - 1 and num_gpus > 1:
                    yield from interconnect.broadcast(
                        gpu, sync_bytes, TRAFFIC_SYNC)
                    yield barrier.wait()

        def distributor():
            # Sequential across sources (GPU0, then GPU1, ...) to preserve
            # the input primitive order at every receiver. Each source's
            # turn is charged to it as distribution-stage cycles (Fig 4).
            for batches in segment_batches:
                for batch in batches:
                    yield batch.proj_done.event
                    for src in range(num_gpus):
                        turn_start = sim.now
                        sends = []
                        for dst in range(num_gpus):
                            nbytes = float(batch.dist_bytes[src, dst])
                            if dst == src or nbytes == 0.0:
                                continue
                            sends.append(sim.process(interconnect.transfer(
                                src, dst, nbytes, TRAFFIC_PRIMITIVES)))
                        if sends:
                            yield sim.all_of(sends)
                            stats.add_cycles(src, STAGE_DISTRIBUTION,
                                             sim.now - turn_start)
                    batch.dist_done.arrive()

        processes = [sim.process(gpu_process(gpu), name=f"gpupd-gpu{gpu}")
                     for gpu in range(num_gpus)]
        processes.append(sim.process(distributor(), name="gpupd-distributor"))
        stats.frame_cycles = self._run_sim_checked(sim, processes,
                                                   stats=stats)
        fill_fragment_stats_by_owner(stats, prep)
        return SchemeResult(scheme=self.name, trace_name=trace.name,
                            num_gpus=num_gpus, stats=stats,
                            image=prep.image.copy(),
                            draw_metrics=list(prep.metrics))

    # -- helpers --------------------------------------------------------------

    def _prepare_batch(self, frame, prep, projections, b_start: int,
                       b_end: int, sim: Simulator) -> _Batch:
        num_gpus = self.config.num_gpus
        id_bytes = self.config.primitive_id_bytes
        cycles = np.zeros(num_gpus)
        works: List[List[DrawWork]] = [[] for _ in range(num_gpus)]
        bytes_matrix = np.zeros((num_gpus, num_gpus))
        for i in range(b_start, b_end):
            draw = frame.draws[i]
            proj = projections[i]
            metrics = prep.metrics[i]
            cycles += self.costs.projection_cycles(
                draw.num_triangles / num_gpus, draw.vertex_cost)
            bytes_matrix += proj.dist_counts * id_bytes
            for gpu in range(num_gpus):
                owned = int(proj.owned_counts[gpu])
                works[gpu].append(DrawWork(
                    draw_id=draw.draw_id,
                    triangles=owned,
                    geometry_cycles=self.costs.geometry_cycles(
                        owned, draw.vertex_cost),
                    fragment_cycles=self.costs.fragment_cycles(
                        owned, int(metrics.shaded_by_owner[gpu]),
                        draw.pixel_cost),
                    fragments=int(metrics.shaded_by_owner[gpu]),
                    geometry_stage=STAGE_GEOMETRY,
                    fragment_stage=STAGE_FRAGMENT,
                ))
        batch = _Batch(proj_cycles=cycles, works=works,
                       dist_bytes=bytes_matrix)
        batch.proj_done = Countdown(sim, num_gpus)
        batch.dist_done = Countdown(sim, 1)
        return batch

    def _make_batches(self, frame, start: int,
                      end: int) -> List[Tuple[int, int]]:
        """Bundle consecutive draws until ``batch_primitives`` is reached."""
        batches: List[Tuple[int, int]] = []
        batch_start = start
        triangles = 0
        for i in range(start, end):
            triangles += frame.draws[i].num_triangles
            if triangles >= self.batch_primitives:
                batches.append((batch_start, i + 1))
                batch_start = i + 1
                triangles = 0
        if batch_start < end:
            batches.append((batch_start, end))
        return batches


class IdealGPUpd(GPUpd):
    """GPUpd on free links: zero latency, infinite bandwidth (Fig 5/13)."""

    name = "gpupd-ideal"

    def __init__(self, config: SystemConfig, costs=None,
                 batch_primitives: int = 2048) -> None:
        super().__init__(config.idealized(), costs, batch_primitives)
