"""Baseline SFR: primitive duplication (paper §III-A, the Fig 13 baseline).

Every GPU runs geometry processing for *every* primitive of every draw
command, then keeps only the fragments that fall into its own screen tiles.
Redundant geometry makes the scheme simple (no primitive redistribution) but
unscalable: with N GPUs the geometry work per GPU is constant while fragment
work shrinks, so geometry dominates as N grows (Fig 2).

Inter-GPU communication happens only at render-target/depth-buffer switches,
where each GPU broadcasts its owned region of the current surfaces (§V).
"""

from __future__ import annotations

from typing import List

from ..sim import Barrier, Simulator
from ..stats import (RunStats, STAGE_FRAGMENT, STAGE_GEOMETRY, TRAFFIC_SYNC)
from ..timing.gpu import DrawWork, GPUEngine
from ..timing.interconnect import Interconnect
from ..traces.trace import Trace
from .base import ReferencePass, SchemeResult, SFRScheme, reference_pass


def fill_fragment_stats_by_owner(stats: RunStats,
                                 prep: ReferencePass) -> None:
    """Copy the reference pass's per-owner fragment counts into RunStats."""
    frame = prep.trace.frame
    for draw, metrics in zip(frame.draws, prep.metrics):
        early = draw.state.early_z
        for gpu in range(stats.num_gpus):
            gstats = stats.gpus[gpu]
            generated = int(metrics.generated_by_owner[gpu])
            shaded = int(metrics.shaded_by_owner[gpu])
            passed = int(metrics.passed_by_owner[gpu])
            gstats.fragments_generated += generated
            gstats.fragments_shaded += shaded
            if early:
                gstats.fragments_early_z_tested += generated
                gstats.fragments_passed_early_z += passed
            else:
                gstats.fragments_passed_late += passed


class PrimitiveDuplication(SFRScheme):
    """The conventional GPU-assisted sort-first baseline."""

    name = "duplication"

    def run(self, trace: Trace) -> SchemeResult:
        prep = reference_pass(trace, self.config)
        num_gpus = self.config.num_gpus
        stats = RunStats(num_gpus=num_gpus)
        sim = self._make_sim()
        engines = [GPUEngine(sim, g, self.costs, stats.gpus[g])
                   for g in range(num_gpus)]
        interconnect = Interconnect(sim, self.config, stats)
        barrier = Barrier(sim, num_gpus)
        segments = self._segments(trace, prep)
        frame = trace.frame
        sync_bytes = self._sync_broadcast_bytes(trace)

        def gpu_process(gpu: int):
            for seg_index, (start, end) in enumerate(segments):
                works: List[DrawWork] = []
                for i in range(start, end):
                    draw = frame.draws[i]
                    metrics = prep.metrics[i]
                    works.append(DrawWork(
                        draw_id=draw.draw_id,
                        triangles=draw.num_triangles,
                        geometry_cycles=self.costs.geometry_cycles(
                            draw.num_triangles, draw.vertex_cost),
                        fragment_cycles=self.costs.fragment_cycles(
                            metrics.triangles_rasterized,
                            int(metrics.shaded_by_owner[gpu]),
                            draw.pixel_cost),
                        fragments=int(metrics.shaded_by_owner[gpu]),
                        geometry_stage=STAGE_GEOMETRY,
                        fragment_stage=STAGE_FRAGMENT,
                    ))
                yield from engines[gpu].run_draws(works)
                yield engines[gpu].drain()
                yield barrier.wait()
                if seg_index < len(segments) - 1 and num_gpus > 1:
                    # Render-target switch: broadcast owned surface regions.
                    yield from interconnect.broadcast(
                        gpu, sync_bytes, TRAFFIC_SYNC)
                    yield barrier.wait()

        processes = [sim.process(gpu_process(gpu), name=f"dup-gpu{gpu}")
                     for gpu in range(num_gpus)]
        stats.frame_cycles = self._run_sim_checked(sim, processes,
                                                   stats=stats)

        fill_fragment_stats_by_owner(stats, prep)
        return SchemeResult(scheme=self.name, trace_name=trace.name,
                            num_gpus=num_gpus, stats=stats,
                            image=prep.image.copy(),
                            draw_metrics=list(prep.metrics))
