"""Alternate Frame Rendering (paper §I motivation).

AFR assigns whole consecutive frames round-robin to GPUs. Each frame is
rendered exactly as on a single GPU, so throughput scales with GPU count —
but the *latency* of each frame does not improve, and uneven per-frame costs
produce uneven display intervals: **micro-stuttering** (§I). This module
exists to quantify that motivation: the examples compare AFR's frame-time
distribution against SFR's.

The model is analytic: per-frame cycles come from a functional single-GPU
render through the same two-stage pipeline recurrence the DES uses
(geometry of draw i+1 overlaps fragments of draw i).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..config import SystemConfig
from ..framebuffer.framebuffer import SurfacePool
from ..render import RenderSession, render_service
from ..timing.costs import CostModel
from ..traces.trace import Frame, Trace


def frame_render_cycles(frame: Frame, width: int, height: int,
                        costs: CostModel,
                        session: RenderSession = None,
                        camera=None) -> float:
    """Single-GPU cycles for one frame (two-stage pipeline recurrence).

    Without a ``session``, a throwaway single-frame trace wraps the frame
    so the render service can fingerprint and cache its geometry.
    """
    if session is None:
        session = render_service().session(
            Trace(name="afr-frame", width=width, height=height,
                  frames=[frame], camera=camera))
    pool = SurfacePool(width, height)
    geo_end = 0.0
    frag_end = 0.0
    for draw in frame.draws:
        metrics = session.execute_draw(draw, pool)
        geo_end += costs.geometry_cycles(draw.num_triangles,
                                         draw.vertex_cost)
        frag_cycles = costs.fragment_cycles(
            metrics.triangles_rasterized, metrics.fragments_shaded,
            draw.pixel_cost)
        frag_end = max(frag_end, geo_end) + frag_cycles
    return max(geo_end, frag_end)


@dataclass
class AFRResult:
    """Timing of an AFR run over a multi-frame trace."""

    num_gpus: int
    frame_cycles: List[float]          # per-frame single-GPU render time
    completion_times: List[float]      # when each frame becomes displayable

    @property
    def display_intervals(self) -> np.ndarray:
        """Gaps between consecutive displayable frames (in order)."""
        times = np.sort(np.asarray(self.completion_times))
        return np.diff(times)

    @property
    def throughput_speedup(self) -> float:
        """Total-time speedup over a single GPU rendering all frames."""
        single = sum(self.frame_cycles)
        parallel = max(self.completion_times)
        return single / parallel

    @property
    def micro_stutter(self) -> float:
        """Coefficient of variation of display intervals (0 = smooth)."""
        intervals = self.display_intervals
        if len(intervals) == 0:
            return 0.0
        mean = float(intervals.mean())
        if mean == 0.0:
            return 0.0
        return float(intervals.std() / mean)


class AlternateFrameRendering:
    """AFR across a multi-frame trace."""

    name = "afr"

    def __init__(self, config: SystemConfig, costs: CostModel = None) -> None:
        self.config = config
        self.costs = costs or CostModel(gpu=config.gpu)

    def run(self, trace: Trace) -> AFRResult:
        session = render_service().session(trace)
        per_frame = [frame_render_cycles(frame, trace.width, trace.height,
                                         self.costs, session,
                                         camera=trace.camera)
                     for frame in trace.frames]
        n = self.config.num_gpus
        # The CPU paces submissions at the steady-state rate (one frame per
        # mean-render-time / n); with perfectly uniform frames this yields
        # evenly spaced completions. Micro-stutter is then entirely due to
        # per-frame cost variance — AFR's inherent weakness (§I).
        pace = float(np.mean(per_frame)) / n if per_frame else 0.0
        gpu_free = [0.0] * n
        completion = []
        for index, cycles in enumerate(per_frame):
            gpu = index % n
            start = max(gpu_free[gpu], index * pace)
            gpu_free[gpu] = start + cycles
            completion.append(gpu_free[gpu])
        return AFRResult(num_gpus=n, frame_cycles=per_frame,
                         completion_times=completion)
