"""Sort-middle SFR (the third Molnar class; paper §III-A).

Sort-middle splits the pipeline at the geometry/rasterization boundary:
each GPU runs *full* geometry processing on 1/N of the primitives (no
redundancy — better than duplication, no projection pre-pass — better than
GPUpd), then ships the **post-geometry attributes** of every primitive to
the GPUs whose screen regions it overlaps, where rasterization and fragment
processing proceed.

The paper dismisses it in one line: "sort-middle is rarely adopted because
the geometry processing output is very large". This implementation makes
that argument quantitative: the exchange moves full transformed vertex
attributes (positions, colours, texture coordinates, ...) per primitive —
``attribute_bytes`` per triangle, versus GPUpd's 4-byte primitive IDs — so
its interconnect load is ~2 orders of magnitude higher and the scheme is
bandwidth-bound even on NVLink-class fabrics.

Functionally the final image equals duplication's (the redistribution is
semantics-preserving), so the reference pass is reused; only the timing
differs. The attribute exchange is modeled as a parallel all-to-all per
batch (sort-middle has no GPUpd-style global-ordering constraint: ordering
only matters per tile, which per-pair FIFO channels already provide).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..config import SystemConfig
from ..sim import Barrier, Countdown, Simulator
from ..stats import (RunStats, STAGE_DISTRIBUTION, STAGE_FRAGMENT,
                     STAGE_GEOMETRY, TRAFFIC_PRIMITIVES, TRAFFIC_SYNC)
from ..timing.gpu import DrawWork, GPUEngine
from ..timing.interconnect import Interconnect
from ..traces.trace import Trace
from .base import SchemeResult, SFRScheme, reference_pass
from .duplication import fill_fragment_stats_by_owner
from .gpupd import projection_analysis

#: post-geometry payload per *input* triangle at paper scale. Geometry
#: output carries full transformed attributes (3 vertices x ~48 B) and is
#: amplified by tessellation (~8 micro-triangles per patch in modern
#: content) before the sort: ~1.2 KB per input primitive — the "very
#: large" geometry output of §III-A, vs GPUpd's 4 B primitive IDs.
ATTRIBUTE_BYTES_PER_TRIANGLE = 1152


class SortMiddle(SFRScheme):
    """Sort-middle SFR with post-geometry attribute redistribution."""

    name = "sort-middle"

    def __init__(self, config: SystemConfig, costs=None,
                 attribute_bytes: int = ATTRIBUTE_BYTES_PER_TRIANGLE,
                 batch_primitives: int = 2048) -> None:
        super().__init__(config, costs)
        self.attribute_bytes = max(1, attribute_bytes)
        self.batch_primitives = max(1, batch_primitives)

    def run(self, trace: Trace) -> SchemeResult:
        prep = reference_pass(trace, self.config)
        projections = projection_analysis(trace, self.config)
        num_gpus = self.config.num_gpus
        stats = RunStats(num_gpus=num_gpus)
        sim = self._make_sim()
        engines = [GPUEngine(sim, g, self.costs, stats.gpus[g])
                   for g in range(num_gpus)]
        interconnect = Interconnect(sim, self.config, stats)
        barrier = Barrier(sim, num_gpus)
        segments = self._segments(trace, prep)
        frame = trace.frame
        sync_bytes = self._sync_broadcast_bytes(trace)

        # Per-segment batches: (geometry work per GPU, exchange matrix,
        # raster/fragment work per GPU).
        segment_batches = []
        for (start, end) in segments:
            batches = []
            batch_start, triangles = start, 0
            for i in range(start, end):
                triangles += frame.draws[i].num_triangles
                if triangles >= self.batch_primitives or i == end - 1:
                    batches.append(self._prepare_batch(
                        frame, prep, projections, batch_start, i + 1, sim))
                    batch_start, triangles = i + 1, 0
            segment_batches.append(batches)

        def gpu_process(gpu: int):
            for seg_index, batches in enumerate(segment_batches):
                for b, batch in enumerate(batches):
                    # full geometry on this GPU's 1/N primitive chunk
                    yield from engines[gpu].busy_work(
                        float(batch["geo_cycles"][gpu]), STAGE_GEOMETRY)
                    batch["geo_done"].arrive()
                    if b >= 1:
                        yield batches[b - 1]["xchg_done"].event
                        yield from engines[gpu].run_draws(
                            batches[b - 1]["works"][gpu])
                yield batches[-1]["xchg_done"].event
                yield from engines[gpu].run_draws(batches[-1]["works"][gpu])
                yield engines[gpu].drain()
                yield barrier.wait()
                if seg_index < len(segment_batches) - 1 and num_gpus > 1:
                    yield from interconnect.broadcast(
                        gpu, sync_bytes, TRAFFIC_SYNC)
                    yield barrier.wait()

        def exchanger():
            # Parallel all-to-all attribute exchange per batch (bandwidth-
            # bound; no sequential-source constraint unlike GPUpd).
            for batches in segment_batches:
                for batch in batches:
                    yield batch["geo_done"].event
                    start_time = sim.now
                    sends = []
                    for src in range(num_gpus):
                        for dst in range(num_gpus):
                            nbytes = float(batch["xchg_bytes"][src, dst])
                            if src == dst or nbytes == 0.0:
                                continue
                            sends.append(sim.process(interconnect.transfer(
                                src, dst, nbytes, TRAFFIC_PRIMITIVES)))
                    if sends:
                        yield sim.all_of(sends)
                        elapsed = sim.now - start_time
                        for gpu in range(num_gpus):
                            stats.add_cycles(gpu, STAGE_DISTRIBUTION,
                                             elapsed / num_gpus)
                    batch["xchg_done"].arrive()

        processes = [sim.process(gpu_process(gpu), name=f"sm-gpu{gpu}")
                     for gpu in range(num_gpus)]
        processes.append(sim.process(exchanger(), name="sm-exchanger"))
        stats.frame_cycles = self._run_sim_checked(sim, processes,
                                                   stats=stats)

        fill_fragment_stats_by_owner(stats, prep)
        return SchemeResult(scheme=self.name, trace_name=trace.name,
                            num_gpus=num_gpus, stats=stats,
                            image=prep.image.copy(),
                            draw_metrics=list(prep.metrics))

    def _prepare_batch(self, frame, prep, projections, b_start, b_end, sim):
        num_gpus = self.config.num_gpus
        geo_cycles = np.zeros(num_gpus)
        works: List[List[DrawWork]] = [[] for _ in range(num_gpus)]
        xchg_bytes = np.zeros((num_gpus, num_gpus))
        for i in range(b_start, b_end):
            draw = frame.draws[i]
            proj = projections[i]
            metrics = prep.metrics[i]
            # geometry: each GPU shades 1/N of the draw's vertices, fully
            geo_cycles += self.costs.geometry_cycles(
                draw.num_triangles / num_gpus, draw.vertex_cost)
            xchg_bytes += proj.dist_counts * self.attribute_bytes
            for gpu in range(num_gpus):
                shaded = int(metrics.shaded_by_owner[gpu])
                works[gpu].append(DrawWork(
                    draw_id=draw.draw_id,
                    triangles=int(proj.owned_counts[gpu]),
                    geometry_cycles=0.0,   # geometry already charged above
                    fragment_cycles=self.costs.fragment_cycles(
                        int(proj.owned_counts[gpu]), shaded,
                        draw.pixel_cost),
                    fragments=shaded,
                    geometry_stage=STAGE_GEOMETRY,
                    fragment_stage=STAGE_FRAGMENT,
                ))
        return {
            "geo_cycles": geo_cycles,
            "works": works,
            "xchg_bytes": xchg_bytes,
            "geo_done": Countdown(sim, num_gpus),
            "xchg_done": Countdown(sim, 1),
        }
