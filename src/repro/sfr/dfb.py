"""DFB: CHOPIN with a Distributed FrameBuffer tile-streaming compositor.

The ``dfb`` scheme keeps CHOPIN's grouping, draw scheduling and functional
pipeline but replaces the composition transport: instead of exchanging
whole per-region sub-image messages at the group boundary (naive
direct-send gated on receiver readiness, or the §IV-E pairing scheduler),
each GPU streams its sub-image as fixed-size screen tiles straight to the
tiles' owners the moment rendering finishes.

- No receiver gating and no pairing handshake: a tile message departs as
  soon as the sender's sub-image is done and contends only for link ports.
  The owner folds tiles in *arrival order* — sound for opaque groups
  because the per-pixel ``(depth, source)`` argmin reduction of
  :mod:`repro.composition.dfb` is order-independent and bit-identical to
  the sequential compositor.
- Transparent groups keep the adjacent-pair reduction tree (blending is
  not commutative) but every tree edge streams its payload one tile at a
  time; out-of-order tile folds are a protocol violation the functional
  core rejects with a typed :class:`~repro.errors.SchedulingError`.
- The cost model bills one interconnect head latency per tile message
  (messages serialize on the sender's egress port), which is the price DFB
  pays for composing without any scheduling hardware.
- Fail-stop repair folds the dead GPUs' touched-tile bitmaps onto their
  re-rendering inheritors and re-owns their framebuffer tiles — the
  tile-granular analogue of the region-matrix repair, and strictly more
  precise (overlapping tiles stream once, not twice).

All timing/wiring lives in :meth:`Chopin._timing_pass`, branched on
``composition_style``; the functional tile reducers live in
:mod:`repro.composition.dfb`.
"""

from __future__ import annotations

from .chopin import Chopin


class DistributedFramebufferChopin(Chopin):
    """CHOPIN variant composing via asynchronous per-tile streaming."""

    name = "dfb"
    use_composition_scheduler = False
    composition_style = "tiles"
