"""Deterministic fault plans for the multi-GPU simulation.

A :class:`FaultPlan` describes *everything* that will go wrong during a run,
ahead of time and reproducibly:

- **fail-stop GPU failures** — GPU ``g`` dies at cycle ``T`` and never comes
  back (Equalizer-style node failure). The CHOPIN schemes recover by
  redistributing the dead GPU's unfinished draws to survivors and repairing
  the composition pairing (see :mod:`repro.faults.degraded`);
- **transient link errors** — each streamed message is independently dropped
  (lost in the fabric, detected by timeout) or corrupted (detected by CRC at
  the receiver) with configurable probabilities; the interconnect retries
  with exponential backoff up to a retry budget;
- **degraded-bandwidth windows** — intervals during which every link runs at
  a fraction of its nominal bandwidth (thermal throttling, a flapping lane).

All randomness flows from ``seed`` through a dedicated :class:`FaultInjector`
stream, so two runs with the same plan are bit-identical, and a plan whose
probabilities are all zero never draws a random number at all — runs with
such a plan are indistinguishable from fault-free runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from random import Random
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError

#: transfer outcomes reported by the injector
OUTCOME_OK = "ok"
OUTCOME_DROP = "drop"
OUTCOME_CORRUPT = "corrupt"


@dataclass(frozen=True)
class GPUFailure:
    """Fail-stop: ``gpu`` dies at ``cycle`` and stays dead for the frame."""

    gpu: int
    cycle: float

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise ConfigError(f"fail-stop GPU index cannot be negative "
                              f"(got {self.gpu})")
        if self.cycle < 0:
            raise ConfigError(f"fail-stop cycle cannot be negative "
                              f"(got {self.cycle})")


@dataclass(frozen=True)
class DegradedWindow:
    """Every link runs at ``bandwidth_factor`` of nominal in [start, end)."""

    start: float
    end: float
    bandwidth_factor: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < 0:
            raise ConfigError("degraded window bounds cannot be negative")
        if self.end <= self.start:
            raise ConfigError(
                f"degraded window must end after it starts "
                f"(got [{self.start}, {self.end}))")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ConfigError(
                f"degraded bandwidth factor must lie in (0, 1] "
                f"(got {self.bandwidth_factor})")

    def contains(self, cycle: float) -> bool:
        return self.start <= cycle < self.end


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seedable description of the faults injected into one run.

    ``drop_probability`` and ``corrupt_probability`` apply independently per
    transfer; ``retry_budget`` bounds retransmissions per message before the
    run aborts with :class:`~repro.errors.FaultError`; backoff doubles from
    ``backoff_base_cycles`` on every consecutive retry of the same message.
    A dropped message is only detected after ``drop_detection_cycles`` (the
    sender's acknowledgement timeout); a corrupted one is NACKed as soon as
    the stream finishes.
    """

    seed: int = 0
    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    retry_budget: int = 8
    backoff_base_cycles: float = 16.0
    drop_detection_cycles: float = 400.0
    gpu_failures: Tuple[GPUFailure, ...] = ()
    degraded_windows: Tuple[DegradedWindow, ...] = ()
    #: GPU count the plan was written for (None = any). When set, fail-stop
    #: indices are range-checked at construction and :meth:`validate_for`
    #: refuses replay against a differently-sized system.
    gpus: Optional[int] = None

    def __post_init__(self) -> None:
        for name, p in (("drop_probability", self.drop_probability),
                        ("corrupt_probability", self.corrupt_probability)):
            if not 0.0 <= p <= 1.0:
                raise ConfigError(
                    f"{name} must be a probability in [0, 1] (got {p})")
        if self.drop_probability + self.corrupt_probability > 1.0:
            raise ConfigError(
                "drop_probability + corrupt_probability cannot exceed 1")
        if self.retry_budget < 0:
            raise ConfigError(
                f"retry budget cannot be negative (got {self.retry_budget})")
        if self.backoff_base_cycles < 0:
            raise ConfigError("backoff base cannot be negative")
        if self.drop_detection_cycles < 0:
            raise ConfigError("drop detection timeout cannot be negative")
        seen = set()
        for failure in self.gpu_failures:
            if failure.gpu in seen:
                raise ConfigError(
                    f"GPU{failure.gpu} fail-stops twice in the same plan")
            seen.add(failure.gpu)
        if self.gpus is not None:
            if self.gpus <= 0:
                raise ConfigError(
                    f"fault-plan GPU count must be positive (got {self.gpus})")
            for failure in self.gpu_failures:
                if failure.gpu >= self.gpus:
                    raise ConfigError(
                        f"fail-stop targets GPU{failure.gpu} but the plan "
                        f"declares only {self.gpus} GPUs")
        ordered = sorted(self.degraded_windows,
                         key=lambda w: (w.start, w.end))
        for prev, nxt in zip(ordered, ordered[1:]):
            if nxt.start < prev.end:
                raise ConfigError(
                    f"degraded windows [{prev.start}, {prev.end}) and "
                    f"[{nxt.start}, {nxt.end}) overlap; split them into "
                    f"disjoint intervals (the most degraded factor wins "
                    f"where they would overlap)")

    # -- derived queries ---------------------------------------------------

    @property
    def error_probability(self) -> float:
        """Per-transfer probability of *any* link error."""
        return self.drop_probability + self.corrupt_probability

    @property
    def affects_links(self) -> bool:
        """True if transfers can ever retry or slow down under this plan."""
        return self.error_probability > 0.0 or bool(self.degraded_windows)

    @property
    def failed_gpus(self) -> Tuple[int, ...]:
        return tuple(f.gpu for f in self.gpu_failures)

    def failure_cycle(self, gpu: int) -> float:
        for failure in self.gpu_failures:
            if failure.gpu == gpu:
                return failure.cycle
        raise ConfigError(f"GPU{gpu} does not fail under this plan")

    def bandwidth_factor_at(self, cycle: float) -> float:  # unit: 1
        """Link bandwidth multiplier in effect at ``cycle`` (1.0 = nominal).

        Windows are disjoint by construction, so at most one applies.
        """
        for window in self.degraded_windows:
            if window.contains(cycle):
                return window.bandwidth_factor
        return 1.0

    def validate_for(self, num_gpus: int) -> None:
        """Check the plan against a concrete system size."""
        if self.gpus is not None and self.gpus != num_gpus:
            raise ConfigError(
                f"fault plan was written for {self.gpus} GPUs but the "
                f"system has {num_gpus}")
        for failure in self.gpu_failures:
            if failure.gpu >= num_gpus:
                raise ConfigError(
                    f"fail-stop targets GPU{failure.gpu} but the system "
                    f"only has {num_gpus} GPUs")
        if len(self.gpu_failures) >= num_gpus:
            raise ConfigError("fault plan kills every GPU; no survivors "
                              "could finish the frame")

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


class FaultInjector:
    """Runtime die-roller for a :class:`FaultPlan`.

    One injector is created per simulation run; its random stream is keyed
    only by the plan's seed, and it draws exactly one number per transfer
    *only when link errors are possible* — so a plan with zero probabilities
    perturbs nothing, not even the RNG stream.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # A dedicated seeded instance — never the module-global stream
        # (simlint's unseeded-rng rule enforces this repo-wide).
        self._rng = Random(plan.seed ^ 0x5FA017)
        self.transfers_seen = 0

    def transfer_outcome(self, src: int, dst: int) -> str:
        """Roll one transfer: OUTCOME_OK / OUTCOME_DROP / OUTCOME_CORRUPT."""
        self.transfers_seen += 1
        p_drop = self.plan.drop_probability
        p_corrupt = self.plan.corrupt_probability
        if p_drop == 0.0 and p_corrupt == 0.0:
            return OUTCOME_OK
        roll = self._rng.random()
        if roll < p_drop:
            return OUTCOME_DROP
        if roll < p_drop + p_corrupt:
            return OUTCOME_CORRUPT
        return OUTCOME_OK

    def backoff_cycles(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            raise ConfigError("backoff attempt numbers start at 1")
        return self.plan.backoff_base_cycles * (2.0 ** (attempt - 1))


# ---------------------------------------------------------------------------
# CLI spec parsing


def _parse_failure(value: str) -> GPUFailure:
    try:
        gpu_text, cycle_text = value.split("@", 1)
        return GPUFailure(gpu=int(gpu_text), cycle=float(cycle_text))
    except ValueError as exc:
        raise ConfigError(
            f"bad fail-stop spec {value!r}: expected GPU@CYCLE "
            f"(e.g. fail=2@50000)") from exc


def _parse_window(value: str) -> DegradedWindow:
    parts = value.split(":")
    if len(parts) != 3:
        raise ConfigError(
            f"bad degraded-window spec {value!r}: expected "
            f"START:END:FACTOR (e.g. slow=1000:9000:0.25)")
    try:
        return DegradedWindow(start=float(parts[0]), end=float(parts[1]),
                              bandwidth_factor=float(parts[2]))
    except ValueError as exc:
        raise ConfigError(
            f"bad degraded-window spec {value!r}: {exc}") from exc


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse the CLI mini-language into a :class:`FaultPlan`.

    The spec is a comma-separated list of ``key=value`` tokens::

        seed=42,gpus=8,fail=2@50000,drop=0.01,corrupt=0.002,retries=5,
        backoff=16,detect=400,slow=1000:9000:0.25

    ``fail`` and ``slow`` may repeat; ``slow`` windows must be disjoint.
    ``gpus`` pins the plan to a system size (replay against any other size
    is refused). Unknown keys and malformed values raise
    :class:`~repro.errors.ConfigError`.
    """
    kwargs: Dict[str, object] = {}
    failures: List[GPUFailure] = []
    windows: List[DegradedWindow] = []
    for token in spec.replace(";", ",").split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ConfigError(
                f"bad fault-plan token {token!r}: expected key=value")
        key, value = (part.strip() for part in token.split("=", 1))
        try:
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "drop":
                kwargs["drop_probability"] = float(value)
            elif key == "corrupt":
                kwargs["corrupt_probability"] = float(value)
            elif key == "retries":
                kwargs["retry_budget"] = int(value)
            elif key == "backoff":
                kwargs["backoff_base_cycles"] = float(value)
            elif key == "detect":
                kwargs["drop_detection_cycles"] = float(value)
            elif key == "gpus":
                kwargs["gpus"] = int(value)
            elif key == "fail":
                failures.append(_parse_failure(value))
            elif key == "slow":
                windows.append(_parse_window(value))
            else:
                raise ConfigError(
                    f"unknown fault-plan key {key!r} (known: seed, drop, "
                    f"corrupt, retries, backoff, detect, gpus, fail, slow)")
        except ConfigError:
            raise
        except ValueError as exc:
            raise ConfigError(
                f"bad fault-plan value for {key!r}: {value!r}") from exc
    return FaultPlan(gpu_failures=tuple(failures),
                     degraded_windows=tuple(windows), **kwargs)
