"""MTTF-driven failure traces with topology fingerprints.

This module adopts the LinkGuardian trace-generator model (SNIPPETS.md
snippet 1, ROADMAP item 3): instead of hand-writing one-frame fault scripts,
*generate* a long failure trace from per-element reliability parameters and
replay slices of it through today's :class:`~repro.faults.plan.FaultPlan`
machinery.

Model
-----
Every directed link and every GPU of the configured fabric runs an
independent **alternating renewal process**: exponentially-distributed
up-times (mean = MTTF) alternate with exponentially-distributed repair
times (mean = MTTR). Three processes exist:

- **lossy links** — a link enters a lossy episode whose per-message
  corruption rate is sampled from an empirical loss-rate distribution
  (à la CorrOpt Table 1: most failures are mild, a heavy tail is severe);
- **degraded links** — a link throttles to a sampled fraction of nominal
  bandwidth (flapping lane / thermal throttling);
- **fail-stop GPUs** — a GPU dies and is eventually repaired (dead across
  any number of frame boundaries until then).

Determinism: every element gets its own :class:`random.Random` stream keyed
by ``sha256(f"{seed}:{kind}:{element}")``, so adding a GPU or reordering
iteration cannot perturb any other element's draws — the same seed always
yields the byte-identical trace.

Fingerprinting: the trace embeds :func:`~repro.timing.topology.
fingerprint_fields` and its hash for the fabric it was generated against.
:func:`validate_trace` refuses — field by field — replay against any other
fabric, and the CLI maps that to its own exit code.

Replay: :func:`plan_for_window` projects the trace onto one frame's
``[f*W, (f+1)*W)`` window and builds a ``FaultPlan`` for exactly that
window, carrying fail-stop state across frame boundaries (a GPU dead at
the window's start fails at cycle 0; repairs take effect only at the next
frame boundary — mid-frame resurrection is not modeled).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, TraceFingerprintError
from .plan import DegradedWindow, FaultPlan, GPUFailure

if TYPE_CHECKING:  # pragma: no cover
    from ..config import SystemConfig

# ``repro.config`` itself imports this package (FaultPlan is part of the
# system config), so the topology helpers — which need the full config —
# are imported lazily inside the functions that use them.


def _topology():
    from ..timing import topology
    return topology

#: trace file format marker and schema version
TRACE_FORMAT = "repro-failure-trace"
TRACE_VERSION = 1

#: event kinds, ordered pairs of (enter, leave) per renewal process
EVENT_LINK_LOSSY = "link_lossy"      # severity = per-message corruption rate
EVENT_LINK_REPAIR = "link_repair"    # severity = 0
EVENT_LINK_DEGRADE = "link_degrade"  # severity = bandwidth factor
EVENT_LINK_RESTORE = "link_restore"  # severity = 1
EVENT_GPU_FAIL = "gpu_fail"          # severity = 0
EVENT_GPU_REPAIR = "gpu_repair"      # severity = 1

ALL_EVENTS = (EVENT_LINK_LOSSY, EVENT_LINK_REPAIR, EVENT_LINK_DEGRADE,
              EVENT_LINK_RESTORE, EVENT_GPU_FAIL, EVENT_GPU_REPAIR)

#: empirical loss-rate distribution, CorrOpt Table 1 style: (rate, weight).
#: Most lossy episodes corrupt a small fraction of messages; a heavy tail
#: is severe enough to eat the whole retry budget.
DEFAULT_LOSS_RATES: Tuple[Tuple[float, float], ...] = (
    (0.001, 0.50),
    (0.01, 0.30),
    (0.05, 0.15),
    (0.25, 0.05),
)

#: empirical degraded-bandwidth factors: (factor, weight)
DEFAULT_DEGRADE_FACTORS: Tuple[Tuple[float, float], ...] = (
    (0.75, 0.40),
    (0.50, 0.40),
    (0.25, 0.15),
    (0.10, 0.05),
)


@dataclass(frozen=True)
class TraceEvent:
    """One state change of one fabric element at an absolute trace time."""

    time: float    # unit: cycles # absolute, from trace start
    element: str   # link ID (repro.timing.topology) or "gpu{N}"
    event: str     # one of ALL_EVENTS
    severity: float  # unit: 1 # rate or factor, event-specific

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"trace event time cannot be negative "
                              f"(got {self.time})")
        if self.event not in ALL_EVENTS:
            raise ConfigError(f"unknown trace event kind {self.event!r} "
                              f"(known: {', '.join(ALL_EVENTS)})")


@dataclass(frozen=True)
class TraceGenConfig:
    """Reliability parameters for :func:`generate_trace`.

    All MTTF/MTTR values are means of exponential distributions, in cycles
    at the simulated GPU clock. A ``None`` MTTF disables that failure
    process entirely (no draws are made for it).
    """

    seed: int = 0
    frame_cycles: float = 2_000_000.0   # unit: cycles # window length
    frames: int = 5                      # unit: 1 # trace horizon, in frames
    link_mttf_cycles: Optional[float] = 8_000_000.0   # unit: cycles
    link_mttr_cycles: float = 1_000_000.0             # unit: cycles
    degrade_mttf_cycles: Optional[float] = 6_000_000.0  # unit: cycles
    degrade_mttr_cycles: float = 2_000_000.0            # unit: cycles
    gpu_mttf_cycles: Optional[float] = 40_000_000.0   # unit: cycles
    gpu_mttr_cycles: float = 10_000_000.0             # unit: cycles
    loss_rates: Tuple[Tuple[float, float], ...] = DEFAULT_LOSS_RATES
    degrade_factors: Tuple[Tuple[float, float], ...] = DEFAULT_DEGRADE_FACTORS
    retry_budget: int = 8
    drop_detection_cycles: float = 400.0  # unit: cycles

    def __post_init__(self) -> None:
        if self.frame_cycles <= 0:
            raise ConfigError("frame window must be positive")
        if self.frames <= 0:
            raise ConfigError("trace horizon must cover at least one frame")
        for name, mttf, mttr in (
                ("link", self.link_mttf_cycles, self.link_mttr_cycles),
                ("degrade", self.degrade_mttf_cycles,
                 self.degrade_mttr_cycles),
                ("gpu", self.gpu_mttf_cycles, self.gpu_mttr_cycles)):
            if mttf is not None and mttf <= 0:
                raise ConfigError(f"{name} MTTF must be positive or None")
            if mttr <= 0:
                raise ConfigError(f"{name} MTTR must be positive")
        for name, table in (("loss_rates", self.loss_rates),
                            ("degrade_factors", self.degrade_factors)):
            if not table:
                raise ConfigError(f"{name} table cannot be empty")
            for value, weight in table:
                if weight <= 0:
                    raise ConfigError(f"{name} weights must be positive")
                if not 0.0 < value <= 1.0:
                    raise ConfigError(
                        f"{name} values must lie in (0, 1] (got {value})")
        if self.retry_budget < 0:
            raise ConfigError("retry budget cannot be negative")
        if self.drop_detection_cycles < 0:
            raise ConfigError("drop detection timeout cannot be negative")

    @property
    def horizon_cycles(self) -> float:  # unit: cycles
        """Total trace length."""
        return self.frame_cycles * self.frames


@dataclass(frozen=True)
class FailureTrace:
    """A generated failure trace, bound to one fabric by fingerprint."""

    version: int
    fingerprint: str
    topology: Tuple[Tuple[str, object], ...]  # fingerprint_fields, sorted
    generator: TraceGenConfig
    events: Tuple[TraceEvent, ...] = field(default_factory=tuple)

    @property
    def topology_dict(self) -> Dict[str, object]:
        return dict(self.topology)


def _element_rng(seed: int, kind: str, element: str) -> Random:
    """Independent stream per (seed, process kind, element).

    sha256 rather than ``hash()``: the taint lint bans salted ``hash()``
    anywhere near fingerprints, and PYTHONHASHSEED would break determinism.
    """
    digest = hashlib.sha256(f"{seed}:{kind}:{element}".encode()).digest()
    return Random(int.from_bytes(digest[:8], "big"))


def _sample_weighted(rng: Random,
                     table: Sequence[Tuple[float, float]]) -> float:
    """Draw one value from a (value, weight) table."""
    total = sum(weight for _, weight in table)
    roll = rng.random() * total
    acc = 0.0
    for value, weight in table:
        acc += weight
        if roll < acc:
            return value
    return table[-1][0]


def _renewal_events(rng: Random, element: str, horizon: float,
                    mttf: float, mttr: float, enter_event: str,
                    leave_event: str, enter_severity, leave_severity: float,
                    ) -> List[TraceEvent]:
    """One element's alternating up/down renewal process over [0, horizon).

    ``enter_severity`` is either a fixed float or a callable drawing the
    episode's severity from the same stream (so episode count and severity
    draws stay interleaved deterministically).
    """
    events: List[TraceEvent] = []
    t = rng.expovariate(1.0 / mttf)  # first failure after an up-time
    while t < horizon:
        severity = (enter_severity(rng) if callable(enter_severity)
                    else enter_severity)
        events.append(TraceEvent(time=t, element=element, event=enter_event,
                                 severity=severity))
        t += rng.expovariate(1.0 / mttr)
        if t >= horizon:
            break
        events.append(TraceEvent(time=t, element=element, event=leave_event,
                                 severity=leave_severity))
        t += rng.expovariate(1.0 / mttf)
    return events


def generate_trace(config: "SystemConfig",
                   gen: TraceGenConfig) -> FailureTrace:
    """Generate the deterministic failure trace of ``config``'s fabric.

    Elements are iterated in sorted order and each owns an independent
    seeded stream, so the output is a pure function of (fabric, gen).
    """
    topo = _topology()
    horizon = gen.horizon_cycles
    events: List[TraceEvent] = []

    for link in sorted(topo.directed_links(config)):
        if gen.link_mttf_cycles is not None:
            events.extend(_renewal_events(
                _element_rng(gen.seed, "lossy", link), link, horizon,
                gen.link_mttf_cycles, gen.link_mttr_cycles,
                EVENT_LINK_LOSSY, EVENT_LINK_REPAIR,
                lambda rng: _sample_weighted(rng, gen.loss_rates), 0.0))
        if gen.degrade_mttf_cycles is not None:
            events.extend(_renewal_events(
                _element_rng(gen.seed, "degrade", link), link, horizon,
                gen.degrade_mttf_cycles, gen.degrade_mttr_cycles,
                EVENT_LINK_DEGRADE, EVENT_LINK_RESTORE,
                lambda rng: _sample_weighted(rng, gen.degrade_factors), 1.0))

    if gen.gpu_mttf_cycles is not None:
        for g in range(config.num_gpus):
            events.extend(_renewal_events(
                _element_rng(gen.seed, "gpu", f"gpu{g}"), f"gpu{g}", horizon,
                gen.gpu_mttf_cycles, gen.gpu_mttr_cycles,
                EVENT_GPU_FAIL, EVENT_GPU_REPAIR, 0.0, 1.0))

    events.sort(key=lambda e: (e.time, e.element, e.event))
    fields = topo.fingerprint_fields(config)
    return FailureTrace(
        version=TRACE_VERSION,
        fingerprint=topo.topology_fingerprint(config),
        topology=tuple(sorted(fields.items())),
        generator=gen,
        events=tuple(events),
    )


# ---------------------------------------------------------------------------
# Serialization — canonical JSON so save -> load -> save is byte-identical.


def trace_to_dict(trace: FailureTrace) -> Dict[str, object]:
    gen = trace.generator
    return {
        "format": TRACE_FORMAT,
        "version": trace.version,
        "fingerprint": trace.fingerprint,
        "topology": trace.topology_dict,
        "generator": {
            "seed": gen.seed,
            "frame_cycles": gen.frame_cycles,
            "frames": gen.frames,
            "link_mttf_cycles": gen.link_mttf_cycles,
            "link_mttr_cycles": gen.link_mttr_cycles,
            "degrade_mttf_cycles": gen.degrade_mttf_cycles,
            "degrade_mttr_cycles": gen.degrade_mttr_cycles,
            "gpu_mttf_cycles": gen.gpu_mttf_cycles,
            "gpu_mttr_cycles": gen.gpu_mttr_cycles,
            "loss_rates": [list(pair) for pair in gen.loss_rates],
            "degrade_factors": [list(pair) for pair in gen.degrade_factors],
            "retry_budget": gen.retry_budget,
            "drop_detection_cycles": gen.drop_detection_cycles,
        },
        "events": [[e.time, e.element, e.event, e.severity]
                   for e in trace.events],
    }


def trace_from_dict(data: Dict[str, object]) -> FailureTrace:
    if not isinstance(data, dict) or data.get("format") != TRACE_FORMAT:
        raise ConfigError(
            f"not a failure trace: expected format={TRACE_FORMAT!r}")
    version = data.get("version")
    if version != TRACE_VERSION:
        raise ConfigError(
            f"unsupported failure-trace version {version!r} "
            f"(this build reads version {TRACE_VERSION})")
    try:
        g = dict(data["generator"])
        gen = TraceGenConfig(
            seed=int(g["seed"]),
            frame_cycles=float(g["frame_cycles"]),
            frames=int(g["frames"]),
            link_mttf_cycles=(None if g["link_mttf_cycles"] is None
                              else float(g["link_mttf_cycles"])),
            link_mttr_cycles=float(g["link_mttr_cycles"]),
            degrade_mttf_cycles=(None if g["degrade_mttf_cycles"] is None
                                 else float(g["degrade_mttf_cycles"])),
            degrade_mttr_cycles=float(g["degrade_mttr_cycles"]),
            gpu_mttf_cycles=(None if g["gpu_mttf_cycles"] is None
                             else float(g["gpu_mttf_cycles"])),
            gpu_mttr_cycles=float(g["gpu_mttr_cycles"]),
            loss_rates=tuple((float(v), float(w))
                             for v, w in g["loss_rates"]),
            degrade_factors=tuple((float(v), float(w))
                                  for v, w in g["degrade_factors"]),
            retry_budget=int(g["retry_budget"]),
            drop_detection_cycles=float(g["drop_detection_cycles"]),
        )
        events = tuple(
            TraceEvent(time=float(t), element=str(el), event=str(ev),
                       severity=float(sev))
            for t, el, ev, sev in data["events"])
        topology = dict(data["topology"])
        fingerprint = str(data["fingerprint"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed failure trace: {exc}") from exc
    return FailureTrace(version=TRACE_VERSION, fingerprint=fingerprint,
                        topology=tuple(sorted(topology.items())),
                        generator=gen, events=events)


def save_failure_trace(trace: FailureTrace, path) -> None:
    """Write ``trace`` as canonical JSON (sorted keys, stable separators)."""
    text = json.dumps(trace_to_dict(trace), sort_keys=True, indent=1)
    Path(path).write_text(text + "\n")


def load_failure_trace(path) -> FailureTrace:
    """Read a trace written by :func:`save_failure_trace`."""
    p = Path(path)
    if not p.is_file():
        raise ConfigError(f"failure trace not found: {p}")
    try:
        data = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"failure trace {p} is not valid JSON: "
                          f"{exc}") from exc
    return trace_from_dict(data)


# ---------------------------------------------------------------------------
# Replay validation and FaultPlan projection.


def validate_trace(trace: FailureTrace, config: "SystemConfig") -> None:
    """Refuse replay against a fabric the trace was not generated for.

    Raises :class:`~repro.errors.TraceFingerprintError` naming every
    identifying field that disagrees (kind, GPU count, link parameters),
    not just the opaque hash.
    """
    topo = _topology()
    system = topo.fingerprint_fields(config)
    stored = trace.topology_dict
    mismatched = []
    for name in sorted(set(system) | set(stored)):
        if system.get(name) != stored.get(name):
            mismatched.append(name)
    system_fp = topo.topology_fingerprint(config)
    if not mismatched and trace.fingerprint == system_fp:
        return
    details = "; ".join(
        f"{name}: trace={stored.get(name)!r} system={system.get(name)!r}"
        for name in mismatched) or (
        f"fingerprint: trace={trace.fingerprint} system={system_fp}")
    raise TraceFingerprintError(
        f"failure trace was generated for a different fabric "
        f"({details})", mismatched_fields=tuple(mismatched))


def _window_overlap(start: float, end: float, lo: float, hi: float) -> float:
    """Length of [start, end) ∩ [lo, hi)."""
    return max(0.0, min(end, hi) - max(start, lo))


def _element_intervals(trace: FailureTrace, enter_event: str,
                       leave_event: str,
                       ) -> Dict[str, List[Tuple[float, float, float]]]:
    """Per-element (start, end, severity) episodes over the whole trace.

    An episode still open at the end of the trace closes at the horizon.
    """
    horizon = trace.generator.horizon_cycles
    open_at: Dict[str, Tuple[float, float]] = {}
    episodes: Dict[str, List[Tuple[float, float, float]]] = {}
    for event in trace.events:
        if event.event == enter_event:
            open_at[event.element] = (event.time, event.severity)
        elif event.event == leave_event and event.element in open_at:
            start, severity = open_at.pop(event.element)
            episodes.setdefault(event.element, []).append(
                (start, event.time, severity))
    for element, (start, severity) in sorted(open_at.items()):
        episodes.setdefault(element, []).append((start, horizon, severity))
    return episodes


def _degraded_windows_for(trace: FailureTrace, lo: float,
                          hi: float) -> Tuple[DegradedWindow, ...]:
    """Disjoint piecewise-min degraded windows clipped to [lo, hi).

    Different links may degrade at overlapping times; ``FaultPlan`` models
    one fabric-wide factor and rejects overlapping windows, so overlaps
    collapse to the most degraded factor over each elementary interval.
    """
    episodes = _element_intervals(trace, EVENT_LINK_DEGRADE,
                                  EVENT_LINK_RESTORE)
    clipped: List[Tuple[float, float, float]] = []
    for intervals in episodes.values():
        for start, end, factor in intervals:
            s, e = max(start, lo), min(end, hi)
            if s < e:
                clipped.append((s - lo, e - lo, factor))
    if not clipped:
        return ()
    bounds = sorted({b for s, e, _ in clipped for b in (s, e)})
    pieces: List[DegradedWindow] = []
    for s, e in zip(bounds, bounds[1:]):
        mid = (s + e) / 2.0
        factors = [f for cs, ce, f in clipped if cs <= mid < ce]
        if factors:
            factor = min(factors)
            if pieces and pieces[-1].end == s and \
                    pieces[-1].bandwidth_factor == factor:
                pieces[-1] = DegradedWindow(
                    start=pieces[-1].start, end=e, bandwidth_factor=factor)
            else:
                pieces.append(DegradedWindow(start=s, end=e,
                                             bandwidth_factor=factor))
    return tuple(pieces)


def plan_for_window(trace: FailureTrace, config: "SystemConfig",
                    frame_index: int) -> Optional[FaultPlan]:
    """Project the trace onto frame ``frame_index``'s window as a FaultPlan.

    The window is ``[f*W, (f+1)*W)`` with ``W = generator.frame_cycles``.
    Fail-stop state carries across frame boundaries: a GPU already dead at
    the window's start fails at relative cycle 0; one that dies inside the
    window fails at its relative time. Repairs take effect only at the next
    frame boundary. Lossy episodes become a window-averaged per-message
    ``corrupt_probability``; degraded episodes become clipped disjoint
    windows. Returns ``None`` when the window is fault-free, so callers can
    share the fault-free oracle run.
    """
    validate_trace(trace, config)
    gen = trace.generator
    if not 0 <= frame_index < gen.frames:
        raise ConfigError(
            f"frame {frame_index} is outside the trace horizon "
            f"(0..{gen.frames - 1})")
    lo = gen.frame_cycles * frame_index
    hi = lo + gen.frame_cycles

    failures: List[GPUFailure] = []
    gpu_episodes = _element_intervals(trace, EVENT_GPU_FAIL,
                                      EVENT_GPU_REPAIR)
    for element, intervals in sorted(gpu_episodes.items()):
        gpu = int(element[len("gpu"):])
        for start, end, _ in intervals:
            if start < hi and end > lo:  # dead at some point this window
                failures.append(GPUFailure(gpu=gpu,
                                           cycle=max(0.0, start - lo)))
                break  # one fail-stop per GPU per frame (plan invariant)

    num_links = max(1, len(_topology().directed_links(config)))
    lossy = _element_intervals(trace, EVENT_LINK_LOSSY, EVENT_LINK_REPAIR)
    weighted_loss = 0.0
    for intervals in lossy.values():
        for start, end, rate in intervals:
            weighted_loss += rate * _window_overlap(start, end, lo, hi)
    corrupt_probability = min(1.0, weighted_loss
                              / (gen.frame_cycles * num_links))

    windows = _degraded_windows_for(trace, lo, hi)

    if not failures and corrupt_probability == 0.0 and not windows:
        return None
    return FaultPlan(
        seed=gen.seed * 7919 + frame_index,
        corrupt_probability=corrupt_probability,
        retry_budget=gen.retry_budget,
        drop_detection_cycles=gen.drop_detection_cycles,
        gpu_failures=tuple(failures),
        degraded_windows=windows,
        gpus=config.num_gpus,
    )
