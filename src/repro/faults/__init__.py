"""Fault injection and graceful degradation for the multi-GPU simulation.

:mod:`repro.faults.plan` defines the deterministic, seedable
:class:`FaultPlan` (fail-stop GPUs, transient link errors, degraded-
bandwidth windows) plus the per-run :class:`FaultInjector`;
:mod:`repro.faults.degraded` holds the recovery planning algorithms the
CHOPIN schemes use to finish a frame after a GPU dies.
"""

from .plan import (OUTCOME_CORRUPT, OUTCOME_DROP, OUTCOME_OK, DegradedWindow,
                   FaultInjector, FaultPlan, GPUFailure, parse_fault_plan)

__all__ = [
    "DegradedWindow",
    "FaultInjector",
    "FaultPlan",
    "GPUFailure",
    "OUTCOME_CORRUPT",
    "OUTCOME_DROP",
    "OUTCOME_OK",
    "parse_fault_plan",
]
