"""Fault injection and graceful degradation for the multi-GPU simulation.

:mod:`repro.faults.plan` defines the deterministic, seedable
:class:`FaultPlan` (fail-stop GPUs, transient link errors, degraded-
bandwidth windows) plus the per-run :class:`FaultInjector`;
:mod:`repro.faults.degraded` holds the recovery planning algorithms the
CHOPIN schemes use to finish a frame after a GPU dies;
:mod:`repro.faults.traces` generates MTTF-driven failure traces bound to a
topology fingerprint and projects per-frame windows of them back into
fault plans for soak runs.
"""

from .plan import (OUTCOME_CORRUPT, OUTCOME_DROP, OUTCOME_OK, DegradedWindow,
                   FaultInjector, FaultPlan, GPUFailure, parse_fault_plan)
from .traces import (FailureTrace, TraceEvent, TraceGenConfig,
                     generate_trace, load_failure_trace, plan_for_window,
                     save_failure_trace, validate_trace)

__all__ = [
    "DegradedWindow",
    "FailureTrace",
    "FaultInjector",
    "FaultPlan",
    "GPUFailure",
    "OUTCOME_CORRUPT",
    "OUTCOME_DROP",
    "OUTCOME_OK",
    "TraceEvent",
    "TraceGenConfig",
    "generate_trace",
    "load_failure_trace",
    "parse_fault_plan",
    "plan_for_window",
    "save_failure_trace",
    "validate_trace",
]
