"""Degraded-mode planning: who takes over when a GPU fail-stops.

These are the scheme-agnostic pieces of graceful degradation; the CHOPIN
timing pass assembles them into a per-group recovery plan:

- :func:`first_unfinished_group` maps a fail-stop cycle onto the first
  composition group the dead GPU cannot complete (derived from a fault-free
  baseline timeline);
- :func:`nearest_survivor` picks the deterministic inheritor of a dead
  GPU's screen tiles (and, for transparent groups, its layer chunk — the
  nearest neighbour keeps the chunk order contiguous, which blending-order
  correctness requires);
- :func:`redistribute_draw_works` reassigns lost draw commands to survivors
  through the paper's own least-remaining-triangles scheduler, seeded with
  the survivors' existing loads;
- :func:`rebuild_reduction` re-derives the adjacent-pair reduction tree over
  an arbitrary survivor set from per-layer touched-tile bitmaps, and
  :func:`scatter_sizes` re-derives the final scatter with dead GPUs' tiles
  reassigned to their inheritors.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.draw_scheduler import LeastRemainingTrianglesScheduler
from ..errors import FaultError


def first_unfinished_group(involvement_ends: Sequence[float],
                           cycle: float) -> int:
    """First group a GPU dying at ``cycle`` cannot complete.

    ``involvement_ends[gi]`` is the baseline cycle at which the GPU finished
    all its work (rendering *and* composition) for group ``gi``. Returns
    ``len(involvement_ends)`` if the GPU finished the whole frame first —
    such a failure needs no recovery.
    """
    for gi, end in enumerate(involvement_ends):
        if end > cycle:
            return gi
    return len(involvement_ends)


def nearest_survivor(gpu: int, survivors: Sequence[int]) -> int:
    """Deterministic inheritor: closest survivor by index, ties to the left."""
    alive = sorted(survivors)
    if not alive:
        raise FaultError("no surviving GPU to inherit from GPU%d" % gpu)
    return min(alive, key=lambda s: (abs(s - gpu), s))


def redistribute_draw_works(lost_works: Sequence, alive: Sequence[int],
                            base_triangles: Mapping[int, int],
                            num_gpus: int) -> List[int]:
    """Assign each lost draw (anything with ``.triangles``) to a survivor.

    Reuses the least-remaining-triangles draw scheduler with the dead GPUs
    disabled and the survivors' current triangle loads pre-seeded, so
    recovery work lands on the least-loaded survivors exactly the way the
    original assignment pass would have placed it.
    """
    alive_set = set(alive)
    if not alive_set:
        raise FaultError("cannot redistribute draws: no survivors")
    scheduler = LeastRemainingTrianglesScheduler(num_gpus)
    for gpu in range(num_gpus):
        if gpu not in alive_set:
            scheduler.disable_gpu(gpu)
    for gpu in alive_set:
        scheduler.scheduled[gpu] = int(base_triangles.get(gpu, 0))
    return [scheduler.pick(work.triangles) for work in lost_works]


def repair_region_matrix(region_pixels: np.ndarray, dead: Sequence[int],
                         inherit: Mapping[int, int]) -> np.ndarray:
    """Fold dead GPUs' composition messages onto their inheritors.

    Row ``f`` (the sub-image pixels the dead GPU would have sent — now
    produced by its re-rendering inheritor) and column ``f`` (messages bound
    for its owned tiles, which the inheritor now owns) merge into
    ``inherit[f]``; the diagonal stays zero (local composition is free).
    """
    matrix = np.array(region_pixels, dtype=np.int64, copy=True)
    for f in sorted(dead):
        a = inherit[f]
        if a == f:
            raise FaultError(f"GPU{f} cannot inherit from itself")
        for dst in range(matrix.shape[1]):
            if dst != a:
                matrix[a, dst] += matrix[f, dst]
        for src in range(matrix.shape[0]):
            if src != a:
                matrix[src, a] += matrix[src, f]
        matrix[f, :] = 0
        matrix[:, f] = 0
    return matrix


def repair_tile_sources(touched_tiles: Sequence[np.ndarray],
                        dead: Sequence[int],
                        inherit: Mapping[int, int]) -> List[np.ndarray]:
    """Fold dead GPUs' touched-tile bitmaps onto their re-rendering
    inheritors (the DFB analogue of :func:`repair_region_matrix`).

    The fold is a *union*, not a sum: a tile both the dead GPU and its
    inheritor touched is streamed once by the survivor, where the matrix
    repair conservatively bills both messages — tile granularity makes the
    repaired traffic strictly more precise.
    """
    merged = [np.array(b, dtype=bool, copy=True) for b in touched_tiles]
    for f in sorted(dead):
        a = inherit[f]
        if a == f:
            raise FaultError(f"GPU{f} cannot inherit from itself")
        merged[a] |= merged[f]
        merged[f][:] = False
    return merged


def repair_tile_owner(tile_owner: np.ndarray, dead: Sequence[int],
                      inherit: Mapping[int, int]) -> np.ndarray:
    """Re-own dead GPUs' framebuffer tiles to their inheritors.

    ``inherit`` maps every dead GPU to a *survivor*, so a single rewrite
    pass suffices (no inheritance chains to chase).
    """
    owner = np.array(tile_owner, dtype=np.int64, copy=True)
    for f in sorted(dead):
        a = inherit[f]
        if a == f or a in dead:
            raise FaultError(f"GPU{f} must be inherited by a survivor")
        owner[owner == f] = a
    return owner


# ---------------------------------------------------------------------------
# Tile-granularity geometry for transparent-group repair


def tile_pixel_counts(grid) -> np.ndarray:
    """(tiles_y, tiles_x) pixel area of every tile (edge tiles clamped)."""
    counts = np.zeros((grid.tiles_y, grid.tiles_x), dtype=np.int64)
    for ty in range(grid.tiles_y):
        for tx in range(grid.tiles_x):
            x0, y0, x1, y1 = grid.tile_bounds(tx, ty)
            counts[ty, tx] = (x1 - x0) * (y1 - y0)
    return counts


def tile_owner_matrix(grid, num_gpus: int) -> np.ndarray:
    """(tiles_y, tiles_x) owning GPU of every tile (raster interleave)."""
    return (np.arange(grid.num_tiles, dtype=np.int64)
            .reshape(grid.tiles_y, grid.tiles_x) % num_gpus)


def merge_chunks(members: Sequence[int], dead: Sequence[int],
                 inherit_chunk: Mapping[int, int]) -> Dict[int, List[int]]:
    """Which original layer chunks each survivor renders, in layer order.

    ``inherit_chunk`` must map every dead member to an *adjacent* survivor
    (:func:`nearest_survivor` guarantees this), so each survivor's merged
    chunk list is contiguous in submission order — the invariant that keeps
    non-commutative blending correct.
    """
    owner: Dict[int, int] = {}
    for m in members:
        target = m
        seen = set()
        while target in dead:
            if target in seen:
                raise FaultError("cyclic chunk inheritance among dead GPUs")
            seen.add(target)
            target = inherit_chunk[target]
        owner[m] = target
    merged: Dict[int, List[int]] = {}
    for m in sorted(members):
        merged.setdefault(owner[m], []).append(m)
    for chunks in merged.values():
        if chunks != list(range(chunks[0], chunks[0] + len(chunks))):
            raise FaultError(
                f"chunk inheritance broke contiguity: {chunks} — transparent "
                f"blending order would be violated")
    return merged


def rebuild_reduction(members: Sequence[int],
                      bitmaps: Mapping[int, np.ndarray],
                      tile_pixels: np.ndarray,
                      ) -> Tuple[List[List[Tuple[int, int, int]]], int,
                                 np.ndarray]:
    """Adjacent-pair reduction tree over an arbitrary survivor set.

    ``members`` are the surviving layer holders in submission order;
    ``bitmaps[m]`` is the touched-tile bitmap of m's (merged) layer. Returns
    ``(levels, root, root_bitmap)`` where ``levels`` holds
    ``(sender, receiver, pixels)`` triples exactly like the fault-free prep.
    """
    if not members:
        raise FaultError("reduction tree needs at least one member")
    current = {m: np.array(bitmaps[m], dtype=bool, copy=True)
               for m in members}
    survivors = sorted(members)
    levels: List[List[Tuple[int, int, int]]] = []
    while len(survivors) > 1:
        level: List[Tuple[int, int, int]] = []
        nxt: List[int] = []
        for i in range(0, len(survivors) - 1, 2):
            receiver, sender = survivors[i], survivors[i + 1]
            pixels = int(tile_pixels[current[sender]].sum())
            current[receiver] = current[receiver] | current[sender]
            level.append((sender, receiver, pixels))
            nxt.append(receiver)
        if len(survivors) % 2 == 1:
            nxt.append(survivors[-1])
        survivors = nxt
        levels.append(level)
    root = survivors[0]
    return levels, root, current[root]


def scatter_sizes(root_bitmap: np.ndarray, tile_pixels: np.ndarray,
                  tile_owner: np.ndarray, dead: Sequence[int],
                  inherit: Mapping[int, int]) -> Dict[int, int]:
    """Final-scatter pixel counts with dead GPUs' tiles reassigned."""
    dead_set = set(dead)
    sizes: Dict[int, int] = {}
    for ty in range(root_bitmap.shape[0]):
        for tx in range(root_bitmap.shape[1]):
            if not root_bitmap[ty, tx]:
                continue
            owner = int(tile_owner[ty, tx])
            while owner in dead_set:
                owner = inherit[owner]
            sizes[owner] = sizes.get(owner, 0) + int(tile_pixels[ty, tx])
    return sizes
