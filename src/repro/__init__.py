"""CHOPIN: scalable multi-GPU split-frame rendering via parallel image
composition — a full reproduction of Ren & Lis, HPCA 2021.

The package layers, bottom-up:

- :mod:`repro.sim` — a discrete-event simulation kernel;
- :mod:`repro.geometry` / :mod:`repro.raster` / :mod:`repro.shading` /
  :mod:`repro.framebuffer` — a functional graphics pipeline;
- :mod:`repro.composition` — image-composition operators and exchange
  algorithms (direct-send, binary-swap, radix-k);
- :mod:`repro.traces` — the synthetic Table III workload suite;
- :mod:`repro.timing` — cycle-level GPU and interconnect models;
- :mod:`repro.core` — CHOPIN's contribution: composition grouping, the
  draw-command scheduler, and the image composition scheduler;
- :mod:`repro.sfr` — full SFR schemes (duplication, GPUpd, CHOPIN, AFR);
- :mod:`repro.harness` — experiment drivers reproducing every table/figure.

Quickstart::

    from repro import load_benchmark, make_setup, run

    setup = make_setup(scale="tiny", num_gpus=8)
    trace = load_benchmark("cod2", "tiny")
    result = run("chopin+sched", trace, setup)
    print(result.frame_cycles)
"""

from .config import GPUConfig, LinkConfig, SystemConfig, TABLE2
from .errors import (CompositionError, ConfigError, PipelineError,
                     ReproError, SchedulingError, SimulationError,
                     TraceError)
from .harness import MAIN_SCHEMES, SCHEMES, make_setup, run, run_benchmark
from .stats import RunStats, gmean, speedup
from .traces import BENCHMARK_NAMES, load_benchmark, load_suite
from .validation import validate_schemes

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_NAMES",
    "CompositionError",
    "ConfigError",
    "GPUConfig",
    "LinkConfig",
    "MAIN_SCHEMES",
    "PipelineError",
    "ReproError",
    "RunStats",
    "SCHEMES",
    "SchedulingError",
    "SimulationError",
    "SystemConfig",
    "TABLE2",
    "TraceError",
    "__version__",
    "gmean",
    "load_benchmark",
    "load_suite",
    "make_setup",
    "run",
    "run_benchmark",
    "speedup",
    "validate_schemes",
]
