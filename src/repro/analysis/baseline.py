"""JSON finding baseline: incremental adoption for the deep passes.

A baseline freezes the currently-known findings so CI can fail on *new*
ones only. Keys are ``(path, rule, message)`` — deliberately excluding
line/column, so unrelated edits that shift a finding a few lines do not
break the build; changing the message (e.g. the units involved) does.

Workflow::

    python -m repro lint --deep --update-baseline analysis-baseline.json
    # commit analysis-baseline.json; later runs:
    python -m repro lint --deep --baseline analysis-baseline.json

Paths are stored as given on the command line (POSIX separators), so the
baseline must be generated from the same directory CI runs in (the repo
root).
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List, Sequence, Set, Tuple, Union

from ..errors import ConfigError
from .simlint import Finding

BASELINE_VERSION = 1

BaselineKey = Tuple[str, str, str]


def finding_key(finding: Finding) -> BaselineKey:
    """Stable identity of a finding across line drift."""
    return (pathlib.PurePath(finding.path).as_posix(), finding.rule,
            finding.message)


def load_baseline(path: Union[str, pathlib.Path]) -> Set[BaselineKey]:
    """Read a baseline file; raises ConfigError on a malformed one."""
    file_path = pathlib.Path(path)
    try:
        doc = json.loads(file_path.read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {file_path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {file_path} is not valid JSON: {exc}")
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"baseline {file_path} has unsupported format "
            f"(want version {BASELINE_VERSION})")
    keys: Set[BaselineKey] = set()
    for entry in doc.get("findings", []):
        try:
            keys.add((str(entry["path"]), str(entry["rule"]),
                      str(entry["message"])))
        except (KeyError, TypeError):
            raise ConfigError(
                f"baseline {file_path} has a malformed finding entry")
    return keys


def save_baseline(path: Union[str, pathlib.Path],
                  findings: Iterable[Finding]) -> int:
    """Write the baseline for ``findings``; returns the entry count."""
    entries = sorted({finding_key(f) for f in findings})
    doc = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "rule": r, "message": m} for p, r, m in entries],
    }
    pathlib.Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return len(entries)


def filter_baselined(findings: Sequence[Finding],
                     baseline: Set[BaselineKey]
                     ) -> Tuple[List[Finding], int]:
    """Split findings into (new, count suppressed by the baseline)."""
    new = [f for f in findings if finding_key(f) not in baseline]
    return new, len(findings) - len(new)
