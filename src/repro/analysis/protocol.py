"""Resource-protocol / deadlock analysis pass (deep).

The DES kernel's resources (:mod:`repro.sim.resources`) follow a strict
protocol: a process calls ``resource.request()``, ``yield``\\ s the
returned request event until granted, and must ``release(req)`` (or
``withdraw(req)``) every hold on every exit path — including the
``GeneratorExit`` path taken when :meth:`Process.kill` fail-stops the
process mid-hold. The runtime deadlock watchdog only detects the wedge
*after* it happens; this pass proves the absence of whole classes of
wedges statically, before the composition scheduler grows tile-level
pipelining.

It models generator-process lifecycles over the
:class:`~repro.analysis.flow.Project` substrate, abstractly executing
each function body and tracking every hold through the states
``REQUESTED -> HELD -> RELEASED`` (or ``ESCAPED`` when the request
object leaves the function through a return, container, or unresolvable
call). Four finding ids:

``lock-order-cycle``
    The global acquisition-order graph (an edge ``A -> B`` whenever some
    process waits on ``B`` while holding ``A``, followed through calls
    and ``yield from`` delegation) contains a cycle — the classic static
    deadlock signal. Same-resource re-entry (``A -> A``) is *not*
    flagged: with ``capacity > 1`` it is a legitimate pattern.

``leaked-hold``
    A path from acquire to process exit with no release: a hold still
    live when the function ends, a granted request never bound to a
    name, a request result discarded as a bare statement, the last
    reference to a live hold rebound, or a ``yield`` while holding
    inside a ``try`` whose ``finally`` does not release the hold (an
    exception or kill at that yield leaks it forever).

``yield-while-holding``
    A ``yield`` of an unrelated event while a hold is live and
    unprotected by a ``finally`` release. Some holds legitimately span
    timeouts (streaming a payload occupies the port by design) — those
    are recognized as protected when the release sits in a ``finally``,
    and can also be allowlisted per resource name via
    :attr:`ProtocolChecker.allowed_holds`.

``double-release``
    A strict ``release()`` of a request that the same path already
    released (the runtime raises ``SimulationError`` for this).
    ``withdraw``/``cancel`` never flag: ``withdraw`` is the
    idempotent-safe cleanup form used in ``finally`` blocks.

Resource identity is the attribute/parameter *name* with subscripts
stripped (``self.egress[src]`` and ``self.egress[dst]`` are both
``egress``), which matches how the acquisition-order discipline is
actually designed. See DESIGN.md §15 for the model and its known
unsoundness (dynamic dispatch, holds passed through containers,
optimistic branch merging).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterator, List, Optional, Sequence,
                    Set, Tuple)

from .flow import FunctionInfo, Project
from .rules import ProjectRule, register_project
from .simlint import Finding

RULE_CYCLE = "lock-order-cycle"
RULE_LEAK = "leaked-hold"
RULE_YIELD = "yield-while-holding"
RULE_DOUBLE = "double-release"

#: hold lifecycle states, in "progress" order (branch merges keep the
#: most-progressed state: optimistic, to avoid false leak positives)
REQUESTED, HELD, ESCAPED, RELEASED = range(4)

#: methods that end a hold; only the strict form flags double-release
_RELEASE_METHODS = frozenset({"release", "withdraw", "cancel"})


def _param_tag(name: str) -> str:
    return f"<param:{name}>"


def _strip_tag(key: str) -> str:
    if key.startswith("<param:") and key.endswith(">"):
        return key[len("<param:"):-1]
    return key


def _is_request_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "request")


def _release_kind(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_METHODS and node.args):
        return node.func.attr
    return None


class _Hold:
    """One tracked request event inside one function."""

    __slots__ = ("resource", "node", "names", "state", "release_line")

    def __init__(self, resource: str, node: ast.AST) -> None:
        self.resource = resource
        self.node = node
        self.names: Set[str] = set()
        self.state = REQUESTED
        self.release_line = 0

    @property
    def live(self) -> bool:
        return self.state in (REQUESTED, HELD)


@dataclass
class ProtocolSummary:
    """What one function does to resources, seen from a call site."""

    #: resource keys acquired inside (transitively); params tagged
    acquires: FrozenSet[str] = frozenset()
    #: parameter names this function releases (directly or via callees)
    releases_params: FrozenSet[str] = frozenset()
    #: internal held -> acquired order edges (keys may be param-tagged)
    edges: Tuple[Tuple[str, str], ...] = ()


class ProtocolChecker:
    """Runs the resource-protocol pass over a project."""

    severity = "error"

    def __init__(self, project: Project,
                 allowed_holds: FrozenSet[str] = frozenset()) -> None:
        self.project = project
        self.allowed_holds = frozenset(allowed_holds)
        self.findings: List[Finding] = []
        self._summaries: Dict[str, ProtocolSummary] = {}
        #: (held, acquired) -> (function qualname, path, line) witness
        self._edges: Dict[Tuple[str, str], Tuple[str, str, int]] = {}

    def run(self) -> List[Finding]:
        for qualname in sorted(self.project.functions):
            self.summary(self.project.functions[qualname])
        self._report_cycles()
        return sorted(self.findings)

    def summary(self, fn: FunctionInfo) -> ProtocolSummary:
        if fn.qualname in self._summaries:
            return self._summaries[fn.qualname]
        self._summaries[fn.qualname] = ProtocolSummary()  # recursion guard
        summary = _ProtocolEval(self, fn).run()
        self._summaries[fn.qualname] = summary
        return summary

    def add_edge(self, held: str, acquired: str, fn: FunctionInfo,
                 node: ast.AST) -> None:
        held, acquired = _strip_tag(held), _strip_tag(acquired)
        if held == acquired:
            return  # capacity-dependent re-entry, not an order violation
        self._edges.setdefault(
            (held, acquired),
            (fn.qualname, fn.module.path, getattr(node, "lineno", 1)))

    def report(self, fn: FunctionInfo, node: ast.AST, rule: str,
               message: str) -> None:
        finding = Finding(
            path=fn.module.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), rule=rule, message=message,
            severity=self.severity)
        if finding not in self.findings:
            self.findings.append(finding)

    # -- acquisition-order cycles --------------------------------------------

    def _report_cycles(self) -> None:
        graph: Dict[str, Set[str]] = {}
        for held, acquired in self._edges:
            graph.setdefault(held, set()).add(acquired)
            graph.setdefault(acquired, set())
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            members = set(component)
            cycle_edges = sorted(
                edge for edge in self._edges
                if edge[0] in members and edge[1] in members)
            qualname, path, line = self._edges[cycle_edges[0]]
            described = "; ".join(
                f"{a} -> {b} (in "
                f"{self._edges[(a, b)][0].rsplit('.', 1)[-1]})"
                for a, b in cycle_edges)
            self.findings.append(Finding(
                path=path, line=line, col=0, rule=RULE_CYCLE,
                message=(
                    "acquisition-order cycle between resources "
                    f"{{{', '.join(sorted(members))}}}: {described} — "
                    "processes taking these in conflicting orders can "
                    "deadlock"),
                severity=self.severity))


class _ProtocolEval:
    """Abstract execution of one function body for the hold protocol."""

    def __init__(self, checker: ProtocolChecker, fn: FunctionInfo) -> None:
        self.checker = checker
        self.project = checker.project
        self.fn = fn
        self.params = set(fn.param_names())
        self.env: Dict[str, _Hold] = {}
        self.holds: List[_Hold] = []
        #: resource-looking aliases: ``hop = self._ring[(a, b)]``
        self._res_alias: Dict[str, str] = {}
        self.try_stack: List[ast.Try] = []
        self._hazard_reported: Set[int] = set()
        self.acquires: Set[str] = set()
        self.releases_params: Set[str] = set()
        self.edges: List[Tuple[str, str]] = []

    def run(self) -> ProtocolSummary:
        self.exec_block(self.fn.node.body)
        for hold in self.holds:
            if hold.live:
                self.checker.report(
                    self.fn, hold.node, RULE_LEAK,
                    f"hold on '{_strip_tag(hold.resource)}' acquired here "
                    "is never released on some path through "
                    f"`{self.fn.name}`")
        return ProtocolSummary(
            acquires=frozenset(self.acquires),
            releases_params=frozenset(self.releases_params),
            edges=tuple(dict.fromkeys(self.edges)))

    # -- resource identity ---------------------------------------------------

    def _resource_key(self, expr: ast.expr) -> Optional[str]:
        while isinstance(expr, ast.Subscript):
            expr = expr.value
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            if expr.id in self._res_alias:
                return self._res_alias[expr.id]
            if expr.id in self.params:
                return _param_tag(expr.id)
            return expr.id
        return None

    # -- statements ----------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._exec_assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                self._exec_yield(stmt.value)
            elif _is_request_call(stmt.value):
                # result discarded: the grant can never be released
                hold = self._acquire(stmt.value)
                hold.state = HELD
                self.checker.report(
                    self.fn, stmt.value, RULE_LEAK,
                    f"request on '{_strip_tag(hold.resource)}' is "
                    "discarded — the granted hold can never be released")
                hold.state = ESCAPED
            else:
                self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escape_named(stmt.value)
                self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_try(stmt)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _exec_assign(self, targets: List[ast.expr],
                     value: ast.expr) -> None:
        inner = value
        if isinstance(inner, ast.Yield) and inner.value is not None:
            # ``req = yield port.request()``: commit-on-grant idiom
            inner = inner.value
            if _is_request_call(inner):
                hold = self._acquire(inner)
                self._commit(hold, value)
                self._bind_targets(targets, hold, value)
                return
            self._exec_yield(value)
            self._rebind_only(targets)
            return
        if _is_request_call(inner):
            hold = self._acquire(inner)
            self._bind_targets(targets, hold, value)
            return
        if isinstance(inner, ast.Name) and inner.id in self.env:
            self._bind_targets(targets, self.env[inner.id], value)
            return
        self.eval(value)
        self._rebind_only(targets)
        # remember resource-shaped aliases for later ``alias.request()``
        if len(targets) == 1 and isinstance(targets[0], ast.Name) \
                and isinstance(inner, (ast.Attribute, ast.Subscript,
                                       ast.Name)):
            key = self._resource_key(inner)
            if key is not None:
                self._res_alias[targets[0].id] = key

    def _bind_targets(self, targets: List[ast.expr], hold: _Hold,
                      value: ast.expr) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                self._unbind(target.id, target)
                self.env[target.id] = hold
                hold.names.add(target.id)
            else:
                # stored into an attribute/container: leaves our model
                hold.state = ESCAPED

    def _rebind_only(self, targets: List[ast.expr]) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                self._unbind(target.id, target)
            elif isinstance(target, (ast.Tuple, ast.List)):
                self._rebind_only(list(target.elts))

    def _unbind(self, name: str, node: ast.AST) -> None:
        hold = self.env.pop(name, None)
        if hold is None:
            return
        hold.names.discard(name)
        if not hold.names and hold.live:
            self.checker.report(
                self.fn, node, RULE_LEAK,
                f"rebinding `{name}` drops the last reference to a live "
                f"hold on '{_strip_tag(hold.resource)}' (acquired at "
                f"line {getattr(hold.node, 'lineno', '?')})")
            hold.state = ESCAPED

    def _escape_named(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in self.env:
                hold = self.env[node.id]
                if hold.live:
                    hold.state = ESCAPED

    # -- branching -----------------------------------------------------------

    def _snapshot(self) -> Dict[int, int]:
        return {index: hold.state
                for index, hold in enumerate(self.holds)}

    def _restore(self, snap: Dict[int, int]) -> None:
        for index, state in snap.items():
            self.holds[index].state = state

    def _merge(self, outcomes: List[Dict[int, int]]) -> None:
        for index, hold in enumerate(self.holds):
            states = [snap[index] for snap in outcomes if index in snap]
            if states:
                hold.state = max(states)

    def _exec_branches(self, branches: List[List[ast.stmt]]) -> None:
        before = self._snapshot()
        outcomes = []
        for branch in branches:
            self._restore(before)
            self.exec_block(branch)
            outcomes.append(self._snapshot())
        self._merge(outcomes)

    def _exec_try(self, stmt: ast.Try) -> None:
        before = self._snapshot()
        self.try_stack.append(stmt)
        self.exec_block(stmt.body)
        self.exec_block(stmt.orelse)
        after_body = self._snapshot()
        outcomes = [after_body]
        for handler in stmt.handlers:
            # a handler observes a *partially executed* body; starting it
            # from the pre-body state keeps a handler-side release of the
            # same hold from counting as a double release
            self._restore(before)
            self.exec_block(handler.body)
            outcomes.append(self._snapshot())
        self.try_stack.pop()
        self._merge(outcomes)
        self.exec_block(stmt.finalbody)

    # -- yields: commits, hazards, order edges -------------------------------

    def _exec_yield(self, expr: ast.expr) -> None:
        inner = getattr(expr, "value", None)
        committed: Optional[_Hold] = None
        if isinstance(expr, ast.YieldFrom) and isinstance(inner, ast.Call):
            self._eval_call(inner)
        elif _is_request_call(inner):
            hold = self._acquire(inner)
            self._commit(hold, expr)
            self.checker.report(
                self.fn, expr, RULE_LEAK,
                f"granted request on '{_strip_tag(hold.resource)}' is "
                "never bound to a name and can never be released")
            hold.state = ESCAPED
            committed = hold
        elif isinstance(inner, ast.Name) and inner.id in self.env:
            committed = self.env[inner.id]
            self._commit(committed, expr)
        elif inner is not None:
            self.eval(inner)
        self._check_yield_hazards(expr, committed)

    def _commit(self, hold: _Hold, node: ast.AST) -> None:
        if hold.state == REQUESTED:
            hold.state = HELD
        for other in self.holds:
            if other is not hold and other.state == HELD:
                self._order_edge(other.resource, hold.resource, node)

    def _order_edge(self, held: str, acquired: str,
                    node: ast.AST) -> None:
        self.edges.append((held, acquired))
        self.checker.add_edge(held, acquired, self.fn, node)

    def _check_yield_hazards(self, node: ast.AST,
                             committed: Optional[_Hold]) -> None:
        for hold in self.holds:
            if hold is committed or not hold.live:
                continue
            if id(hold) in self._hazard_reported:
                continue
            if _strip_tag(hold.resource) in self.checker.allowed_holds:
                continue
            if self._protected(hold):
                continue
            self._hazard_reported.add(id(hold))
            resource = _strip_tag(hold.resource)
            acquired_at = getattr(hold.node, "lineno", "?")
            if self.try_stack:
                self.checker.report(
                    self.fn, node, RULE_LEAK,
                    f"yield while holding '{resource}' inside a try "
                    "without a finally release — an exception or "
                    "process kill here leaks the hold (acquired at "
                    f"line {acquired_at})")
            else:
                self.checker.report(
                    self.fn, node, RULE_YIELD,
                    f"yield while holding '{resource}' with no finally "
                    "protection (acquired at line "
                    f"{acquired_at}) — a process kill at this yield "
                    "leaks the hold")

    def _protected(self, hold: _Hold) -> bool:
        return any(self._releases_in(try_stmt.finalbody, hold)
                   for try_stmt in self.try_stack)

    def _releases_in(self, stmts: Sequence[ast.stmt],
                     hold: _Hold) -> bool:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                if _release_kind(node) is not None:
                    if any(isinstance(arg, ast.Name)
                           and arg.id in hold.names
                           for arg in node.args):
                        return True
                elif self._callee_releases(node, hold.names):
                    return True
        return False

    def _callee_releases(self, call: ast.Call,
                         names: Set[str]) -> bool:
        """Does this call pass one of ``names`` to a releasing callee?"""
        if not any(isinstance(arg, ast.Name) and arg.id in names
                   for arg in call.args):
            return False
        callee = self.project.resolve_call(self.fn, call)
        if callee is None:
            return False
        summary = self.checker.summary(callee)
        if not summary.releases_params:
            return False
        params = self._callee_params(callee)
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and arg.id in names \
                    and position < len(params) \
                    and params[position] in summary.releases_params:
                return True
        return False

    # -- calls ---------------------------------------------------------------

    def eval(self, expr: Optional[ast.expr]) -> None:
        """Walk an expression, dispatching calls through the protocol."""
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            self._eval_call(expr)
            return
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            self._exec_yield(expr)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval(child)

    def _acquire(self, call: ast.Call) -> _Hold:
        resource = self._resource_key(call.func.value) or "<unknown>"
        for arg in call.args:
            self.eval(arg)
        hold = _Hold(resource, call)
        self.holds.append(hold)
        self.acquires.add(resource)
        return hold

    def _eval_call(self, call: ast.Call) -> None:
        kind = _release_kind(call)
        if kind is not None:
            self._exec_release(call, kind)
            return
        if _is_request_call(call):
            # request in a non-binding context: out of our model
            hold = self._acquire(call)
            hold.state = ESCAPED
            return
        for arg in call.args:
            self.eval(arg)
        for keyword in call.keywords:
            self.eval(keyword.value)
        hold_args = [(position, arg.id) for position, arg
                     in enumerate(call.args)
                     if isinstance(arg, ast.Name) and arg.id in self.env]
        callee = self.project.resolve_call(self.fn, call)
        if callee is None:
            for _, name in hold_args:
                hold = self.env[name]
                if hold.live:
                    hold.state = ESCAPED
            return
        self._apply_summary(call, callee, hold_args)

    def _exec_release(self, call: ast.Call, kind: str) -> None:
        arg = call.args[0]
        for extra in call.args[1:]:
            self.eval(extra)
        if not isinstance(arg, ast.Name):
            self.eval(arg)
            return
        if arg.id in self.env:
            hold = self.env[arg.id]
            if kind == "release" and hold.state == RELEASED:
                self.checker.report(
                    self.fn, call, RULE_DOUBLE,
                    f"'{_strip_tag(hold.resource)}' request released "
                    f"again — already released at line "
                    f"{hold.release_line} (the runtime raises "
                    "SimulationError here)")
                return
            hold.state = RELEASED
            hold.release_line = getattr(call, "lineno", 0)
        elif arg.id in self.params:
            self.releases_params.add(arg.id)

    def _callee_params(self, callee: FunctionInfo) -> List[str]:
        params = callee.param_names()
        if params and params[0] in ("self", "cls") and callee.is_method:
            params = params[1:]
        return params

    def _apply_summary(self, call: ast.Call, callee: FunctionInfo,
                       hold_args: List[Tuple[int, str]]) -> None:
        summary = self.checker.summary(callee)
        params = self._callee_params(callee)
        by_param_hold: Dict[str, _Hold] = {}
        for position, name in hold_args:
            if position < len(params):
                by_param_hold[params[position]] = self.env[name]
        by_param_key: Dict[str, str] = {}
        for position, arg in enumerate(call.args):
            if position < len(params):
                key = self._resource_key(arg)
                if key is not None:
                    by_param_key[params[position]] = key

        def substitute(key: str) -> str:
            if key.startswith("<param:"):
                return by_param_key.get(_strip_tag(key), _strip_tag(key))
            return key

        # a hold handed to a callee that releases it is closed here
        for param, hold in by_param_hold.items():
            if param in summary.releases_params:
                hold.state = RELEASED
                hold.release_line = getattr(call, "lineno", 0)
        remaining = {name for _, name in hold_args
                     if self.env[name].live}
        for name in remaining:
            # passed onward without a release: assume the callee keeps it
            self.env[name].state = ESCAPED
        # order edges: everything we hold precedes what the callee takes
        acquired = {substitute(key) for key in summary.acquires}
        self.acquires.update(acquired)
        for hold in self.holds:
            if hold.state == HELD:
                for key in sorted(acquired):
                    self._order_edge(hold.resource, key, call)
        for held, taken in summary.edges:
            held, taken = substitute(held), substitute(taken)
            self.edges.append((held, taken))
            self.checker.add_edge(held, taken, self.fn, call)


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC algorithm, iterative, deterministic order."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            visit(node)
    return components


@register_project
class ProtocolPass(ProjectRule):
    """Deep pass wrapper exposing the protocol checker to the registry."""

    name = RULE_CYCLE
    description = ("resource acquisition-order cycle across sim "
                   "processes (static deadlock signal)")
    severity = "error"
    extra_rules: Dict[str, str] = {
        RULE_LEAK: ("a resource hold reaches process exit, an "
                    "exception, or a kill-able yield with no release"),
        RULE_YIELD: ("yield of an unrelated event while holding an "
                     "unprotected resource (kill at that yield leaks "
                     "the hold)"),
        RULE_DOUBLE: ("strict release() of an already-released request "
                      "(runtime SimulationError)"),
    }
    #: resource names allowed to span unrelated yields unprotected
    allowed_holds: FrozenSet[str] = frozenset()

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(ProtocolChecker(
            project, allowed_holds=self.allowed_holds).run())
