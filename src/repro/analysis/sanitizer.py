"""Runtime race sanitizer: same-cycle conflict detection on shared state.

The DES kernel is cooperatively scheduled, so two processes can never
*preempt* each other — but they can still race in simulated time: when two
processes touch the same shared resource at the same timestamp, the outcome
depends on event-queue insertion order, which is exactly the kind of
accidental ordering dependency that breaks bit-identical resume and
recovery. The sanitizer makes those dependencies visible.

Instrumented sites call :meth:`RaceSanitizer.record` with a resource label,
an access kind, the acting process name, and the current cycle. Three kinds
exist:

- ``ACCESS_WRITE`` / ``ACCESS_READ`` — raw accesses to unarbitrated state
  (e.g. framebuffer regions). Two *distinct* processes hitting the same
  resource at the same cycle with at least one write is a conflict.
- ``ACCESS_ARBITRATED`` — accesses that go through a FIFO-arbitrated
  primitive (``Resource``, ``Store``, ``Barrier``, the composition
  scheduler's ready table). These are recorded for the report's access
  census but are **exempt from conflict detection**: the arbiter serializes
  them deterministically by construction, so same-cycle contention there is
  the normal, intended case.

Detection is online and memory-bounded: only the *current* cycle's access
sets are kept per resource; when the cycle advances the sets reset.
Conflicts aggregate by ``(resource, cycle, kind)`` so a pile-up of N
writers is one conflict naming all N processes, not N·(N-1)/2 pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..errors import RaceConditionError

ACCESS_READ = "read"
ACCESS_WRITE = "write"
ACCESS_ARBITRATED = "arbitrated"

CONFLICT_WW = "write-write"
CONFLICT_RW = "read-write"


@dataclass(frozen=True)
class Conflict:
    """Same-cycle access conflict between distinct processes."""

    resource: str
    cycle: float  # exact sim timestamp (sim time is float cycles)
    kind: str  # CONFLICT_WW or CONFLICT_RW
    processes: Tuple[str, ...]  # sorted, deduped

    def describe(self) -> str:
        names = ", ".join(self.processes)
        return (f"{self.kind} conflict on {self.resource!r} at cycle "
                f"{self.cycle:g} between: {names}")


@dataclass
class _CycleState:
    """Access sets for one resource within the current cycle."""

    cycle: float
    readers: Set[str] = field(default_factory=set)
    writers: Set[str] = field(default_factory=set)


class RaceSanitizer:
    """Collects per-cycle access sets and aggregates conflicts."""

    def __init__(self) -> None:
        self._state: Dict[str, _CycleState] = {}
        # (resource, cycle, kind) -> set of process names involved
        self._conflicts: Dict[Tuple[str, float, str], Set[str]] = {}
        self.accesses_recorded = 0

    def record(self, resource: str, kind: str, process: str,
               cycle: float) -> None:
        """Note one access; flags a conflict when it closes a racy pair."""
        self.accesses_recorded += 1
        if kind == ACCESS_ARBITRATED:
            return
        state = self._state.get(resource)
        if state is None or state.cycle != cycle:
            state = _CycleState(cycle=cycle)
            self._state[resource] = state
        if kind == ACCESS_WRITE:
            others_w = state.writers - {process}
            if others_w:
                self._flag(resource, cycle, CONFLICT_WW,
                           others_w | {process})
            others_r = state.readers - {process}
            if others_r:
                self._flag(resource, cycle, CONFLICT_RW,
                           others_r | {process})
            state.writers.add(process)
        elif kind == ACCESS_READ:
            others_w = state.writers - {process}
            if others_w:
                self._flag(resource, cycle, CONFLICT_RW,
                           others_w | {process})
            state.readers.add(process)
        else:
            raise ValueError(f"unknown access kind: {kind!r}")

    def _flag(self, resource: str, cycle: float, kind: str,
              processes: Set[str]) -> None:
        key = (resource, cycle, kind)
        self._conflicts.setdefault(key, set()).update(processes)

    @property
    def conflicts(self) -> List[Conflict]:
        """Aggregated conflicts, ordered by (cycle, resource, kind)."""
        return [
            Conflict(resource=resource, cycle=cycle, kind=kind,
                     processes=tuple(sorted(names)))
            for (resource, cycle, kind), names in sorted(
                self._conflicts.items(),
                key=lambda item: (item[0][1], item[0][0], item[0][2]))
        ]

    @property
    def has_conflicts(self) -> bool:
        return bool(self._conflicts)

    def render_report(self) -> str:
        conflicts = self.conflicts
        if not conflicts:
            return (f"race sanitizer: clean "
                    f"({self.accesses_recorded} accesses recorded)")
        lines = [f"race sanitizer: {len(conflicts)} conflict"
                 f"{'' if len(conflicts) == 1 else 's'} "
                 f"({self.accesses_recorded} accesses recorded)"]
        lines.extend(f"  {c.describe()}" for c in conflicts)
        return "\n".join(lines)

    def raise_if_conflicts(self) -> None:
        if self.has_conflicts:
            raise RaceConditionError(self.render_report())
