"""The simlint rule registry and the simulator-specific rules.

Every rule is a class with a unique ``name`` (the id used in reports and
``# simlint: disable=<name>`` markers), a one-line ``description``, and a
``check(module)`` generator yielding :class:`~repro.analysis.simlint.Finding`
objects. Third-party rules plug in with :func:`register`::

    @register
    class NoPrint(Rule):
        name = "no-print"
        description = "print() in library code"
        def check(self, module):
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "print"):
                    yield module.finding(node, self.name, "print() call")

The built-in rules target the determinism hazards of a discrete-event
simulator: anything that makes two runs of the same seed diverge (global
RNG, wall clock, unordered iteration) and anything that silently corrupts
the kernel's control flow (non-Event yields, handlers that swallow the
``GeneratorExit`` raised by ``Process.kill``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Type

from .simlint import Finding, LintModule

RULES: Dict[str, Type["Rule"]] = {}
PROJECT_RULES: Dict[str, Type["ProjectRule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Add a rule class to the registry (keyed by ``cls.name``)."""
    if not cls.name:
        raise ValueError("a lint rule needs a non-empty name")
    RULES[cls.name] = cls
    return cls


def register_project(cls: Type["ProjectRule"]) -> Type["ProjectRule"]:
    """Add a project-wide (deep) pass to the registry."""
    if not cls.name:
        raise ValueError("a lint rule needs a non-empty name")
    PROJECT_RULES[cls.name] = cls
    return cls


def default_rules() -> List["Rule"]:
    """Fresh instances of every registered rule, in name order."""
    return [RULES[name]() for name in sorted(RULES)]


def default_project_rules() -> List["ProjectRule"]:
    """Fresh instances of every registered deep pass, in name order."""
    # importing the pass modules is what registers them
    from . import cachekey, contract, effects, protocol, taint, \
        units  # noqa: F401
    return [PROJECT_RULES[name]() for name in sorted(PROJECT_RULES)]


def all_rule_descriptions() -> Dict[str, "RuleMeta"]:
    """id -> (description, severity, deep?) for every finding id that can
    appear in a report, including the extra ids of multi-rule passes."""
    out: Dict[str, RuleMeta] = {}
    for name in sorted(RULES):
        cls = RULES[name]
        out[name] = RuleMeta(cls.description, cls.severity, False)
    from . import cachekey, contract, effects, protocol, taint, \
        units  # noqa: F401 - registration side effect
    for name in sorted(PROJECT_RULES):
        cls = PROJECT_RULES[name]
        out[name] = RuleMeta(cls.description, cls.severity, True)
        for extra, description in sorted(cls.extra_rules.items()):
            out[extra] = RuleMeta(description, cls.severity, True)
    return out


class RuleMeta:
    """Display record for ``--list-rules``."""

    def __init__(self, description: str, severity: str, deep: bool) -> None:
        self.description = description
        self.severity = severity
        self.deep = deep


class Rule:
    """Base class for per-statement lint rules."""

    name = ""
    description = ""
    severity = "error"

    def check(self, module: LintModule) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule:
    """Base class for project-wide (deep) passes.

    A deep pass sees the whole :class:`~repro.analysis.flow.Project` at
    once instead of one module, so it can follow values across calls. A
    single pass may emit findings under several ids (``name`` plus the
    keys of ``extra_rules``); all share the pass severity and work with
    ``# simlint: disable=<id>`` markers as usual.
    """

    name = ""
    description = ""
    severity = "error"
    #: additional finding ids this pass emits: id -> description
    extra_rules: Dict[str, str] = {}

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


def _dotted(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]`` (None otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class _AliasMap:
    """Resolves local names back to the canonical modules they import."""

    def __init__(self, tree: ast.AST) -> None:
        self.modules: Dict[str, str] = {}   # local name -> module path
        self.members: Dict[str, str] = {}   # local name -> module.member
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] \
                        = alias.name if alias.asname else \
                        alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.members[local] = f"{node.module}.{alias.name}"

    def canonical(self, chain: List[str]) -> Optional[str]:
        """Canonical dotted path for an attribute chain, if importable."""
        head = chain[0]
        if head in self.modules:
            return ".".join([self.modules[head]] + chain[1:])
        if head in self.members:
            return ".".join([self.members[head]] + chain[1:])
        return None


#: ``random`` module functions that mutate the hidden process-global state
RANDOM_GLOBAL_FNS = frozenset({
    "betavariate", "binomialvariate", "choice", "choices", "expovariate",
    "gammavariate", "gauss", "getrandbits", "getstate", "lognormvariate",
    "normalvariate", "paretovariate", "randbytes", "randint", "random",
    "randrange", "sample", "seed", "setstate", "shuffle", "triangular",
    "uniform", "vonmisesvariate", "weibullvariate",
})

#: ``numpy.random`` module functions backed by the hidden global RandomState
NUMPY_GLOBAL_FNS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial", "normal",
    "pareto", "permutation", "poisson", "power", "rand", "randint",
    "randn", "random", "random_integers", "random_sample", "ranf",
    "rayleigh", "sample", "seed", "set_state", "shuffle",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_normal", "standard_t", "triangular", "uniform", "vonmises",
    "wald", "weibull", "zipf",
})


@register
class UnseededRNG(Rule):
    """Global-state RNG calls make runs depend on import and call order
    (and on every other caller of the shared stream). The deterministic
    idiom is an explicit seeded instance: ``random.Random(seed)`` or
    ``numpy.random.default_rng(seed)``."""

    name = "unseeded-rng"
    description = ("call to the process-global RNG; use a seeded "
                   "random.Random / np.random.default_rng instance")

    def check(self, module: LintModule) -> Iterator[Finding]:
        aliases = _AliasMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            canon = aliases.canonical(chain)
            if canon is None:
                continue
            parts = canon.split(".")
            hit = (
                (len(parts) == 2 and parts[0] == "random"
                 and parts[1] in RANDOM_GLOBAL_FNS)
                or (len(parts) == 3 and parts[0] == "numpy"
                    and parts[1] == "random"
                    and parts[2] in NUMPY_GLOBAL_FNS)
            )
            if hit:
                yield module.finding(
                    node, self.name,
                    f"`{canon}()` draws from the process-global RNG; "
                    f"thread an explicit seeded generator instead")


#: wall-clock reads; monotonic/perf_counter (elapsed time) stay legal
TIME_WALL_FNS = frozenset({"asctime", "ctime", "gmtime", "localtime",
                           "time", "time_ns"})
DATETIME_WALL_FNS = frozenset({"now", "today", "utcnow"})
#: additionally banned inside the serve package: the daemon is a pure
#: virtual-time system, so even "harmless" elapsed-time reads (monotonic,
#: perf_counter) and real sleeps are design violations there
SERVE_TIME_FNS = frozenset({"monotonic", "monotonic_ns", "perf_counter",
                            "perf_counter_ns", "process_time",
                            "process_time_ns", "sleep"})


def _in_serve_package(path: str) -> bool:
    posix = path.replace("\\", "/")
    return "/repro/serve/" in f"/{posix}" or posix.startswith("repro/serve/")


@register
class WallClock(Rule):
    """Wall-clock reads leak host time into simulated behaviour; cycle
    counts must come from ``sim.now``. ``time.monotonic`` and
    ``time.perf_counter`` remain allowed for harness elapsed-time
    measurement (they never feed simulated state) — except inside
    ``repro.serve``, where the daemon's whole contract is virtual time
    and *any* host-clock read or real sleep is flagged."""

    name = "wall-clock"
    description = ("wall-clock read (time.time / datetime.now); sim state "
                   "must derive from sim.now (serve/ additionally bans "
                   "monotonic/perf_counter/sleep)")

    def check(self, module: LintModule) -> Iterator[Finding]:
        aliases = _AliasMap(module.tree)
        serve = _in_serve_package(module.path)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            canon = aliases.canonical(chain)
            if canon is None:
                continue
            parts = canon.split(".")
            hit = (
                (len(parts) == 2 and parts[0] == "time"
                 and parts[1] in TIME_WALL_FNS)
                or (parts[0] == "datetime" and len(parts) >= 2
                    and parts[-1] in DATETIME_WALL_FNS
                    and parts[-2] in ("datetime", "date"))
            )
            if hit:
                yield module.finding(
                    node, self.name,
                    f"`{canon}()` reads the wall clock; simulated time "
                    f"comes from sim.now")
            elif (serve and len(parts) == 2 and parts[0] == "time"
                    and parts[1] in SERVE_TIME_FNS):
                yield module.finding(
                    node, self.name,
                    f"`{canon}()` touches the host clock inside "
                    f"repro.serve; the daemon runs on virtual time only "
                    f"(use sim.now / sim.timeout)")


_SET_BUILTINS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({"difference", "intersection",
                          "symmetric_difference", "union"})
#: sinks that materialize iteration order (sorted() is the fix, not a sink)
_ORDER_SINKS = frozenset({"enumerate", "iter", "list", "reversed", "tuple"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) \
                and node.func.id in _SET_BUILTINS:
            return True
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _SET_METHODS:
            return _is_set_expr(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _scope_nodes(tree: ast.AST) -> Iterator[ast.AST]:
    """The module plus every (possibly nested) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            yield node


def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes belonging to ``scope`` itself, not to nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _sorted_list_calls(scope: ast.AST) -> "set":
    """``list(...)`` Call nodes whose result is assigned to a name that is
    later ``.sort()``-ed in the same scope — an ordered materialization,
    equivalent to ``sorted(...)``."""
    sorted_names = set()
    for node in _own_nodes(scope):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort"
                and isinstance(node.func.value, ast.Name)):
            sorted_names.add(node.func.value.id)
    safe = set()
    if not sorted_names:
        return safe
    for node in _own_nodes(scope):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        value = node.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "list"
                and any(isinstance(t, ast.Name) and t.id in sorted_names
                        for t in targets)):
            safe.add(id(value))
    return safe


@register
class UnorderedIter(Rule):
    """Set iteration order depends on hash seeding and insertion history;
    feeding it into scheduling or event-queue decisions makes the run
    depend on both. (Dict views are insertion-ordered since Python 3.7
    and are exempt.) Wrap the set in ``sorted(...)``; ``list(s)`` followed
    by ``.sort()`` in the same scope also counts as ordered."""

    name = "unordered-iter"
    description = ("iteration over an unordered set; wrap in sorted() for "
                   "a deterministic order")

    def check(self, module: LintModule) -> Iterator[Finding]:
        safe_calls = set()
        for scope in _scope_nodes(module.tree):
            safe_calls |= _sorted_list_calls(scope)
        for node in ast.walk(module.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in _ORDER_SINKS and node.args
                  and id(node) not in safe_calls):
                iters.append(node.args[0])
            for candidate in iters:
                if _is_set_expr(candidate):
                    yield module.finding(
                        candidate, self.name,
                        "iterating over an unordered set; order feeds "
                        "downstream decisions — use sorted(...)")


_MUTABLE_CALLS = frozenset({"Counter", "bytearray", "defaultdict", "deque",
                            "dict", "list", "set"})


@register
class MutableDefault(Rule):
    """A mutable default is evaluated once and shared across calls —
    state leaks between runs that should be independent."""

    name = "mutable-default"
    description = "mutable default argument (shared across calls)"
    severity = "warning"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                mutable = isinstance(default, (
                    ast.Dict, ast.DictComp, ast.List, ast.ListComp,
                    ast.Set, ast.SetComp))
                if (not mutable and isinstance(default, ast.Call)
                        and isinstance(default.func, ast.Name)
                        and default.func.id in _MUTABLE_CALLS):
                    mutable = True
                if mutable:
                    yield module.finding(
                        default, self.name,
                        "mutable default argument is shared across calls; "
                        "default to None and build inside the function")


_LITERAL_YIELDS = (ast.Constant, ast.Dict, ast.JoinedStr, ast.List,
                   ast.Set, ast.Tuple)


def _own_yields(func: ast.AST) -> List[ast.Yield]:
    """Yield nodes belonging to ``func`` itself (not nested functions)."""
    yields: List[ast.Yield] = []
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Yield):
            yields.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return yields


def _is_sim_call(node: Optional[ast.AST]) -> bool:
    """``sim.timeout(...)`` / ``self.sim.all_of(...)``-shaped expression."""
    if not isinstance(node, ast.Call):
        return False
    chain = _dotted(node.func)
    return chain is not None and "sim" in chain[:-1]


@register
class YieldNonEvent(Rule):
    """A sim-process generator must yield Event objects; yielding a bare
    number (``yield 10`` instead of ``yield sim.timeout(10)``) either
    crashes the kernel at runtime or — worse — silently skips the wait.
    A generator counts as a sim process when at least one of its yields
    is a call through a ``sim`` object."""

    name = "yield-non-event"
    description = ("sim process yields a non-Event literal; yield "
                   "sim.timeout(...) / an Event")

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            yields = _own_yields(node)
            if not any(_is_sim_call(y.value) for y in yields):
                continue  # not a sim process
            for y in yields:
                if y.value is None:
                    yield module.finding(
                        y, self.name,
                        "bare `yield` in a sim process sends None to the "
                        "kernel, which expects an Event")
                elif isinstance(y.value, _LITERAL_YIELDS):
                    yield module.finding(
                        y, self.name,
                        "sim process yields a literal; the kernel expects "
                        "an Event (e.g. sim.timeout(...))")


@register
class BroadExcept(Rule):
    """``except:`` and ``except BaseException:`` catch the
    ``GeneratorExit`` raised by ``Process.kill`` (and KeyboardInterrupt),
    so a killed process can refuse to die and keep its ports pinned.
    Catch ``Exception``, or re-raise with a bare ``raise``."""

    name = "broad-except"
    description = ("bare/BaseException handler can swallow Process.kill; "
                   "catch Exception or re-raise")
    severity = "warning"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                label = "bare `except:`"
            else:
                chain = _dotted(node.type)
                if chain is None or chain[-1] != "BaseException":
                    continue
                label = "`except BaseException:`"
            reraises = any(
                isinstance(sub, ast.Raise) and sub.exc is None
                for stmt in node.body for sub in ast.walk(stmt))
            if not reraises:
                yield module.finding(
                    node, self.name,
                    f"{label} swallows GeneratorExit from Process.kill "
                    f"and KeyboardInterrupt; catch Exception or add a "
                    f"bare `raise`")
