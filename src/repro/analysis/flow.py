"""Project-wide analysis substrate: symbol table, imports, and call graph.

The per-statement rules in :mod:`repro.analysis.rules` see one AST node at
a time; the deep passes (the units checker in
:mod:`repro.analysis.units` and the nondeterminism taint pass in
:mod:`repro.analysis.taint`) need to follow a value from
``GPUConfig.frequency_hz`` through ``CostModel.dram_bytes_per_cycle`` into
``Interconnect.occupancy_cycles`` — across functions, classes, and
modules. This module builds the shared infrastructure those passes walk:

- a :class:`Project` holding every parsed module, keyed by its dotted
  module name (derived from ``__init__.py`` package structure, so linting
  ``src/repro`` yields the same ``repro.timing.costs`` qualnames as the
  installed package);
- per-module import tables that resolve local aliases back to canonical
  symbols, including relative imports and one level of package
  re-exports (``from ..sim import Simulator`` chases through
  ``repro/sim/__init__.py`` to ``repro.sim.core.Simulator``);
- :class:`ClassInfo` / :class:`FunctionInfo` records with enough type
  structure to resolve ``self.gpu.frequency_hz`` (dataclass field
  annotations, annotated ``__init__`` parameters, and
  ``self.x = KnownClass(...)`` constructor assignments);
- best-effort call resolution and a project :meth:`~Project.call_graph`.

Everything here is *best effort and silent*: an unresolvable name returns
``None`` and the passes degrade to "unknown" rather than guessing.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .simlint import LintModule

#: resolution depth bound for re-export chases (cycles in __init__ webs)
_MAX_CHASE = 8


def module_name_for(path: pathlib.Path) -> Tuple[str, bool]:
    """Dotted module name for a source file, plus "is a package" flag.

    Walks up while ``__init__.py`` siblings exist, so
    ``src/repro/timing/costs.py`` names itself ``repro.timing.costs``
    regardless of where the tree sits. A loose file (test fixture in a
    temp dir) is just its stem.
    """
    path = path.resolve()
    parts: List[str] = []
    is_package = path.name == "__init__.py"
    if not is_package:
        parts.append(path.stem)
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.append(directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(reversed(parts)), is_package


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str            # e.g. repro.timing.costs.CostModel.compose_cycles
    name: str
    module_name: str
    module: LintModule
    node: ast.AST            # FunctionDef / AsyncFunctionDef
    class_qualname: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    @property
    def is_property(self) -> bool:
        for dec in self.node.decorator_list:
            if isinstance(dec, ast.Name) and dec.id == "property":
                return True
            if isinstance(dec, ast.Attribute) and dec.attr in (
                    "getter", "setter", "property", "cached_property"):
                return True
        return False

    def param_names(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args
                 + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def param_annotation(self, name: str) -> Optional[ast.expr]:
        args = self.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if a.arg == name:
                return a.annotation
        return None


@dataclass
class ClassInfo:
    """One class definition: methods, annotated attributes, bases."""

    qualname: str
    name: str
    module_name: str
    module: LintModule
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class-level ``name: Annotation [= default]`` fields (dataclasses)
    attr_annotations: Dict[str, ast.expr] = field(default_factory=dict)
    #: source line of each class-level attribute statement (unit comments)
    attr_lines: Dict[str, int] = field(default_factory=dict)
    base_exprs: List[ast.expr] = field(default_factory=list)


class _ModuleImports:
    """Local name -> canonical dotted path for one module."""

    def __init__(self, module_name: str, is_package: bool,
                 tree: ast.AST) -> None:
        self.modules: Dict[str, str] = {}
        self.members: Dict[str, str] = {}
        #: base modules of ``from X import *`` (canonical dotted names);
        #: names they re-export are resolved lazily by the project
        self.stars: List[str] = []
        if is_package:
            package_parts = module_name.split(".") if module_name else []
        else:
            package_parts = module_name.split(".")[:-1]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.modules[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module or ""
                else:
                    if node.level - 1 > len(package_parts):
                        continue  # escapes the project root
                    kept = package_parts[:len(package_parts)
                                         - (node.level - 1)]
                    base = ".".join(kept)
                    if node.module:
                        base = f"{base}.{node.module}" if base \
                            else node.module
                if not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        self.stars.append(base)
                        continue
                    local = alias.asname or alias.name
                    self.members[local] = f"{base}.{alias.name}"


class Project:
    """Every parsed module of one source tree, cross-indexed."""

    def __init__(self) -> None:
        self.modules: Dict[str, LintModule] = {}
        self.module_packages: Dict[str, bool] = {}
        self.imports: Dict[str, _ModuleImports] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module-level ``NAME = <literal>`` constants
        self.constants: Dict[str, ast.expr] = {}
        self._attr_type_cache: Dict[Tuple[str, str], Optional[str]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_modules(cls, named_modules: Iterable[
            Tuple[str, bool, LintModule]]) -> "Project":
        """Build from ``(module_name, is_package, parsed module)`` triples."""
        project = cls()
        for name, is_package, module in named_modules:
            project._add_module(name, is_package, module)
        return project

    @classmethod
    def from_paths(cls, paths: Iterable[pathlib.Path]) -> "Project":
        """Parse and index ``*.py`` files (directories recurse). Files that
        fail to parse are skipped — the lint driver reports them."""
        named = []
        for path in sorted({p.resolve() for p in _expand(paths)}):
            try:
                module = LintModule(str(path), path.read_text())
            except (SyntaxError, OSError):
                continue
            name, is_package = module_name_for(path)
            named.append((name, is_package, module))
        return cls.from_modules(named)

    def _add_module(self, name: str, is_package: bool,
                    module: LintModule) -> None:
        self.modules[name] = module
        self.module_packages[name] = is_package
        self.imports[name] = _ModuleImports(name, is_package, module.tree)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{name}.{node.name}", name=node.name,
                    module_name=name, module=module, node=node)
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                self._add_class(name, module, node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                self.constants[f"{name}.{node.targets[0].id}"] = node.value
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name) \
                    and node.value is not None:
                self.constants[f"{name}.{node.target.id}"] = node.value

    def _add_class(self, module_name: str, module: LintModule,
                   node: ast.ClassDef) -> None:
        qualname = f"{module_name}.{node.name}"
        info = ClassInfo(qualname=qualname, name=node.name,
                         module_name=module_name, module=module, node=node,
                         base_exprs=list(node.bases))
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qualname=f"{qualname}.{stmt.name}", name=stmt.name,
                    module_name=module_name, module=module, node=stmt,
                    class_qualname=qualname)
                info.methods[stmt.name] = method
                self.functions[method.qualname] = method
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                info.attr_annotations[stmt.target.id] = stmt.annotation
                info.attr_lines[stmt.target.id] = stmt.lineno
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.attr_lines[target.id] = stmt.lineno
        self.classes[qualname] = info

    # -- symbol resolution ---------------------------------------------------

    def resolve_name(self, module_name: str, name: str,
                     _depth: int = 0) -> Optional[str]:
        """Canonical dotted symbol for a bare name used in ``module_name``."""
        local = f"{module_name}.{name}"
        if local in self.functions or local in self.classes \
                or local in self.constants:
            return local
        table = self.imports.get(module_name)
        if table is None:
            return None
        if name in table.members:
            return table.members[name]
        if name in table.modules:
            return table.modules[name]
        # star re-exports: the name may come from any `from X import *`
        if _depth <= _MAX_CHASE:
            for base in table.stars:
                if base == module_name:
                    continue
                if base in self.modules:
                    found = self.resolve_name(base, name, _depth + 1)
                    if found is not None:
                        return found
        return None

    def resolve_chain(self, module_name: str,
                      chain: Sequence[str]) -> Optional[str]:
        """Canonical dotted symbol for an ``a.b.c`` chain."""
        head = self.resolve_name(module_name, chain[0])
        if head is None:
            return None
        return ".".join([head] + list(chain[1:]))

    def _chase(self, qualname: str, depth: int = 0) -> Optional[str]:
        """Follow package re-exports until the qualname lands on a real
        definition (class/function/constant) or gives out."""
        if depth > _MAX_CHASE or qualname is None:
            return None
        if qualname in self.classes or qualname in self.functions \
                or qualname in self.constants:
            return qualname
        # longest module prefix owning the tail
        parts = qualname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                tail = parts[cut:]
                resolved = self.resolve_name(prefix, tail[0])
                if resolved is None:
                    return None
                new = ".".join([resolved] + tail[1:])
                if new == qualname:
                    return None
                return self._chase(new, depth + 1)
        return None

    def lookup_class(self, qualname: Optional[str]) -> Optional[ClassInfo]:
        if qualname is None:
            return None
        resolved = self._chase(qualname)
        return self.classes.get(resolved) if resolved else None

    def lookup_function(self, qualname: Optional[str]
                        ) -> Optional[FunctionInfo]:
        if qualname is None:
            return None
        resolved = self._chase(qualname)
        return self.functions.get(resolved) if resolved else None

    # -- type structure ------------------------------------------------------

    def class_of_annotation(self, module_name: str,
                            annotation: Optional[ast.expr]
                            ) -> Optional[ClassInfo]:
        """ClassInfo named by a type annotation (``X``, ``"X"``,
        ``Optional[X]``); None for anything fancier."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            return self.lookup_class(
                self.resolve_name(module_name, annotation.value.strip('"')))
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            if isinstance(base, ast.Name) and base.id == "Optional":
                return self.class_of_annotation(module_name,
                                                annotation.slice)
            return None
        chain = dotted_chain(annotation)
        if chain is None:
            return None
        return self.lookup_class(self.resolve_chain(module_name, chain))

    def method_of(self, cls: ClassInfo, name: str,
                  depth: int = 0) -> Optional[FunctionInfo]:
        """Method lookup through single-inheritance base chains."""
        if name in cls.methods:
            return cls.methods[name]
        if depth > _MAX_CHASE:
            return None
        for base_expr in cls.base_exprs:
            chain = dotted_chain(base_expr)
            if chain is None:
                continue
            base = self.lookup_class(
                self.resolve_chain(cls.module_name, chain))
            if base is not None and base.qualname != cls.qualname:
                found = self.method_of(base, name, depth + 1)
                if found is not None:
                    return found
        return None

    def attr_class(self, cls: ClassInfo, attr: str) -> Optional[ClassInfo]:
        """Type of an instance attribute, as a ClassInfo when known.

        Sources, in order: the class-level ``attr: Type`` annotation, then
        ``self.attr = <annotated param>`` / ``self.attr = KnownClass(...)``
        assignments anywhere in the class's methods. ``self.attr = None``
        never shadows a real type (the optional-then-filled idiom).
        """
        key = (cls.qualname, attr)
        if key in self._attr_type_cache:
            return self.lookup_class(self._attr_type_cache[key])
        self._attr_type_cache[key] = None  # recursion guard
        result: Optional[str] = None
        annotation = cls.attr_annotations.get(attr)
        if annotation is not None:
            found = self.class_of_annotation(cls.module_name, annotation)
            if found is not None:
                result = found.qualname
        if result is None:
            result = self._attr_class_from_assignments(cls, attr)
        self._attr_type_cache[key] = result
        return self.lookup_class(result)

    def _attr_class_from_assignments(self, cls: ClassInfo,
                                     attr: str) -> Optional[str]:
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    # an annotated self-assignment carries its own type
                    if _is_self_attr(target, attr):
                        found = self.class_of_annotation(
                            cls.module_name, node.annotation)
                        if found is not None:
                            return found.qualname
                if target is None or not _is_self_attr(target, attr):
                    continue
                inferred = self._class_of_value(cls, method, value)
                if inferred is not None:
                    return inferred
        return None

    def _class_of_value(self, cls: ClassInfo, method: FunctionInfo,
                        value: Optional[ast.expr]) -> Optional[str]:
        if isinstance(value, ast.Name):
            annotation = method.param_annotation(value.id)
            found = self.class_of_annotation(cls.module_name, annotation)
            return found.qualname if found else None
        if isinstance(value, ast.Call):
            chain = dotted_chain(value.func)
            if chain is not None:
                callee = self.lookup_class(
                    self.resolve_chain(cls.module_name, chain))
                if callee is not None:
                    return callee.qualname
        return None

    # -- call resolution -----------------------------------------------------

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> Optional[FunctionInfo]:
        """Best-effort callee of a Call made inside ``caller``.

        Handles ``func()``, ``module.func()``, ``self.method()``,
        ``self.attr.method()`` (through known attribute types), and
        ``Class(...)`` (resolving to ``__init__`` when defined).
        """
        chain = dotted_chain(call.func)
        if chain is None:
            return None
        if chain[0] == "self" and caller.class_qualname is not None:
            cls = self.classes.get(caller.class_qualname)
            if cls is None:
                return None
            for attr in chain[1:-1]:
                cls = self.attr_class(cls, attr)
                if cls is None:
                    return None
            return self.method_of(cls, chain[-1])
        symbol = self.resolve_chain(caller.module_name, chain)
        fn = self.lookup_function(symbol)
        if fn is not None:
            return fn
        cls = self.lookup_class(symbol)
        if cls is not None:
            return self.method_of(cls, "__init__")
        return None

    def call_graph(self) -> Dict[str, Set[str]]:
        """qualname -> set of resolved callee qualnames, whole project."""
        graph: Dict[str, Set[str]] = {}
        for qualname, info in self.functions.items():
            callees: Set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    callee = self.resolve_call(info, node)
                    if callee is not None:
                        callees.add(callee.qualname)
            graph[qualname] = callees
        return graph

    # -- source annotations --------------------------------------------------

    def line_comment(self, module: LintModule, lineno: int) -> str:
        if 0 < lineno <= len(module.lines):
            return module.lines[lineno - 1]
        return ""


def dotted_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]`` (None otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _is_self_attr(node: ast.expr, attr: str) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _expand(paths: Iterable[pathlib.Path]) -> List[pathlib.Path]:
    files: List[pathlib.Path] = []
    for path in paths:
        p = pathlib.Path(path)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files
