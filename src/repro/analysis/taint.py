"""Nondeterminism taint pass (deep).

The per-statement ``unordered-iter`` rule only sees a set literal feeding
a loop on the same line. This pass tracks *values* whose content or
ordering depends on process-level accidents — and follows them across
function calls — into the places where they change simulated behaviour:

**Sources** (each produces a taint tag naming it):

- iterating a set (literal, ``set(...)`` call, set-typed variable,
  parameter, or attribute annotated ``Set[...]``): the element *order*
  depends on hash seeding and insertion history;
- ``id(x)``: the interpreter's heap layout;
- ``hash(x)``: randomized per process for strings (PYTHONHASHSEED);
- filesystem listing order: ``os.listdir`` / ``os.scandir`` /
  ``Path.iterdir`` / ``glob`` / ``rglob`` (the OS returns directory
  entries in arbitrary order).

**Sanitizers**: ``sorted()``, ``min()``, ``max()``, ``sum()``, ``len()``
strip taint (they make the result order-independent).

**Sinks**:

- simulator event scheduling (``sim.timeout`` / ``sim.process`` /
  ``sim.all_of`` / ``sim.any_of`` / ``Event.succeed`` / ``_schedule`` /
  ``heapq.heappush``): a tainted delay or event order diverges runs;
- RNG seeding (``random.Random(x)``, ``default_rng(x)``, ``.seed(x)``):
  a tainted seed makes "seeded" streams irreproducible;
- job fingerprints (``JobSpec(...)`` fields, anything named
  ``*fingerprint*``): a tainted fingerprint breaks ``--resume``
  matching between runs;
- content addressing (``store_key(...)`` fields): a tainted key makes
  the render artifact store hash the same artifact to different
  addresses across runs, silently defeating cache sharing.

Interprocedural model: every function gets a memoized summary —
(a) taint tags its return value carries from sources *inside* it,
(b) which parameters flow through to its return value, and (c) which
parameters flow into a sink inside it. Call sites substitute argument
taints into (b)/(c), so a set iterated in one function and scheduled in
another is still caught. Findings use rule id ``nondet-taint``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .flow import FunctionInfo, Project, dotted_chain
from .rules import ProjectRule, register_project
from .simlint import Finding

Taint = FrozenSet[str]
NO_TAINT: Taint = frozenset()

_SET_BUILTINS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({"difference", "intersection",
                          "symmetric_difference", "union"})
_SET_ANNOTATIONS = frozenset({"Set", "FrozenSet", "AbstractSet",
                              "MutableSet", "set", "frozenset"})

_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "len"})
#: builtins/idioms that preserve their argument's taint
_PASSTHROUGH = frozenset({"list", "tuple", "iter", "reversed", "enumerate",
                          "next", "str", "repr", "abs", "int", "float",
                          "zip"})

_FS_LISTING_CALLS = frozenset({"listdir", "scandir", "iterdir", "glob",
                               "rglob", "walk"})

#: event-scheduling method names; ``sim`` must appear in the call chain
#: except for the unambiguous ones
_SIM_SINK_METHODS = frozenset({"timeout", "process", "all_of", "any_of",
                               "schedule", "_schedule"})
_SIM_SINK_ANYWHERE = frozenset({"_schedule", "heappush", "succeed"})
_RNG_SINK_CALLS = frozenset({"Random", "default_rng", "seed"})

RULE = "nondet-taint"


def _param_tag(name: str) -> str:
    return f"<param:{name}>"


def _is_param_tag(tag: str) -> bool:
    return tag.startswith("<param:")


@dataclass
class TaintSummary:
    """What one function does with taint, seen from a call site."""

    #: real source tags the return value carries
    return_sources: Taint = NO_TAINT
    #: parameter names that flow to the return value
    return_params: FrozenSet[str] = NO_TAINT
    #: (param, sink description) pairs: the param reaches a sink inside
    param_sinks: Tuple[Tuple[str, str], ...] = ()


class TaintChecker:
    """Runs the nondeterminism taint pass over a project."""

    severity = "warning"

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: List[Finding] = []
        self._summaries: Dict[str, TaintSummary] = {}

    def run(self) -> List[Finding]:
        for qualname in sorted(self.project.functions):
            self.summary(self.project.functions[qualname])
        return self.findings

    def summary(self, fn: FunctionInfo) -> TaintSummary:
        if fn.qualname in self._summaries:
            return self._summaries[fn.qualname]
        self._summaries[fn.qualname] = TaintSummary()  # recursion guard
        evaluator = _TaintEval(self, fn)
        summary = evaluator.run()
        self._summaries[fn.qualname] = summary
        return summary

    def report(self, fn: FunctionInfo, node: ast.AST, message: str) -> None:
        finding = Finding(
            path=fn.module.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), rule=RULE, message=message,
            severity=self.severity)
        if finding not in self.findings:
            self.findings.append(finding)


class _TaintEval:
    """Taint propagation over one function body."""

    def __init__(self, checker: TaintChecker, fn: FunctionInfo) -> None:
        self.checker = checker
        self.project = checker.project
        self.fn = fn
        self.env: Dict[str, Taint] = {
            name: frozenset({_param_tag(name)})
            for name in fn.param_names()}
        #: names currently known to hold a set
        self.set_names: Set[str] = {
            name for name in fn.param_names()
            if self._is_set_annotation(fn.param_annotation(name))}
        self.return_taint: Taint = NO_TAINT
        self.param_sinks: List[Tuple[str, str]] = []

    def run(self) -> TaintSummary:
        self.exec_block(self.fn.node.body)
        return TaintSummary(
            return_sources=frozenset(
                t for t in self.return_taint if not _is_param_tag(t)),
            return_params=frozenset(
                t[len("<param:"):-1] for t in self.return_taint
                if _is_param_tag(t)),
            param_sinks=tuple(dict.fromkeys(self.param_sinks)))

    # -- statements ----------------------------------------------------------

    def exec_block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                existing = self.env.get(stmt.target.id, NO_TAINT)
                self.env[stmt.target.id] = existing | taint
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taint = self.return_taint \
                    | self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.eval(stmt.iter)
            taint |= self._iteration_source(stmt.iter)
            self._bind(stmt.target, taint, stmt.iter)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint,
                               item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _bind(self, target: ast.expr, taint: Taint,
              value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            if self._is_set_expr(value):
                self.set_names.add(target.id)
            else:
                self.set_names.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint, value)
        # attribute/subscript stores: taint is not tracked through the heap

    # -- expressions ---------------------------------------------------------

    def eval(self, expr: ast.expr) -> Taint:
        if isinstance(expr, ast.Constant):
            return NO_TAINT
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, NO_TAINT)
        if isinstance(expr, ast.Attribute):
            self.eval(expr.value)
            return NO_TAINT
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            return self.eval(expr.left) | self.eval(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand)
        if isinstance(expr, ast.BoolOp):
            taint = NO_TAINT
            for value in expr.values:
                taint |= self.eval(value)
            return taint
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test)
            return self.eval(expr.body) | self.eval(expr.orelse)
        if isinstance(expr, ast.Compare):
            self.eval(expr.left)
            for comparator in expr.comparators:
                self.eval(comparator)
            return NO_TAINT
        if isinstance(expr, ast.Subscript):
            # x[tainted_key] retrieves a value whose own order/content is
            # not what the key's taint describes — only the container's
            # taint carries over
            self.eval(expr.slice)
            return self.eval(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List)):
            taint = NO_TAINT
            for element in expr.elts:
                taint |= self.eval(element)
            return taint
        if isinstance(expr, ast.Set):
            for element in expr.elts:
                self.eval(element)
            return NO_TAINT  # taint arises when it is *iterated*
        if isinstance(expr, ast.Dict):
            taint = NO_TAINT
            for value in expr.values:
                if value is not None:
                    taint |= self.eval(value)
            return taint
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return self._eval_comprehension(expr)
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            if getattr(expr, "value", None) is not None:
                self.eval(expr.value)
            return NO_TAINT
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value)
        if isinstance(expr, ast.JoinedStr):
            taint = NO_TAINT
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    taint |= self.eval(value.value)
            return taint
        return NO_TAINT

    def _eval_comprehension(self, expr: ast.expr) -> Taint:
        taint = NO_TAINT
        for gen in expr.generators:
            taint |= self.eval(gen.iter)
            taint |= self._iteration_source(gen.iter)
            self._bind(gen.target, taint, gen.iter)
            for cond in gen.ifs:
                self.eval(cond)
        for attr in ("elt", "key", "value"):
            element = getattr(expr, attr, None)
            if element is not None:
                taint |= self.eval(element)
        return taint

    # -- calls: sources, sanitizers, sinks, summaries ------------------------

    def _eval_call(self, expr: ast.Call) -> Taint:
        chain = dotted_chain(expr.func)
        tail = chain[-1] if chain else None

        if tail == "id" and len(chain) == 1:
            self._eval_args(expr)
            return frozenset({"id() (heap layout)"})
        if tail == "hash" and len(chain) == 1:
            self._eval_args(expr)
            return frozenset({"hash() (per-process hash seed)"})
        if tail in _FS_LISTING_CALLS:
            self._eval_args(expr)
            return frozenset({f"{tail}() (filesystem listing order)"})

        if tail in _SANITIZERS and len(chain) == 1:
            self._eval_args(expr)
            return NO_TAINT
        if tail in _PASSTHROUGH and len(chain) == 1:
            taint = self._eval_args(expr)
            if expr.args and self._is_set_expr(expr.args[0]):
                taint |= self._iteration_source(expr.args[0])
            return taint

        arg_taints = [self.eval(a) for a in expr.args]
        kw_taints = {k.arg: self.eval(k.value) for k in expr.keywords}
        all_taint = NO_TAINT
        for taint in arg_taints:
            all_taint |= taint
        for taint in kw_taints.values():
            all_taint |= taint

        sink = self._sink_description(chain)
        if sink is not None and all_taint:
            self._sink_hit(expr, sink, all_taint)
            return NO_TAINT

        callee = self.project.resolve_call(self.fn, expr)
        if callee is None:
            # unknown call: assume arguments may flow through
            return frozenset(t for t in all_taint)
        return self._apply_summary(expr, callee, arg_taints, kw_taints)

    def _eval_args(self, expr: ast.Call) -> Taint:
        taint = NO_TAINT
        for arg in expr.args:
            taint |= self.eval(arg)
        for keyword in expr.keywords:
            taint |= self.eval(keyword.value)
        return taint

    def _apply_summary(self, call: ast.Call, callee: FunctionInfo,
                       arg_taints: List[Taint],
                       kw_taints: Dict[Optional[str], Taint]) -> Taint:
        summary = self.checker.summary(callee)
        params = callee.param_names()
        if params and params[0] in ("self", "cls") and callee.is_method:
            params = params[1:]
        by_param: Dict[str, Taint] = {}
        for position, taint in enumerate(arg_taints):
            if position < len(params):
                by_param[params[position]] = taint
        for name, taint in kw_taints.items():
            if name is not None:
                by_param[name] = taint
        # a tainted argument reaching a sink inside the callee
        for param, sink in summary.param_sinks:
            taint = by_param.get(param, NO_TAINT)
            real = frozenset(t for t in taint if not _is_param_tag(t))
            if real:
                self._sink_hit(call, f"{sink} (inside `{callee.name}`)",
                               real)
            for tag in taint - real:
                self.param_sinks.append(
                    (tag[len("<param:"):-1],
                     f"{sink} (via `{callee.name}`)"))
        result = summary.return_sources
        for param in summary.return_params:
            result |= by_param.get(param, NO_TAINT)
        return result

    def _sink_hit(self, node: ast.AST, sink: str, taint: Taint) -> None:
        real = sorted(t for t in taint if not _is_param_tag(t))
        if real:
            self.checker.report(
                self.fn, node,
                f"nondeterministic value ({', '.join(real)}) reaches "
                f"{sink}")
        for tag in taint:
            if _is_param_tag(tag):
                self.param_sinks.append((tag[len("<param:"):-1], sink))

    def _sink_description(self, chain: Optional[List[str]]
                          ) -> Optional[str]:
        if not chain:
            return None
        tail = chain[-1]
        dotted = ".".join(chain)
        if tail in _SIM_SINK_METHODS and (
                any("sim" in part for part in chain[:-1])
                or tail in _SIM_SINK_ANYWHERE):
            return f"event scheduling (`{dotted}`)"
        if tail in _SIM_SINK_ANYWHERE and len(chain) >= 1 \
                and tail in ("heappush", "succeed", "_schedule"):
            return f"event scheduling (`{dotted}`)"
        if tail in _RNG_SINK_CALLS:
            return f"RNG seeding (`{dotted}`)"
        if tail == "store_key":
            return f"a content-addressed store key (`{dotted}`)"
        if "fingerprint" in tail.lower() or tail == "JobSpec":
            return f"a job fingerprint (`{dotted}`)"
        return None

    # -- set detection -------------------------------------------------------

    def _iteration_source(self, iter_expr: ast.expr) -> Taint:
        """Taint produced by iterating this expression, if it is a set."""
        if self._is_set_expr(iter_expr):
            return frozenset({"set iteration order"})
        return NO_TAINT

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in _SET_BUILTINS:
                return True
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _SET_METHODS:
                return self._is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.Attribute):
            owner_class = self._class_of(node.value)
            if owner_class is not None:
                annotation = owner_class.attr_annotations.get(node.attr)
                return self._is_set_annotation(annotation)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            return self._is_set_expr(node.left) \
                or self._is_set_expr(node.right)
        return False

    def _class_of(self, expr: ast.expr):
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.fn.class_qualname:
                return self.project.classes.get(self.fn.class_qualname)
            annotation = self.fn.param_annotation(expr.id)
            return self.project.class_of_annotation(
                self.fn.module_name, annotation)
        return None

    def _is_set_annotation(self, annotation: Optional[ast.expr]) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Name):
            return annotation.id in _SET_ANNOTATIONS
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            return isinstance(base, ast.Name) \
                and base.id in _SET_ANNOTATIONS
        return False


@register_project
class TaintPass(ProjectRule):
    """Deep pass wrapper exposing the taint checker to the registry."""

    name = RULE
    description = ("nondeterministic value (set order, id(), hash(), "
                   "directory listing) reaches event scheduling, RNG "
                   "seeding, a job fingerprint, or a store key")
    severity = "warning"
    extra_rules: Dict[str, str] = {}

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(TaintChecker(project).run())
