"""Change-scoped linting: ``repro lint --changed [REF]``.

As the tree grows, the deep passes (units, taint, protocol, contract)
stay whole-program — they must, to follow values across modules — but
*reporting* can be scoped to what a change can actually affect. This
module computes that scope:

1. ask git for the files touched since ``merge-base REF HEAD`` (staged,
   unstaged, and untracked alike), intersected with the linted file set;
2. expand with reverse dependencies — every module that (transitively)
   imports a changed module, computed from the project's import tables,
   which over-approximates the reverse call graph at module granularity;
3. per-statement rules run only on scoped files, and deep passes still
   analyze the full project but report only findings located in scoped
   files.

A lint run with ``--changed`` therefore never *misses* a cross-module
regression whose symptom lands in a changed-or-dependent file, while
skipping the noise (and per-file rule time) of everything the change
cannot reach.
"""

from __future__ import annotations

import pathlib
import subprocess
from typing import Dict, Iterable, List, Optional, Set

from ..errors import ConfigError
from .flow import Project, _expand


def git_changed_files(ref: str,
                      cwd: pathlib.Path) -> Set[pathlib.Path]:
    """Absolute paths of files touched since ``merge-base ref HEAD``.

    Includes committed-on-branch, staged, unstaged, and untracked files.
    Raises :class:`~repro.errors.ConfigError` when ``cwd`` is not inside
    a git checkout or ``ref`` does not resolve.
    """
    root = _git(["rev-parse", "--show-toplevel"], cwd,
                f"--changed requires a git checkout (looked from {cwd})")
    top = pathlib.Path(root.strip())
    base = _git(["merge-base", ref, "HEAD"], cwd,
                f"--changed: cannot resolve merge-base of '{ref}' "
                "and HEAD").strip()
    changed: Set[pathlib.Path] = set()
    diff = _git(["diff", "--name-only", "-z", base, "--"], cwd,
                f"--changed: git diff against {base[:12]} failed")
    untracked = _git(["ls-files", "--others", "--exclude-standard",
                      "--full-name", "-z"],
                     cwd, "--changed: git ls-files failed")
    for blob in (diff, untracked):
        for name in blob.split("\0"):
            if name:
                changed.add((top / name).resolve())
    return changed


def _git(args: List[str], cwd: pathlib.Path, error: str) -> str:
    try:
        proc = subprocess.run(
            ["git"] + args, cwd=str(cwd), check=True,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = ""
        if isinstance(exc, subprocess.CalledProcessError) and exc.stderr:
            detail = f": {exc.stderr.decode(errors='replace').strip()}"
        raise ConfigError(f"{error}{detail}")
    return proc.stdout.decode(errors="replace")


def expand_with_dependents(project: Project,
                           changed: Set[pathlib.Path]
                           ) -> Set[pathlib.Path]:
    """Changed files plus every project file that imports them,
    transitively (module-granularity reverse dependency closure)."""
    path_to_module: Dict[pathlib.Path, str] = {}
    module_to_path: Dict[str, pathlib.Path] = {}
    for name, module in project.modules.items():
        resolved = pathlib.Path(module.path).resolve()
        path_to_module[resolved] = name
        module_to_path[name] = resolved
    dependents: Dict[str, Set[str]] = {name: set()
                                       for name in project.modules}
    names = set(project.modules)
    for name, table in project.imports.items():
        # star re-exports (`from X import *`) carry no member entries,
        # but changing X still invalidates this module and everything
        # importing through it — chase them like flow.py does
        targets = list(table.modules.values()) + \
            list(table.members.values()) + list(table.stars)
        for target in targets:
            owner = _owning_module(target, names)
            if owner is not None and owner != name:
                dependents[owner].add(name)
    scope = {path for path in changed if path in path_to_module}
    frontier = [path_to_module[path] for path in sorted(scope)]
    seen = set(frontier)
    while frontier:
        module = frontier.pop()
        for dependent in sorted(dependents.get(module, ())):
            if dependent not in seen:
                seen.add(dependent)
                frontier.append(dependent)
        # a changed module also invalidates its package __init__ re-exports
        package = module.rsplit(".", 1)[0] if "." in module else None
        if package in names and package not in seen:
            seen.add(package)
            frontier.append(package)
    scope.update(module_to_path[name] for name in seen)
    return scope


def _owning_module(target: str, names: Set[str]) -> Optional[str]:
    """Longest project-module prefix of a canonical dotted symbol."""
    parts = target.split(".")
    for cut in range(len(parts), 0, -1):
        prefix = ".".join(parts[:cut])
        if prefix in names:
            return prefix
    return None


def changed_scope(paths: Iterable[pathlib.Path],
                  ref: str) -> Set[pathlib.Path]:
    """Resolved file paths to report on for ``lint --changed REF``.

    Empty set means nothing in ``paths`` changed since the merge base
    (the caller can skip linting entirely).
    """
    files = _expand([pathlib.Path(p) for p in paths])
    if not files:
        return set()
    anchor = pathlib.Path(files[0]).resolve()
    cwd = anchor if anchor.is_dir() else anchor.parent
    changed = git_changed_files(ref, cwd)
    lintable = {pathlib.Path(f).resolve() for f in files}
    touched = changed & lintable
    if not touched:
        return set()
    project = Project.from_paths(files)
    return expand_with_dependents(project, touched) & lintable
