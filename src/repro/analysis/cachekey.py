"""Cache-key soundness for the content-addressed ArtifactStore (deep pass).

Every ``ArtifactStore`` entry is addressed by ``store_key(kind,
fields)`` — a hash over the *declared* identifying fields. The contract
is that the keyed computation reads nothing else: an input the key does
not cover makes two different computations collide on one address
(stale artifacts, the CHOPIN failure mode the phase split exists to
prevent), while a key field the computation never reads fragments the
address space and kills the hit rate for no correctness gain.

This pass checks both directions at every ``*.cached(...)`` call site:

- the *transitive input set* of the compute callable — the parameters,
  ``self`` attributes and module globals it (transitively) reads,
  obtained from :mod:`repro.analysis.effects` summaries with
  call-site parameter substitution;
- the *covered set* of the key — each field's name plus the root tokens
  of its value expression (fields built by a helper returning a dict
  literal, e.g. ``_result_fields(...)``, are chased into the helper
  with the same substitution).

Tokens are normalized before comparison (leading underscores dropped,
``_fp``/``_fingerprint``/``_hash``/``_key``/``_id`` suffixes stripped)
so ``"camera": self._camera_fp`` covers reads of ``self.camera`` and
``draw.fingerprint`` covers ``draw``.

Rules:

``cache-key-missing`` (error)
    The computation reads an input no key field covers. Reported at the
    ``cached`` call.

``cache-key-unused`` (warning)
    A key field whose tokens the computation never reads. Only reported
    when the input analysis is *complete* (every call in the compute
    closure resolved) — an unresolved call could hide the read, and a
    false "unused" invites deleting a load-bearing field.

Sites whose fields or compute cannot be resolved statically (both are
forwarded parameters inside the store plumbing itself, for instance)
are skipped silently, in the substrate's best-effort spirit. Store
plumbing (``render_service()``, ``store_key``, ``cached`` and the
``render.store`` module) never counts as an input: fetching the cache
is not reading data the key must name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .effects import EffectChecker, Root, scope_eval
from .flow import FunctionInfo, Project, dotted_chain
from .rules import ProjectRule, register_project
from .simlint import Finding

RULE_MISSING = "cache-key-missing"
RULE_UNUSED = "cache-key-unused"

#: identity-suffix conventions stripped before token comparison
_TOKEN_SUFFIXES = ("_fingerprint", "_fp", "_hash", "_key", "_id")

#: store plumbing: calling it is cache mechanics, not a data input
_SUBSTRATE_FUNCTIONS = frozenset({
    "render_service", "configure_render_service", "store_key", "cached",
})


def normalize_token(token: str) -> str:
    """Canonical form of a field name / input root for comparison."""
    token = token.lstrip("_")
    for suffix in _TOKEN_SUFFIXES:
        if token.endswith(suffix) and len(token) > len(suffix):
            return token[:-len(suffix)]
    return token


def _is_substrate(fn: FunctionInfo) -> bool:
    if fn.name in _SUBSTRATE_FUNCTIONS:
        return True
    tail = fn.module_name.rsplit(".", 1)[-1]
    return tail == "store"


@dataclass
class _FieldEntry:
    """One key field: its name plus the tokens its value contributes."""

    name: str
    path: str
    line: int
    col: int
    tokens: Set[str]


class CacheKeyChecker:
    """Checks key coverage at every ``*.cached(...)`` site."""

    severity = "error"

    def __init__(self, project: Project,
                 effects: Optional[EffectChecker] = None) -> None:
        self.project = project
        self.effects = effects if effects is not None \
            else EffectChecker(project)
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            evaluator = scope_eval(self.effects, fn)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "cached":
                    self._check_site(fn, evaluator, node)
        return sorted(self.findings)

    # -- one site ------------------------------------------------------------

    def _check_site(self, fn: FunctionInfo, evaluator, call: ast.Call
                    ) -> None:
        parsed = self._parse_site(evaluator, call)
        if parsed is None:
            return
        kind, fields_expr, compute = parsed
        entries = self._field_entries(fn, evaluator, fields_expr)
        if entries is None:
            return
        scan = _ComputeScan(self, evaluator)
        if not scan.scan_compute(fn, compute):
            return
        inputs = {normalize_token(name) for _, name in scan.roots}
        covered: Set[str] = set()
        for entry in entries:
            covered |= entry.tokens
        for token in sorted(inputs - covered):
            self.findings.append(Finding(
                path=fn.module.path, line=call.lineno,
                col=call.col_offset, rule=RULE_MISSING,
                message=f"cached computation for kind {kind!r} reads "
                        f"`{token}` but no key field covers it (fields: "
                        f"{', '.join(e.name for e in entries)}); an "
                        f"un-keyed input makes distinct computations "
                        f"collide on one artifact address"))
        if not scan.complete:
            return  # an unresolved call could hide the read
        for entry in entries:
            if not entry.tokens & inputs:
                self.findings.append(Finding(
                    path=entry.path, line=entry.line, col=entry.col,
                    rule=RULE_UNUSED,
                    message=f"key field {entry.name!r} of kind {kind!r} "
                            f"is never read by the cached computation; "
                            f"over-keying fragments the address space "
                            f"and defeats cache hits"))

    def _parse_site(self, evaluator, call: ast.Call
                    ) -> Optional[Tuple[str, ast.expr, ast.expr]]:
        """``(kind, fields_expr, compute_expr)`` or None to skip."""
        if call.keywords or any(isinstance(a, ast.Starred)
                                for a in call.args):
            return None
        if len(call.args) == 3:
            kind_expr, fields_expr, compute = call.args
        elif len(call.args) == 2:
            resolved = self._resolve_store_key(evaluator, call.args[0])
            if resolved is None:
                return None
            kind_expr, fields_expr = resolved
            compute = call.args[1]
        else:
            return None
        kind = kind_expr.value if isinstance(kind_expr, ast.Constant) \
            and isinstance(kind_expr.value, str) else "?"
        return kind, fields_expr, compute

    def _resolve_store_key(self, evaluator, key_expr: ast.expr
                           ) -> Optional[Tuple[ast.expr, ast.expr]]:
        """Chase a 2-arg site's key back to its ``store_key(kind, fields)``."""
        if isinstance(key_expr, ast.Name):
            key_expr = evaluator.aliases.get(key_expr.id)
        if not isinstance(key_expr, ast.Call) or len(key_expr.args) != 2:
            return None
        chain = dotted_chain(key_expr.func)
        if chain is None or chain[-1] != "store_key":
            return None
        return key_expr.args[0], key_expr.args[1]

    # -- the covered set -----------------------------------------------------

    def _field_entries(self, fn: FunctionInfo, evaluator,
                       fields_expr: ast.expr
                       ) -> Optional[List[_FieldEntry]]:
        if isinstance(fields_expr, ast.Dict):
            return self._entries_of_dict(fn, evaluator, fields_expr,
                                         lambda expr: evaluator.roots(expr))
        if isinstance(fields_expr, ast.Call):
            return self._entries_of_builder(fn, evaluator, fields_expr)
        return None

    def _entries_of_dict(self, fn: FunctionInfo, evaluator,
                         node: ast.Dict, root_fn
                         ) -> Optional[List[_FieldEntry]]:
        entries: List[_FieldEntry] = []
        for key, value in zip(node.keys, node.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                return None  # ** expansion or computed key: give up
            tokens = {normalize_token(key.value)}
            tokens |= {normalize_token(name) for _, name in root_fn(value)}
            entries.append(_FieldEntry(
                name=key.value, path=fn.module.path, line=key.lineno,
                col=key.col_offset, tokens=tokens))
        return entries

    def _entries_of_builder(self, fn: FunctionInfo, evaluator,
                            call: ast.Call) -> Optional[List[_FieldEntry]]:
        builder = self.project.resolve_call(fn, call)
        if builder is None:
            return None
        returned = None
        for node in ast.walk(builder.node):
            if isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Dict):
                returned = node.value
                break
        if returned is None:
            return None
        builder_eval = scope_eval(self.effects, builder)
        argmap = evaluator._argmap(call, builder)
        receiver = call.func.value \
            if isinstance(call.func, ast.Attribute) else None

        def site_roots(value: ast.expr) -> Set[Root]:
            mapped: Set[Root] = set()
            for kind, name in builder_eval.roots(value):
                if kind == "param":
                    if argmap and name in argmap:
                        mapped |= evaluator.roots(argmap[name])
                elif kind == "self":
                    if isinstance(receiver, ast.Name) \
                            and receiver.id in ("self", "cls"):
                        mapped.add(("self", name))
                    elif receiver is not None:
                        mapped |= evaluator.roots(receiver)
                else:
                    mapped.add((kind, name))
            return mapped

        entries = self._entries_of_dict(builder, builder_eval, returned,
                                        site_roots)
        if entries is None:
            return None
        # findings anchor at the builder's dict, in the builder's module
        for entry in entries:
            entry.path = builder.module.path
        return entries


class _ComputeScan:
    """Transitive input roots of one compute callable."""

    def __init__(self, checker: CacheKeyChecker, evaluator) -> None:
        self.checker = checker
        self.evaluator = evaluator
        self.roots: Set[Root] = set()
        self.complete = True

    def scan_compute(self, fn: FunctionInfo, compute: ast.expr) -> bool:
        """Populate from the compute expression; False = unanalyzable."""
        if isinstance(compute, ast.Lambda):
            self._scan(compute.body)
            return True
        if isinstance(compute, ast.Name):
            nested = self._nested_def(fn, compute.id)
            if nested is not None:
                for stmt in nested.body:
                    self._scan(stmt)
                return True
            symbol = self.checker.project.resolve_name(
                fn.module_name, compute.id)
            target = self.checker.project.lookup_function(symbol)
            if target is not None:
                return self._from_summary(target, receiver_is_self=False)
            return False
        chain = dotted_chain(compute)
        if chain is not None and chain[0] in ("self", "cls") \
                and len(chain) == 2 and fn.is_method:
            cls = self.checker.project.classes.get(fn.class_qualname)
            method = self.checker.project.method_of(cls, chain[1]) \
                if cls is not None else None
            if method is not None:
                return self._from_summary(method, receiver_is_self=True)
        return False

    def _nested_def(self, fn: FunctionInfo,
                    name: str) -> Optional[ast.FunctionDef]:
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn.node and node.name == name:
                return node
        return None

    def _from_summary(self, target: FunctionInfo,
                      receiver_is_self: bool) -> bool:
        summary = self.checker.effects.summary(target)
        self.complete = self.complete and summary.complete
        self.roots |= {("global", g) for g in summary.global_reads}
        if summary.self_reads:
            if receiver_is_self:
                self.roots |= {("self", a) for a in summary.self_reads}
            else:
                self.complete = False
        # called with no arguments: parameter reads hit defaults only
        return True

    # -- expression walk -----------------------------------------------------

    def _scan(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._scan_call(node)
            return
        if isinstance(node, (ast.Attribute, ast.Name)) \
                and isinstance(getattr(node, "ctx", None), ast.Load):
            self.roots |= self.evaluator.roots(node)
            return
        for child in ast.iter_child_nodes(node):
            self._scan(child)

    def _scan_call(self, call: ast.Call) -> None:
        chain = dotted_chain(call.func)
        callee = self.checker.project.resolve_call(
            self.evaluator.fn, call)
        if callee is not None and _is_substrate(callee):
            pass  # cache plumbing, not an input
        elif callee is not None:
            summary = self.checker.effects.summary(callee)
            if not summary.complete:
                self.complete = False
            if summary.self_reads \
                    and isinstance(call.func, ast.Attribute):
                receiver = call.func.value
                if isinstance(receiver, ast.Name) \
                        and receiver.id in ("self", "cls"):
                    self.roots |= {("self", a)
                                   for a in summary.self_reads}
                else:
                    self.roots |= self.evaluator.roots(receiver)
            self.roots |= {("global", g) for g in summary.global_reads}
        elif chain is not None and self.evaluator._trusted_external(chain):
            pass
        else:
            self.complete = False
            if isinstance(call.func, ast.Attribute):
                # the receiver object itself is an input we can still see
                self.roots |= self.evaluator.roots(call.func.value)
            elif isinstance(call.func, ast.Name) \
                    and (call.func.id in self.evaluator.params
                         or call.func.id in self.evaluator.locals):
                # a callable that flowed in as data is an input; an
                # unresolvable global function is only incompleteness
                self.roots |= self.evaluator.roots(call.func)
        for arg in call.args:
            self._scan(arg.value if isinstance(arg, ast.Starred) else arg)
        for keyword in call.keywords:
            self._scan(keyword.value)


# ------------------------------------------------------------ registration


@register_project
class CacheKeyPass(ProjectRule):
    """Deep pass wrapper for the un-keyed-input (soundness) direction."""

    name = RULE_MISSING
    description = ("a cached computation reads an input its store_key "
                   "fields do not cover (distinct computations collide "
                   "on one artifact address)")
    severity = "error"

    def check_project(self, project: Project) -> Iterator[Finding]:
        findings = CacheKeyChecker(project).run()
        return iter(f for f in findings if f.rule == RULE_MISSING)


@register_project
class CacheKeyUnusedPass(ProjectRule):
    """Deep pass wrapper for the over-keying (hit-rate) direction."""

    name = RULE_UNUSED
    description = ("a store_key field is never read by the cached "
                   "computation (over-keying fragments the address "
                   "space and defeats cache hits)")
    severity = "warning"

    def check_project(self, project: Project) -> Iterator[Finding]:
        findings = CacheKeyChecker(project).run()
        return iter(f for f in findings if f.rule == RULE_UNUSED)
