"""simlint driver: parse sources, run the rule registry, apply suppressions.

A finding is suppressed by a marker comment *on the offending line*::

    value = random.random()          # simlint: disable=unseeded-rng
    except BaseException:            # simlint: disable=broad-except
    anything_at_all()                # simlint: disable

``disable`` with no rule list suppresses every rule on that line; with a
comma-separated list it suppresses only the named rules. Unknown rule names
in a marker are ignored (they may belong to a newer rule set).

Files that fail to parse yield a single ``syntax-error`` finding rather
than aborting the whole run, so one broken file cannot hide findings in
the rest of the tree.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

#: pseudo-rule reported for unparseable files
SYNTAX_RULE = "syntax-error"

#: finding severities, most severe first (exit-code and --fail-on order)
SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable(?:\s*=\s*([\w\-,\s]+))?")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = field(default="error", compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message,
                "severity": self.severity}


class LintModule:
    """A parsed source file handed to every rule."""

    def __init__(self, path: str, source: str) -> None:
        self.path = str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(path=self.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), rule=rule,
                       message=message)


def suppressed_rules(line_text: str) -> Optional[Set[str]]:
    """Rules disabled by a marker on this line.

    Returns ``None`` when there is no marker, an empty set for a bare
    ``disable`` (suppress everything), or the named rules otherwise.
    """
    match = _SUPPRESS_RE.search(line_text)
    if match is None:
        return None
    names = match.group(1)
    if not names:
        return set()
    return {name.strip() for name in names.split(",") if name.strip()}


def _is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not 0 < finding.line <= len(lines):
        return False
    disabled = suppressed_rules(lines[finding.line - 1])
    if disabled is None:
        return False
    return not disabled or finding.rule in disabled


def lint_source(source: str, path: str = "<memory>",
                rules: Optional[Iterable] = None) -> List[Finding]:
    """Lint one source string; returns surviving findings, sorted."""
    from .rules import default_rules
    try:
        module = LintModule(path, source)
    except SyntaxError as exc:
        return [Finding(path=str(path), line=exc.lineno or 1,
                        col=exc.offset or 0, rule=SYNTAX_RULE,
                        message=f"file does not parse: {exc.msg}")]
    findings: List[Finding] = []
    for rule in (default_rules() if rules is None else rules):
        severity = getattr(rule, "severity", "error")
        findings.extend(
            f if f.severity == severity else replace(f, severity=severity)
            for f in rule.check(module))
    return sorted(f for f in findings
                  if not _is_suppressed(f, module.lines))


def lint_file(path: Union[str, pathlib.Path],
              rules: Optional[Iterable] = None) -> List[Finding]:
    file_path = pathlib.Path(path)
    return lint_source(file_path.read_text(), path=str(file_path),
                       rules=rules)


def lint_paths(paths: Iterable[Union[str, pathlib.Path]],
               rules: Optional[Iterable] = None,
               deep: bool = False,
               scope: Optional[Set[pathlib.Path]] = None) -> List[Finding]:
    """Lint files and/or directory trees (``*.py``, recursively).

    With ``deep=True``, additionally builds a
    :class:`~repro.analysis.flow.Project` over all the paths at once and
    runs the registered project-wide passes (units checker,
    nondeterminism taint, resource protocol, error contract,
    effect/purity inference + hot-path allocation lint, cache-key
    soundness) on top of the per-statement rules.

    ``scope`` (a set of *resolved* paths, e.g. from
    :func:`~repro.analysis.scope.changed_scope`) restricts reporting:
    per-statement rules run only on scoped files, and the deep passes —
    which still analyze the whole file set so cross-module flows stay
    visible — report only findings located in scoped files.
    """
    files: List[pathlib.Path] = []
    for path in paths:
        p = pathlib.Path(path)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    seen: Set[pathlib.Path] = set()
    findings: List[Finding] = []
    unique_files: List[pathlib.Path] = []
    for file_path in files:
        resolved = file_path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        unique_files.append(file_path)
        if scope is None or resolved in scope:
            findings.extend(lint_file(file_path, rules=rules))
    if deep:
        deep_findings = lint_project(unique_files)
        if scope is not None:
            scoped_strs = {str(fp) for fp in unique_files
                           if fp.resolve() in scope}
            deep_findings = [f for f in deep_findings
                             if f.path in scoped_strs]
        findings.extend(deep_findings)
    return sorted(findings)


def lint_project(files: Sequence[Union[str, pathlib.Path]],
                 project_rules: Optional[Iterable] = None) -> List[Finding]:
    """Run the project-wide (deep) passes over one set of files.

    The whole file set becomes a single :class:`~repro.analysis.flow.Project`
    so units and taint propagate across module boundaries. Suppression
    markers apply exactly as for per-statement findings.
    """
    from .flow import Project
    from .rules import default_project_rules
    project = Project.from_paths([pathlib.Path(p) for p in files])
    findings: List[Finding] = []
    for rule in (default_project_rules() if project_rules is None
                 else project_rules):
        severity = getattr(rule, "severity", "error")
        findings.extend(
            f if f.severity == severity else replace(f, severity=severity)
            for f in rule.check_project(project))
    lines_by_path = {module.path: module.lines
                     for module in project.modules.values()}
    return sorted(
        f for f in findings
        if not _is_suppressed(f, lines_by_path.get(f.path, ())))
