"""Render lint findings as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json
from typing import List, Sequence

from .simlint import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """Compiler-style ``path:line:col: severity: rule: message`` lines
    plus a summary with the per-severity breakdown."""
    lines: List[str] = [
        f"{f.location}: {f.severity}: {f.rule}: {f.message}"
        for f in findings]
    count = len(findings)
    if count == 0:
        lines.append("simlint: clean (0 findings)")
    else:
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = count - errors
        plural = "" if count == 1 else "s"
        lines.append(f"simlint: {count} finding{plural} "
                     f"({errors} error, {warnings} warning)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document (sorted findings, version-tagged)."""
    payload = {
        "version": 1,
        "count": len(findings),
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
