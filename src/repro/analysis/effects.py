"""Interprocedural effect/purity inference (deep pass).

CHOPIN's parallel composition is only correct because draw rendering is
assignment-independent: the geometry phase must be a pure function of
(draw content, camera, resolution), or the content-addressed artifacts
it produces silently become stale or GPU-assignment-dependent. This
pass classifies every project function with a summary over a small
effect lattice and checks the phase-split invariant statically:

- ``pure`` — the empty effect set;
- ``reads-config`` — reads static configuration (``config``/``cfg``
  chains): harmless for caching *when keyed*;
- ``reads-assignment`` — reads GPU-assignment state (``owner_map``,
  ``owner_mask``, ``num_owners``, ...): the one thing geometry-phase
  code must never touch;
- ``reads-fault-state`` — reads fault/failure state (``fault_plan``,
  ``failed_gpus``, ...);
- ``reads-live-sim-state`` — reads through a ``sim``/``simulator``
  object (event time, queues);
- ``mutates-args`` / ``mutates-shared`` — stores into parameters,
  ``self``, or module globals;
- ``io`` — file/process side effects.

Summaries propagate bottom-up through the resolved call graph with
parameter substitution (a callee that mutates its parameter ``buf``
gives the caller ``mutates-args`` only when the caller passed its own
parameter or shared state there), the same style as the protocol pass.
Each summary also carries the *external read set* — which parameters,
``self`` attributes, and module globals the function (transitively)
reads — which is what :mod:`repro.analysis.cachekey` checks key fields
against.

Three finding ids come out of this module:

``phase-impure`` (error)
    A function transitively reachable from a ``geometry_phase`` root
    reads assignment, fault, or live-sim state. Reported at the
    offending read, in the function that performs it. ``# effect:``
    declarations deliberately do not override this rule (a stale
    ``pure`` must not hide a real read); a known-benign exception is
    suppressed per line with ``# simlint: disable=phase-impure``.

``effect-undeclared`` (error)
    A function carries a trailing ``# effect: <tags>`` declaration on
    its ``def`` line (``# effect: pure``, ``# effect: reads-config,
    mutates-args``, ...) and the inferred effects exceed it. A
    declaration is also trusted upward: callers see the declared
    effects, which makes a deliberate ``# effect:`` the structured way
    to cut a known-benign effect out of propagation.

``hot-alloc`` (warning)
    Container/array allocation or closure creation on a per-fragment /
    per-pixel path in ``raster/``, ``shading/`` or
    ``composition/operators.py``: non-empty list/dict/set literals,
    ``list()``/``dict()``/``set()``/``tuple()`` calls, lambdas and
    nested ``def``\\ s, and numpy constructors with all-constant
    arguments (``np.zeros(4)`` rebuilt per call). A function counts as
    hot when it is reachable from ``fragment_phase`` or called from a
    ``for``/``while`` body anywhere in the project; comprehensions are
    flagged only when lexically inside a loop (a result-sized
    comprehension at function top level is the function's output, not a
    per-pixel temporary). Empty-container accumulators are exempt.

Known unsoundness (see DESIGN.md §16): dynamic dispatch through
untyped locals, ``**kwargs`` forwarding, and reads laundered by
passing ``self`` wholesale are invisible to the inference; effect
classification of reads is name-vocabulary based.
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .flow import FunctionInfo, Project, dotted_chain
from .rules import ProjectRule, register_project
from .simlint import Finding

RULE_PHASE = "phase-impure"
RULE_UNDECLARED = "effect-undeclared"
RULE_HOT_ALLOC = "hot-alloc"

#: effect tags a ``# effect:`` declaration may use (``pure`` = none)
EFFECT_TAGS = frozenset({
    "reads-config", "reads-assignment", "reads-fault-state",
    "reads-live-sim-state", "mutates-args", "mutates-shared", "io",
})

#: the tags geometry-phase code must never carry
PHASE_BAD_TAGS = ("reads-assignment", "reads-fault-state",
                  "reads-live-sim-state")

_EFFECT_COMMENT_RE = re.compile(r"#\s*effect:\s*([\w\-,\s]+)")

#: identifier vocabulary: a chain component in one of these sets marks
#: the whole read (exact component match, never substring)
ASSIGNMENT_WORDS = frozenset({
    "owner_mask", "owner_masks", "own_masks", "owner_map", "owners",
    "num_owners", "assignment", "assignments", "gpu_id",
})
FAULT_WORDS = frozenset({
    "fault", "faults", "fault_plan", "failed", "failed_gpus",
    "fail_stopped", "degraded",
})
SIM_WORDS = frozenset({"sim", "simulator"})
CONFIG_WORDS = frozenset({"config", "cfg", "configuration"})

_IO_BUILTINS = frozenset({"open", "print", "input"})
_IO_MODULES = frozenset({"os", "subprocess", "shutil", "socket"})
_IO_ATTRS = frozenset({"write_text", "read_text", "write_bytes",
                       "read_bytes", "unlink", "mkdir", "rmdir",
                       "urlopen"})

#: external modules whose calls are trusted effect-free (reads of their
#: arguments are scanned independently, so nothing is lost)
_PURE_MODULES = frozenset({
    "numpy", "math", "hashlib", "json", "itertools", "collections",
    "dataclasses", "enum", "textwrap", "re", "functools", "heapq",
    "bisect", "copy", "typing", "struct", "zlib",
})

_MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "remove", "pop",
    "popleft", "appendleft", "clear", "setdefault", "sort", "reverse",
    "fill",
})

_BUILTIN_NAMES = frozenset(dir(builtins))

#: a root token of an external read/mutation:
#: ("param", name) / ("self", attr) / ("global", name)
Root = Tuple[str, str]


@dataclass
class EffectSummary:
    """What one function does, seen from a call site."""

    #: receiver-independent effects (reads-*, io, mutates-shared for
    #: module-global stores)
    effects: FrozenSet[str] = frozenset()
    #: parameters it (transitively) mutates; ``"self"`` marks mutation
    #: of the receiver object
    mutates_params: FrozenSet[str] = frozenset()
    #: parameters it (transitively) reads
    param_reads: FrozenSet[str] = frozenset()
    #: first-level ``self`` attributes it (transitively) reads
    self_reads: FrozenSet[str] = frozenset()
    #: module-global names it (transitively) reads
    global_reads: FrozenSet[str] = frozenset()
    #: every call in the transitive closure resolved (or was trusted)
    complete: bool = True


@dataclass
class _Witness:
    """First offending read of one effect tag inside one function."""

    line: int
    detail: str


def declared_effects(project: Project, fn: FunctionInfo
                     ) -> Tuple[Optional[FrozenSet[str]], List[str]]:
    """Parse a ``# effect:`` declaration on the ``def`` line.

    Returns ``(tags, unknown_words)``; ``tags`` is None when there is
    no declaration, the empty set for ``# effect: pure``.
    """
    comment = project.line_comment(fn.module, fn.node.lineno)
    match = _EFFECT_COMMENT_RE.search(comment)
    if match is None:
        return None, []
    tags: Set[str] = set()
    unknown: List[str] = []
    for word in match.group(1).split(","):
        word = word.strip()
        if not word:
            continue
        if word == "pure":
            continue
        if word in EFFECT_TAGS:
            tags.add(word)
        else:
            unknown.append(word)
    return frozenset(tags), unknown


def display_tags(summary: EffectSummary) -> FrozenSet[str]:
    """The effect set as a declaration would have to spell it."""
    tags = set(summary.effects)
    if summary.mutates_params - {"self"}:
        tags.add("mutates-args")
    if "self" in summary.mutates_params:
        tags.add("mutates-shared")
    return frozenset(tags)


class EffectChecker:
    """Infers effect summaries and runs the phase/declaration checks."""

    severity = "error"

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: List[Finding] = []
        self._summaries: Dict[str, EffectSummary] = {}
        #: pre-declaration-override summaries, for the undeclared check
        self._inferred: Dict[str, EffectSummary] = {}
        #: qualname -> tag -> first offending read (own reads only)
        self._witnesses: Dict[str, Dict[str, _Witness]] = {}

    # -- summaries -----------------------------------------------------------

    def summary(self, fn: FunctionInfo) -> EffectSummary:
        if fn.qualname in self._summaries:
            return self._summaries[fn.qualname]
        # recursion guard: a cycle contributes nothing extra
        self._summaries[fn.qualname] = EffectSummary()
        inferred = _EffectEval(self, fn).run()
        self._inferred[fn.qualname] = inferred
        self._summaries[fn.qualname] = self._apply_declaration(fn, inferred)
        return self._summaries[fn.qualname]

    def _apply_declaration(self, fn: FunctionInfo,
                           inferred: EffectSummary) -> EffectSummary:
        declared, _ = declared_effects(self.project, fn)
        if declared is None:
            return inferred
        # the declaration is trusted upward: callers see declared tags
        effects = frozenset(t for t in declared
                            if t not in ("mutates-args", "mutates-shared"))
        mutates: Set[str] = set()
        if "mutates-args" in declared:
            mutates |= inferred.mutates_params - {"self"}
        if "mutates-shared" in declared:
            if "self" in inferred.mutates_params:
                mutates.add("self")
            else:
                effects = effects | {"mutates-shared"}
        return EffectSummary(
            effects=effects, mutates_params=frozenset(mutates),
            param_reads=inferred.param_reads,
            self_reads=inferred.self_reads,
            global_reads=inferred.global_reads,
            complete=inferred.complete)

    def own_witnesses(self, qualname: str) -> Dict[str, _Witness]:
        return self._witnesses.get(qualname, {})

    # -- driver --------------------------------------------------------------

    def run(self) -> List[Finding]:
        for qualname in sorted(self.project.functions):
            self.summary(self.project.functions[qualname])
        self._check_declarations()
        self._check_phase_purity()
        return sorted(self.findings)

    def _check_declarations(self) -> None:
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            declared, unknown = declared_effects(self.project, fn)
            if declared is None:
                continue
            for word in unknown:
                self.findings.append(Finding(
                    path=fn.module.path, line=fn.node.lineno,
                    col=fn.node.col_offset, rule=RULE_UNDECLARED,
                    message=f"unknown effect tag {word!r} on "
                            f"{fn.name}(); known tags: pure, "
                            + ", ".join(sorted(EFFECT_TAGS))))
            inferred = display_tags(self._inferred[qualname])
            extra = inferred - declared
            if extra:
                self.findings.append(Finding(
                    path=fn.module.path, line=fn.node.lineno,
                    col=fn.node.col_offset, rule=RULE_UNDECLARED,
                    message=f"{fn.name}() declares `# effect: "
                            f"{_format_tags(declared)}` but the inferred "
                            f"effects add {_format_tags(extra)}"))

    def _check_phase_purity(self) -> None:
        roots = [qn for qn, fn in self.project.functions.items()
                 if fn.name == "geometry_phase"]
        if not roots:
            return
        graph = self.project.call_graph()
        closure: Set[str] = set()
        frontier = sorted(roots)
        while frontier:
            qualname = frontier.pop()
            if qualname in closure:
                continue
            closure.add(qualname)
            frontier.extend(sorted(graph.get(qualname, ())))
        root_label = min(roots)
        for qualname in sorted(closure):
            fn = self.project.functions.get(qualname)
            if fn is None:
                continue
            witnesses = self.own_witnesses(qualname)
            for tag in PHASE_BAD_TAGS:
                if tag not in witnesses:
                    continue
                # an `# effect:` declaration does NOT override this rule
                # (a stale `pure` must not hide a real assignment read);
                # a deliberate exception takes a per-line
                # `# simlint: disable=phase-impure` at the witness
                witness = witnesses[tag]
                self.findings.append(Finding(
                    path=fn.module.path, line=witness.line, col=0,
                    rule=RULE_PHASE,
                    message=f"{fn.name}() is geometry-phase code "
                            f"(reached from {root_label}) but reads "
                            f"{_TAG_LABELS[tag]} via `{witness.detail}`; "
                            f"the phase split requires "
                            f"assignment-independent geometry"))


_TAG_LABELS = {
    "reads-assignment": "GPU-assignment state",
    "reads-fault-state": "fault state",
    "reads-live-sim-state": "live simulator state",
}


def _format_tags(tags: FrozenSet[str]) -> str:
    return ", ".join(sorted(tags)) if tags else "pure"


class _EffectEval:
    """Infers one function's effect summary (bottom-up, memoized)."""

    def __init__(self, checker: EffectChecker, fn: FunctionInfo) -> None:
        self.checker = checker
        self.project = checker.project
        self.fn = fn
        params = fn.param_names()
        if fn.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        self.params: Set[str] = set(params)
        self.locals: Set[str] = set()
        self.aliases: Dict[str, ast.expr] = {}
        self.effects: Set[str] = set()
        self.mutates: Set[str] = set()
        self.param_reads: Set[str] = set()
        self.self_reads: Set[str] = set()
        self.global_reads: Set[str] = set()
        self.complete = True
        self.witnesses: Dict[str, _Witness] = {}
        args = fn.node.args
        if args.vararg or args.kwarg:
            self.complete = False

    def run(self) -> EffectSummary:
        self._collect_locals()
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load):
                self._read(node)
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                self._read(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._store(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._store_target(node.target)
            elif isinstance(node, ast.Call):
                self._call(node)
            elif isinstance(node, ast.Global):
                self._tag("mutates-shared", node.lineno,
                          f"global {', '.join(node.names)}")
        self.checker._witnesses[self.fn.qualname] = self.witnesses
        return EffectSummary(
            effects=frozenset(self.effects),
            mutates_params=frozenset(self.mutates),
            param_reads=frozenset(self.param_reads),
            self_reads=frozenset(self.self_reads),
            global_reads=frozenset(self.global_reads),
            complete=self.complete)

    # -- scope ---------------------------------------------------------------

    def _collect_locals(self) -> None:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                self.locals.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not self.fn.node:
                    self.locals.add(node.name)
                for arg in (node.args.posonlyargs + node.args.args
                            + node.args.kwonlyargs):
                    self.locals.add(arg.arg)
            elif isinstance(node, ast.Lambda):
                for arg in (node.args.posonlyargs + node.args.args
                            + node.args.kwonlyargs):
                    self.locals.add(arg.arg)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.locals.add(node.name)
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                self.aliases.setdefault(node.targets[0].id, node.value)

    def roots(self, expr: Optional[ast.expr],
              _depth: int = 0) -> Set[Root]:
        """External root tokens an expression reads (alias-resolved)."""
        out: Set[Root] = set()
        if expr is None or _depth > 8:
            return out
        for node in ast.walk(expr):
            chain = None
            if isinstance(node, ast.Attribute):
                chain = dotted_chain(node)
            elif isinstance(node, ast.Name):
                chain = [node.id]
            if chain is None:
                continue
            root = chain[0]
            if root == "self" or root == "cls":
                if len(chain) > 1 and not self._is_self_method(chain[1]):
                    out.add(("self", chain[1]))
                # the whole receiver: reads through it are untracked
            elif root in self.params:
                out.add(("param", root))
            elif root in self.locals:
                alias = self.aliases.get(root)
                if alias is not None and alias is not expr:
                    out |= self.roots(alias, _depth + 1)
            elif self.project.resolve_name(self.fn.module_name,
                                           root) is not None:
                continue  # module-level code/constant, not runtime input
            elif root not in _BUILTIN_NAMES:
                out.add(("global", root))
        return out

    # -- reads ---------------------------------------------------------------

    def _read(self, node: ast.AST) -> None:
        chain = dotted_chain(node) if isinstance(node, ast.Attribute) \
            else [node.id]
        if chain is None:
            return
        self._classify_chain(chain, node.lineno)
        root = chain[0]
        if root in ("self", "cls"):
            if len(chain) > 1 and not self._is_self_method(chain[1]):
                self.self_reads.add(chain[1])
        elif root in self.params:
            self.param_reads.add(root)
        elif root in self.locals:
            pass
        elif self.project.resolve_name(self.fn.module_name, root) is not None:
            pass
        elif root not in _BUILTIN_NAMES:
            self.global_reads.add(root)

    def _classify_chain(self, chain: List[str], line: int) -> None:
        detail = ".".join(chain)
        for comp in chain:
            if comp in FAULT_WORDS:
                self._tag("reads-fault-state", line, detail)
            elif comp in ASSIGNMENT_WORDS:
                self._tag("reads-assignment", line, detail)
            elif comp in CONFIG_WORDS:
                self._tag("reads-config", line, detail)
        if len(chain) > 1 and any(c in SIM_WORDS for c in chain[:-1]):
            self._tag("reads-live-sim-state", line, detail)

    def _tag(self, tag: str, line: int, detail: str) -> None:
        self.effects.add(tag)
        self.witnesses.setdefault(tag, _Witness(line, detail))

    def _is_self_method(self, attr: str) -> bool:
        """``self.attr`` names a plain method (an access, not a state
        read); properties still count as reads."""
        if not self.fn.is_method:
            return False
        cls = self.project.classes.get(self.fn.class_qualname)
        if cls is None:
            return False
        method = self.project.method_of(cls, attr)
        return method is not None and not method.is_property

    # -- stores --------------------------------------------------------------

    def _store(self, node: ast.stmt) -> None:
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            self._store_target(target)

    def _store_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store_target(elt)
            return
        if isinstance(target, ast.Name):
            return  # rebinding a local
        base = target
        while isinstance(base, (ast.Attribute, ast.Subscript,
                                ast.Starred)):
            base = base.value
        if not isinstance(base, ast.Name):
            return
        root = base.id
        line = getattr(target, "lineno", self.fn.node.lineno)
        if root in ("self", "cls"):
            if self.fn.name in ("__init__", "__post_init__") \
                    and isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name):
                return  # constructors initialize their own object
            self.mutates.add("self")
        elif root in self.params:
            self.mutates.add(root)
        elif root in self.locals:
            pass
        else:
            self._tag("mutates-shared", line,
                      ".".join(dotted_chain(target) or [root]))

    # -- calls ---------------------------------------------------------------

    def _call(self, call: ast.Call) -> None:
        chain = dotted_chain(call.func)
        if chain is not None:
            self._call_io(call, chain)
            if chain[-1] in _MUTATOR_METHODS and len(chain) > 1:
                self._mutate_receiver(chain)
        callee = self.project.resolve_call(self.fn, call)
        if callee is not None and callee.qualname != self.fn.qualname:
            self._fold(call, callee)
            return
        if chain is not None and self._trusted_external(chain):
            return
        self.complete = False

    def _call_io(self, call: ast.Call, chain: List[str]) -> None:
        line = call.lineno
        if len(chain) == 1 and chain[0] in _IO_BUILTINS:
            self._tag("io", line, f"{chain[0]}()")
        elif chain[-1] in _IO_ATTRS:
            self._tag("io", line, ".".join(chain) + "()")
        else:
            table = self.project.imports.get(self.fn.module_name)
            canon = table.modules.get(chain[0]) if table else None
            if canon and canon.split(".")[0] in _IO_MODULES:
                self._tag("io", line, ".".join(chain) + "()")

    def _mutate_receiver(self, chain: List[str]) -> None:
        root = chain[0]
        if root in ("self", "cls"):
            self.mutates.add("self")
        elif root in self.params and len(chain) == 2:
            self.mutates.add(root)

    def _trusted_external(self, chain: List[str]) -> bool:
        root = chain[0]
        if len(chain) == 1 and root in _BUILTIN_NAMES:
            return True
        table = self.project.imports.get(self.fn.module_name)
        if table is None:
            return False
        canon = table.modules.get(root) or table.members.get(root)
        if canon is None:
            return False
        return canon.split(".")[0] in _PURE_MODULES

    def _fold(self, call: ast.Call, callee: FunctionInfo) -> None:
        summary = self.checker.summary(callee)
        if not summary.complete:
            self.complete = False
        self.effects |= summary.effects
        argmap = self._argmap(call, callee)
        if argmap is None:
            self.complete = False
            argmap = {}
        receiver = self._receiver_expr(call, callee)
        for param in sorted(summary.mutates_params):
            if param == "self":
                self._fold_mutation(receiver)
            elif param in argmap:
                self._fold_mutation(argmap[param])
        for param in sorted(summary.param_reads):
            if param in argmap:
                self._fold_reads(self.roots(argmap[param]))
        if summary.self_reads:
            if isinstance(receiver, ast.Name) \
                    and receiver.id in ("self", "cls"):
                self.self_reads |= summary.self_reads
            elif receiver is not None:
                self._fold_reads(self.roots(receiver))
            # a plain-function callee has no receiver; for Class(...)
            # construction the fresh object's state comes from the
            # arguments, which param_reads already covers
        self.global_reads |= summary.global_reads

    def _fold_mutation(self, expr: Optional[ast.expr]) -> None:
        if expr is None:
            return
        for kind, name in sorted(self.roots(expr)):
            if kind == "param":
                self.mutates.add(name)
            elif kind == "self":
                self.mutates.add("self")
            elif kind == "global":
                self._tag("mutates-shared", expr.lineno,
                          f"{name} (via call)")

    def _fold_reads(self, roots: Set[Root]) -> None:
        for kind, name in roots:
            if kind == "param":
                self.param_reads.add(name)
            elif kind == "self":
                self.self_reads.add(name)
            else:
                self.global_reads.add(name)

    def _receiver_expr(self, call: ast.Call,
                       callee: FunctionInfo) -> Optional[ast.expr]:
        if not callee.is_method or callee.name == "__init__":
            return None
        if isinstance(call.func, ast.Attribute):
            return call.func.value
        return None

    def _argmap(self, call: ast.Call, callee: FunctionInfo
                ) -> Optional[Dict[str, ast.expr]]:
        params = callee.param_names()
        if callee.is_method and params and params[0] in ("self", "cls"):
            bound = isinstance(call.func, ast.Attribute) \
                or callee.name == "__init__"
            if bound:
                params = params[1:]
        mapping: Dict[str, ast.expr] = {}
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                return None
            if index < len(params):
                mapping[params[index]] = arg
        for keyword in call.keywords:
            if keyword.arg is None:
                return None  # **kwargs forwarding: unsound, bail
            mapping[keyword.arg] = keyword.value
        return mapping


def scope_eval(checker: EffectChecker, fn: FunctionInfo) -> "_EffectEval":
    """An evaluator with ``fn``'s scope tables (params, locals, aliases)
    built but no effects recorded — :mod:`repro.analysis.cachekey` uses
    its ``roots`` resolution to evaluate expressions in function scope."""
    evaluator = _EffectEval(checker, fn)
    evaluator._collect_locals()
    return evaluator


# ------------------------------------------------------------- hot-alloc


#: modules whose functions sit on the per-fragment/per-pixel path (the DFB
#: tile reducers fold every arriving tile, so they are per-pixel-hot too)
def _in_hot_scope(path: str) -> bool:
    posix = "/" + path.replace("\\", "/")
    return ("/raster/" in posix or "/shading/" in posix
            or posix.endswith("/composition/operators.py")
            or posix.endswith("/composition/dfb.py"))


_NP_CONSTRUCTORS = frozenset({"array", "zeros", "ones", "empty", "full",
                              "eye", "arange"})
_CONTAINER_BUILTINS = frozenset({"list", "dict", "set", "tuple"})


class HotAllocChecker:
    """Flags per-fragment-path allocations in the raster/shading tier."""

    severity = "warning"

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        scope_fns = {qn: fn for qn, fn in self.project.functions.items()
                     if _in_hot_scope(fn.module.path)}
        if not scope_fns:
            return []
        hot = self._hot_set(scope_fns)
        for qualname in sorted(scope_fns):
            fn = scope_fns[qualname]
            self._scan(fn, fn.node, in_loop=False,
                       whole_hot=qualname in hot,
                       reason=hot.get(qualname, ""))
        return sorted(self.findings)

    def _hot_set(self, scope_fns: Dict[str, FunctionInfo]
                 ) -> Dict[str, str]:
        hot: Dict[str, str] = {}
        graph = self.project.call_graph()
        roots = sorted(qn for qn, fn in self.project.functions.items()
                       if fn.name == "fragment_phase")
        seen: Set[str] = set()
        frontier = list(roots)
        while frontier:
            qualname = frontier.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            if qualname in scope_fns and qualname not in hot:
                hot[qualname] = "reachable from fragment_phase"
            frontier.extend(sorted(graph.get(qualname, ())))
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            for call in self._loop_calls(fn.node):
                callee = self.project.resolve_call(fn, call)
                if callee is not None and callee.qualname in scope_fns:
                    hot.setdefault(
                        callee.qualname,
                        f"called per-iteration from {fn.name}()")
        return hot

    def _loop_calls(self, func: ast.AST) -> Iterator[ast.Call]:
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Call):
                            yield sub

    def _scan(self, fn: FunctionInfo, node: ast.AST, in_loop: bool,
              whole_hot: bool, reason: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)) \
                    and child in node.body + node.orelse:
                child_in_loop = True
            self._check_node(fn, child, child_in_loop, whole_hot, reason)
            self._scan(fn, child, child_in_loop, whole_hot, reason)

    def _check_node(self, fn: FunctionInfo, node: ast.AST, in_loop: bool,
                    whole_hot: bool, reason: str) -> None:
        hot_here = in_loop or whole_hot
        why = "inside a loop body" if in_loop else reason
        label: Optional[str] = None
        # outside a loop body, a container literal is only worth flagging
        # when its contents are constant — i.e. actually hoistable
        if isinstance(node, (ast.List, ast.Set)) and node.elts and hot_here \
                and (in_loop or all(_is_constant(e) for e in node.elts)):
            label = "list literal" if isinstance(node, ast.List) \
                else "set literal"
        elif isinstance(node, ast.Dict) and node.keys and hot_here \
                and (in_loop or all(_is_constant(v)
                                    for v in node.keys + node.values
                                    if v is not None)):
            label = "dict literal"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)) and in_loop:
            label = "comprehension"
            why = "inside a loop body"
        elif isinstance(node, ast.Lambda) and hot_here:
            label = "closure (lambda)"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not fn.node and hot_here:
            label = f"closure (nested def {node.name})"
        elif isinstance(node, ast.Call) and hot_here:
            label = self._alloc_call(fn, node)
        if label is None:
            return
        self.findings.append(Finding(
            path=fn.module.path,
            line=getattr(node, "lineno", fn.node.lineno),
            col=getattr(node, "col_offset", 0), rule=RULE_HOT_ALLOC,
            message=f"{label} allocated per call in {fn.name}() "
                    f"({why}); hoist the temporary out of the "
                    f"per-fragment path"))

    def _alloc_call(self, fn: FunctionInfo,
                    call: ast.Call) -> Optional[str]:
        chain = dotted_chain(call.func)
        if chain is None:
            return None
        if len(chain) == 1 and chain[0] in _CONTAINER_BUILTINS:
            return f"{chain[0]}() call"
        if chain[-1] not in _NP_CONSTRUCTORS or len(chain) < 2:
            return None
        table = self.project.imports.get(fn.module_name)
        canon = table.modules.get(chain[0]) if table else None
        if canon is None or canon.split(".")[0] != "numpy":
            return None
        if not all(_is_constant(arg) for arg in call.args):
            return None
        for keyword in call.keywords:
            if keyword.arg != "dtype" and not _is_constant(keyword.value):
                return None
        return f"constant np.{chain[-1]}(...) array"


def _is_constant(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_constant(elt) for elt in node.elts)
    if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)):
        return _is_constant(node.operand)
    return False


# ------------------------------------------------------------ registration


@register_project
class EffectsPass(ProjectRule):
    """Deep pass wrapper exposing the effect checker to the registry."""

    name = RULE_PHASE
    description = ("geometry-phase code reads assignment/fault/live-sim "
                   "state (breaks the phase-split caching invariant)")
    severity = "error"
    extra_rules: Dict[str, str] = {
        RULE_UNDECLARED: ("inferred effects exceed the function's "
                          "`# effect:` declaration"),
    }

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(EffectChecker(project).run())


@register_project
class HotAllocPass(ProjectRule):
    """Deep pass wrapper for the per-fragment allocation lint."""

    name = RULE_HOT_ALLOC
    description = ("container/array allocation or closure creation on a "
                   "per-fragment/per-pixel path (raster/, shading/, "
                   "composition operators)")
    severity = "warning"

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(HotAllocChecker(project).run())
