"""Units/dimension checker for the timing model (deep pass).

Every speedup figure in the paper reduces to arithmetic over a handful of
physical dimensions — cycles, bytes, pixels, triangles, fragments, seconds
— and a single bytes-vs-cycles mix-up in ``timing/costs.py`` or
``timing/interconnect.py`` silently skews all of them. This pass assigns
each expression a *unit* (a signed multiset of base dimensions, so
``bytes/cycle`` is ``{byte: +1, cycle: -1}``) and propagates it:

- **seeded** by a declarative map (:data:`SEED_UNITS`), trailing
  ``# unit: <spec>`` comments on attribute/def lines, and naming
  conventions (``*_cycles`` is cycles, ``frequency_hz`` is hertz =
  cycles/second, ``num_bytes`` is bytes, ...);
- **flow-sensitively** through assignments and arithmetic — multiply and
  divide combine units, add/subtract/compare/max/min require matching
  units;
- **interprocedurally** through the call graph — a call site takes the
  callee's declared or inferred return unit, and concrete argument units
  are checked against the callee's declared parameter units.

Three finding kinds come out, all ``error`` severity:

- ``unit-mismatch`` — adding/comparing incompatible units (the classic
  ``cycles + bytes``), including via ``max``/``min``/``sum``;
- ``unit-return`` — a function whose inferred return unit contradicts its
  declared one (which is how an inverted division surfaces:
  ``bandwidth * frequency`` instead of ``/`` stops being bytes/cycle);
- ``unit-arg`` — passing a concretely-typed value where the callee
  declares a different unit.

Unknown units poison silently: the checker only ever reports when *both*
sides of a judgement are concretely known, so untyped code stays quiet.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from .flow import ClassInfo, FunctionInfo, Project, dotted_chain
from .simlint import Finding, LintModule

#: a concrete unit: sorted ((dimension, exponent), ...); () is dimensionless
Unit = Tuple[Tuple[str, int], ...]

DIMENSIONLESS: Unit = ()


class _Any:
    """Unconstrained scalar (numeric literals, counts): unifies with
    anything, acts as dimensionless in products."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<any>"


#: unconstrained (literals); compatible with every unit
ANY = _Any()
#: no information; poisons every combination (represented as None)
UNKNOWN = None

_UNIT_COMMENT_RE = re.compile(r"#\s*unit:\s*([^#]+?)\s*(?:#|$)")

#: spelling -> base dimension (or composite expansion)
_DIM_ALIASES = {
    "byte": "byte", "bytes": "byte",
    "cycle": "cycle", "cycles": "cycle",
    "pixel": "pixel", "pixels": "pixel", "px": "pixel",
    "triangle": "triangle", "triangles": "triangle", "tri": "triangle",
    "fragment": "fragment", "fragments": "fragment", "frag": "fragment",
    "draw": "draw", "draws": "draw",
    "vertex": "vertex", "vertices": "vertex",
    "second": "second", "seconds": "second", "sec": "second", "s": "second",
}

#: composite words that expand to a full unit
_COMPOSITES = {
    "hertz": (("cycle", 1), ("second", -1)),
    "hz": (("cycle", 1), ("second", -1)),
}


def _combine(unit: Dict[str, int], dim: str, exp: int) -> None:
    new = unit.get(dim, 0) + exp
    if new == 0:
        unit.pop(dim, None)
    else:
        unit[dim] = new


def parse_unit(spec: str) -> Unit:
    """Parse ``"bytes/cycle"``, ``"cycles*bytes/s"``, ``"hertz"``, ``"1"``.

    Grammar: ``numerator[/denominator]`` where each side multiplies words
    with ``*`` or ``·``; ``1`` is dimensionless. Raises ValueError on an
    unknown dimension word.
    """
    spec = spec.strip()
    acc: Dict[str, int] = {}
    for side_index, side in enumerate(spec.split("/")):
        sign = 1 if side_index == 0 else -1
        for word in re.split(r"[*·]", side):
            word = word.strip().lower()
            if word in ("", "1"):
                continue
            if word in _COMPOSITES:
                for dim, exp in _COMPOSITES[word]:
                    _combine(acc, dim, sign * exp)
            elif word in _DIM_ALIASES:
                _combine(acc, _DIM_ALIASES[word], sign)
            else:
                raise ValueError(f"unknown unit dimension {word!r} "
                                 f"in {spec!r}")
    return tuple(sorted(acc.items()))


def format_unit(unit) -> str:
    """Human form of a unit: ``bytes/cycle``, ``1`` for dimensionless."""
    if unit is ANY or unit is UNKNOWN:
        return "?"
    if not unit:
        return "1"
    num = [f"{d}" if e == 1 else f"{d}**{e}"
           for d, e in unit if e > 0]
    den = [f"{d}" if e == -1 else f"{d}**{-e}"
           for d, e in unit if e < 0]
    text = "*".join(num) if num else "1"
    if den:
        text += "/" + "*".join(den)
    return text


# -- unit algebra -------------------------------------------------------------


def mul_units(a, b, invert_b: bool = False):
    if a is UNKNOWN or b is UNKNOWN:
        return UNKNOWN
    if b is ANY:
        return a                 # x * <scalar> keeps x's unit
    if a is ANY:
        if not invert_b:
            return b             # <scalar> * x keeps x's unit
        a = DIMENSIONLESS        # <scalar> / x inverts x's unit
    acc = dict(a)
    for dim, exp in b:
        _combine(acc, dim, -exp if invert_b else exp)
    return tuple(sorted(acc.items()))


def pow_unit(a, exponent: int):
    if a is UNKNOWN:
        return UNKNOWN
    if a is ANY:
        return ANY
    return tuple(sorted((d, e * exponent) for d, e in a))


def additive_join(a, b):
    """Result of ``a + b`` / ``max(a, b)``; (unit, mismatch?) pair."""
    if a is UNKNOWN or b is UNKNOWN:
        return UNKNOWN, False
    if a is ANY:
        return b, False
    if b is ANY:
        return a, False
    if a == b:
        return a, False
    return UNKNOWN, True


def join_units(a, b):
    """Merge units along control-flow joins (no mismatch implied)."""
    if a is ANY:
        return b
    if b is ANY:
        return a
    if a is UNKNOWN or b is UNKNOWN:
        return UNKNOWN
    return a if a == b else UNKNOWN


# -- declared units: seed map, comments, naming conventions -------------------

#: qualname -> unit spec. Function qualnames declare return units;
#: ``qualname.<param>`` declares a parameter; class attribute qualnames
#: declare fields. Prefer in-source ``# unit:`` comments for anything that
#: lives in this repo; the seed map covers per-call-context quantities
#: (e.g. a draw's per-triangle shader cost) that a field comment cannot.
SEED_UNITS: Dict[str, str] = {
    # GPUConfig / LinkConfig / SystemConfig core quantities
    "repro.config.GPUConfig.frequency_hz": "hertz",
    "repro.config.GPUConfig.dram_bandwidth_bytes_per_s": "bytes/s",
    "repro.config.LinkConfig.bandwidth_gb_per_s": "bytes/s",
    "repro.config.LinkConfig.latency_cycles": "cycles",
    # cost-model per-draw shader costs (call-site parameters)
    "repro.timing.costs.CostModel.geometry_cycles.vertex_cost":
        "cycles/triangle",
    "repro.timing.costs.CostModel.projection_cycles.vertex_cost":
        "cycles/triangle",
    "repro.timing.costs.CostModel.fragment_cycles.pixel_cost":
        "cycles/fragment",
    # framebuffer extents are pixel counts
    "repro.framebuffer.framebuffer.Framebuffer.num_pixels": "pixels",
}

#: name suffix -> unit spec, longest match wins
_SUFFIX_UNITS: List[Tuple[str, str]] = [
    ("_bytes_per_s", "bytes/s"),
    ("_bytes_per_sec", "bytes/s"),
    ("_gb_per_s", "bytes/s"),
    ("_bytes_per_cycle", "bytes/cycle"),
    ("_bytes_per_pixel", "bytes/pixel"),
    ("_bytes", "bytes"),
    ("_cycles", "cycles"),
    ("_pixels", "pixels"),
    ("_triangles", "triangles"),
    ("_fragments", "fragments"),
    ("_seconds", "s"),
    ("_hz", "hertz"),
]

#: exact-name conventions (beat suffixes; used for params and locals too)
_EXACT_UNITS: Dict[str, str] = {
    "cycles": "cycles",
    "num_bytes": "bytes",
    "num_cycles": "cycles",
    "num_pixels": "pixels",
    "num_triangles": "triangles",
    "num_fragments": "fragments",
    "num_draws": "draws",
    "pixels": "pixels",
    "triangles": "triangles",
    "fragments": "fragments",
    "fragments_shaded": "fragments",
    "fragments_generated": "fragments",
    "frequency_hz": "hertz",
    # wire bytes per *screen* pixel (not a plain byte count)
    "pixel_bytes": "bytes/pixel",
    "effective_pixel_bytes": "bytes/pixel",
}

#: names that look unit-suffixed but are not quantities of that unit
_CONVENTION_EXEMPT = frozenset({
    "to_bytes", "from_bytes",
})


def unit_from_name(name: str):
    """Unit implied by a naming convention, or UNKNOWN."""
    if name in _CONVENTION_EXEMPT:
        return UNKNOWN
    if name in _EXACT_UNITS:
        return parse_unit(_EXACT_UNITS[name])
    for suffix, spec in _SUFFIX_UNITS:
        if name.endswith(suffix):
            return parse_unit(spec)
    return UNKNOWN


def unit_from_comment(line_text: str):
    """Unit declared by a trailing ``# unit: <spec>`` comment, or UNKNOWN."""
    match = _UNIT_COMMENT_RE.search(line_text)
    if match is None:
        return UNKNOWN
    try:
        return parse_unit(match.group(1))
    except ValueError:
        return UNKNOWN


# -- the checker --------------------------------------------------------------

#: builtins transparent to units: unit of their (first) argument
_PASSTHROUGH_BUILTINS = frozenset({"abs", "float", "int", "round"})
#: builtins requiring matching argument units (additive semantics)
_ADDITIVE_BUILTINS = frozenset({"max", "min", "sum", "sorted"})
#: builtins returning unconstrained scalars
_SCALAR_BUILTINS = frozenset({"len", "bool", "id", "hash", "ord", "range"})


class UnitChecker:
    """Runs the units pass over a :class:`~repro.analysis.flow.Project`."""

    RULE_MISMATCH = "unit-mismatch"
    RULE_RETURN = "unit-return"
    RULE_ARG = "unit-arg"
    severity = "error"

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: List[Finding] = []
        self._return_units: Dict[str, object] = {}
        self._attr_units: Dict[Tuple[str, str], object] = {}

    def run(self) -> List[Finding]:
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            _FunctionEval(self, fn, report=True).run()
        return self.findings

    # -- declared units ------------------------------------------------------

    def declared_return_unit(self, fn: FunctionInfo):
        comment = self.project.line_comment(fn.module, fn.node.lineno)
        unit = unit_from_comment(comment)
        if unit is not UNKNOWN:
            return unit
        if fn.qualname in SEED_UNITS:
            return parse_unit(SEED_UNITS[fn.qualname])
        return unit_from_name(fn.name)

    def declared_param_unit(self, fn: FunctionInfo, param: str):
        key = f"{fn.qualname}.{param}"
        if key in SEED_UNITS:
            return parse_unit(SEED_UNITS[key])
        return unit_from_name(param)

    def attr_unit(self, cls: ClassInfo, attr: str):
        """Unit of a class attribute: ``# unit:`` comment on the field
        line, the seed map, naming conventions, then inference over
        ``self.attr = ...`` assignments (joined across sites)."""
        key = (cls.qualname, attr)
        if key in self._attr_units:
            return self._attr_units[key]
        self._attr_units[key] = UNKNOWN  # recursion guard
        unit = UNKNOWN
        line = cls.attr_lines.get(attr)
        if line is not None:
            unit = unit_from_comment(
                self.project.line_comment(cls.module, line))
        if unit is UNKNOWN:
            seed = SEED_UNITS.get(f"{cls.qualname}.{attr}")
            if seed is not None:
                unit = parse_unit(seed)
        if unit is UNKNOWN:
            unit = unit_from_name(attr)
        if unit is UNKNOWN:
            prop = self.project.method_of(cls, attr)
            if prop is not None and prop.is_property:
                unit = self.return_unit(prop)
        if unit is UNKNOWN:
            unit = self._infer_attr_unit(cls, attr)
        self._attr_units[key] = unit
        return unit

    def _infer_attr_unit(self, cls: ClassInfo, attr: str):
        """Join of the units assigned by every ``self.attr = expr`` site."""
        unit = ANY
        seen = False
        for method in cls.methods.values():
            evaluator = _FunctionEval(self, method, report=False)
            for node in ast.walk(method.node):
                value = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) \
                        and node.value is not None:
                    target, value = node.target, node.value
                else:
                    continue
                if not (isinstance(target, ast.Attribute)
                        and target.attr == attr
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                if isinstance(value, ast.Constant) and value.value is None:
                    continue  # None placeholder never defines the unit
                seen = True
                unit = join_units(unit, evaluator.eval(value))
        return unit if seen else UNKNOWN

    # -- inferred return units ----------------------------------------------

    def return_unit(self, fn: FunctionInfo):
        """Declared return unit if any, else memoized inferred unit."""
        declared = self.declared_return_unit(fn)
        if declared is not UNKNOWN:
            return declared
        if fn.qualname in self._return_units:
            return self._return_units[fn.qualname]
        self._return_units[fn.qualname] = UNKNOWN  # recursion guard
        inferred = _FunctionEval(self, fn, report=False).run()
        self._return_units[fn.qualname] = inferred
        return inferred

    # -- reporting -----------------------------------------------------------

    def report(self, module: LintModule, node: ast.AST, rule: str,
               message: str) -> None:
        self.findings.append(Finding(
            path=module.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), rule=rule, message=message,
            severity=self.severity))


class _FunctionEval:
    """Single-pass, flow-sensitive unit evaluator for one function body."""

    def __init__(self, checker: UnitChecker, fn: FunctionInfo,
                 report: bool) -> None:
        self.checker = checker
        self.project = checker.project
        self.fn = fn
        self.reporting = report
        self.env: Dict[str, object] = {}
        self.types: Dict[str, Optional[ClassInfo]] = {}
        self.return_units: List[object] = []
        self.own_class = (self.project.classes.get(fn.class_qualname)
                          if fn.class_qualname else None)
        for param in fn.param_names():
            self.env[param] = checker.declared_param_unit(fn, param)
            annotation = fn.param_annotation(param)
            self.types[param] = self.project.class_of_annotation(
                fn.module_name, annotation)
        self._is_generator = any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in ast.walk(fn.node))

    # -- driver --------------------------------------------------------------

    def run(self):
        self.exec_block(self.fn.node.body)
        if not self.return_units:
            return ANY
        result = self.return_units[0]
        for unit in self.return_units[1:]:
            result = join_units(result, unit)
        return result

    # -- statements ----------------------------------------------------------

    def exec_block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            unit = self.eval(stmt.value)
            cast = self._stmt_cast(stmt)
            for target in stmt.targets:
                self._bind(target, unit, stmt.value, cast=cast)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value), stmt.value,
                           cast=self._stmt_cast(stmt))
        elif isinstance(stmt, ast.AugAssign):
            self._exec_augassign(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self.eval(stmt.value)
                self.return_units.append(unit)
                self._check_return(stmt, unit)
            else:
                self.return_units.append(ANY)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter)
            self._bind(stmt.target, UNKNOWN, stmt.iter)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, UNKNOWN,
                               item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            branches = [stmt.body]
            branches.extend(h.body for h in stmt.handlers)
            if stmt.orelse:
                branches.append(stmt.orelse)
            self._exec_branches(branches)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self.eval(value)
        # nested defs/classes, pass, break, continue, del: no unit flow

    def _exec_branches(self, branches: List[List[ast.stmt]]) -> None:
        """Execute alternative branches on copies and join the envs."""
        base_env, base_types = dict(self.env), dict(self.types)
        joined: Optional[Dict[str, object]] = None
        joined_types: Optional[Dict[str, Optional[ClassInfo]]] = None
        for body in branches:
            self.env, self.types = dict(base_env), dict(base_types)
            self.exec_block(body)
            if joined is None:
                joined, joined_types = self.env, self.types
            else:
                keys = set(joined) | set(self.env)
                joined = {
                    k: join_units(joined.get(k, UNKNOWN),
                                  self.env.get(k, UNKNOWN))
                    for k in keys}
                type_keys = set(joined_types) | set(self.types)
                joined_types = {
                    k: (joined_types.get(k)
                        if joined_types.get(k) is self.types.get(k)
                        else None)
                    for k in sorted(type_keys)}
        # a branch may not execute at all: join with the entry env
        keys = set(base_env) | set(joined or {})
        self.env = {k: join_units(base_env.get(k, UNKNOWN),
                                  (joined or {}).get(k, UNKNOWN))
                    for k in keys}
        type_keys = set(base_types) | set(joined_types or {})
        self.types = {k: (base_types.get(k)
                          if base_types.get(k) is (joined_types or {}).get(k)
                          else None)
                      for k in sorted(type_keys)}

    def _stmt_cast(self, stmt: ast.stmt):
        """Unit asserted by a trailing ``# unit:`` comment on an
        assignment — a cast: it overrides inference and skips the
        mismatch check for that statement."""
        return unit_from_comment(
            self.project.line_comment(self.fn.module, stmt.lineno))

    def _bind(self, target: ast.expr, unit, value: ast.expr,
              cast=UNKNOWN) -> None:
        if isinstance(target, ast.Name):
            if cast is not UNKNOWN:
                self.env[target.id] = cast
                self.types[target.id] = self.type_of(value)
                return
            declared = unit_from_name(target.id)
            self._check_assign(target, declared, unit)
            # conventions beat inference so downstream reads stay typed
            self.env[target.id] = declared if declared is not UNKNOWN \
                else unit
            self.types[target.id] = self.type_of(value)
        elif isinstance(target, ast.Attribute):
            if cast is not UNKNOWN:
                return
            declared = self._attr_target_unit(target)
            self._check_assign(target, declared, unit)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, UNKNOWN, value)
        elif isinstance(target, ast.Subscript):
            if cast is not UNKNOWN:
                return
            declared = self.eval_no_report(target.value)
            self._check_assign(target, declared, unit)

    def _exec_augassign(self, stmt: ast.AugAssign) -> None:
        target_unit = self.eval_no_report(stmt.target)
        value_unit = self.eval(stmt.value)
        if isinstance(stmt.op, (ast.Add, ast.Sub)):
            unit, mismatch = additive_join(target_unit, value_unit)
            if mismatch:
                self._report_mismatch(stmt, "augmented assignment",
                                      target_unit, value_unit)
        elif isinstance(stmt.op, ast.Mult):
            unit = mul_units(target_unit, value_unit)
        elif isinstance(stmt.op, (ast.Div, ast.FloorDiv)):
            unit = mul_units(target_unit, value_unit, invert_b=True)
        else:
            unit = UNKNOWN
        if isinstance(stmt.target, ast.Name):
            self.env[stmt.target.id] = unit

    def _attr_target_unit(self, target: ast.Attribute):
        owner = self.type_of(target.value)
        if owner is None:
            return UNKNOWN
        return self.checker.attr_unit(owner, target.attr)

    def _check_assign(self, target: ast.expr, declared, value_unit) -> None:
        if declared is UNKNOWN or declared is ANY:
            return
        if value_unit is UNKNOWN or value_unit is ANY:
            return
        if declared != value_unit:
            self._report_mismatch(target, "assignment", declared,
                                  value_unit)

    def _check_return(self, stmt: ast.Return, unit) -> None:
        if self._is_generator:
            return
        declared = self.checker.declared_return_unit(self.fn)
        if declared is UNKNOWN or unit is UNKNOWN or unit is ANY:
            return
        if declared != unit:
            self._report(
                stmt, UnitChecker.RULE_RETURN,
                f"`{self.fn.name}` declares unit "
                f"`{format_unit(declared)}` but this return evaluates to "
                f"`{format_unit(unit)}`")

    # -- expressions ---------------------------------------------------------

    def eval_no_report(self, expr: ast.expr):
        """Evaluate without emitting findings (re-reads of checked exprs)."""
        reporting, self.reporting = self.reporting, False
        try:
            return self.eval(expr)
        finally:
            self.reporting = reporting

    def eval(self, expr: ast.expr):
        if isinstance(expr, ast.Constant):
            return ANY
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            symbol = self.project.resolve_name(self.fn.module_name, expr.id)
            if symbol in self.project.constants:
                return ANY
            return UNKNOWN
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand)
        if isinstance(expr, ast.Compare):
            self._eval_compare(expr)
            return ANY
        if isinstance(expr, ast.BoolOp):
            result = ANY
            for value in expr.values:
                result = join_units(result, self.eval(value))
            return result
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test)
            return join_units(self.eval(expr.body), self.eval(expr.orelse))
        if isinstance(expr, ast.Subscript):
            self.eval(expr.slice)
            return self.eval(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self.eval(element)
            return UNKNOWN
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    self.eval(value)
            return UNKNOWN
        if isinstance(expr, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp)):
            return UNKNOWN
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            if getattr(expr, "value", None) is not None:
                self.eval(expr.value)
            return UNKNOWN
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value)
        return UNKNOWN

    def _eval_attribute(self, expr: ast.Attribute):
        owner = self.type_of(expr.value)
        if owner is not None:
            return self.checker.attr_unit(owner, expr.attr)
        chain = dotted_chain(expr)
        if chain is not None:
            symbol = self.project.resolve_chain(self.fn.module_name, chain)
            if symbol is not None:
                resolved = self.project._chase(symbol)
                if resolved in self.project.constants:
                    return ANY
        self.eval(expr.value)
        return UNKNOWN

    def _eval_binop(self, expr: ast.BinOp):
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            unit, mismatch = additive_join(left, right)
            if mismatch:
                op = "add" if isinstance(expr.op, ast.Add) else "subtract"
                self._report_mismatch(expr, op, left, right)
            return unit
        if isinstance(expr.op, ast.Mult):
            return mul_units(left, right)
        if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
            return mul_units(left, right, invert_b=True)
        if isinstance(expr.op, ast.Mod):
            return left
        if isinstance(expr.op, ast.Pow):
            if left is ANY:
                return ANY       # scalar ** anything stays scalar
            if isinstance(expr.right, ast.Constant) \
                    and isinstance(expr.right.value, int):
                return pow_unit(left, expr.right.value)
            return UNKNOWN
        return UNKNOWN

    def _eval_compare(self, expr: ast.Compare) -> None:
        units = [self.eval(expr.left)]
        units.extend(self.eval(c) for c in expr.comparators)
        for op, (a, b) in zip(expr.ops, zip(units, units[1:])):
            if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                continue
            _, mismatch = additive_join(a, b)
            if mismatch:
                self._report_mismatch(expr, "compare", a, b)

    def _eval_call(self, expr: ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            builtin = self._eval_builtin(func.id, expr)
            if builtin is not NotImplemented:
                return builtin
        callee = self._resolve_call(expr)
        for keyword in expr.keywords:
            self.eval(keyword.value)
        if callee is None:
            for arg in expr.args:
                self.eval(arg)
            return UNKNOWN
        self._check_args(expr, callee)
        return self.checker.return_unit(callee)

    def _eval_builtin(self, name: str, expr: ast.Call):
        if name in _SCALAR_BUILTINS:
            for arg in expr.args:
                self.eval(arg)
            return ANY
        if name in _PASSTHROUGH_BUILTINS:
            return self.eval(expr.args[0]) if expr.args else ANY
        if name in _ADDITIVE_BUILTINS:
            result = ANY
            for arg in expr.args:
                unit = self.eval(arg)
                result, mismatch = additive_join(result, unit)
                if mismatch:
                    self._report_mismatch(
                        expr, name, *self._first_two_concrete(expr))
                    return UNKNOWN
            return result
        return NotImplemented

    def _first_two_concrete(self, expr: ast.Call):
        concrete = []
        for arg in expr.args:
            unit = self.eval_no_report(arg)
            if unit is not ANY and unit is not UNKNOWN:
                concrete.append(unit)
        while len(concrete) < 2:
            concrete.append(UNKNOWN)
        return concrete[0], concrete[1]

    def _resolve_call(self, expr: ast.Call) -> Optional[FunctionInfo]:
        chain = dotted_chain(expr.func)
        if chain is not None and len(chain) >= 2:
            # calls through locally-typed objects: plan.backoff_cycles(...)
            owner = self.type_of(
                expr.func.value if isinstance(expr.func, ast.Attribute)
                else None)
            if owner is not None:
                return self.project.method_of(owner, chain[-1])
        return self.project.resolve_call(self.fn, expr)

    def _check_args(self, expr: ast.Call, callee: FunctionInfo) -> None:
        params = callee.param_names()
        if params and params[0] in ("self", "cls") \
                and callee.is_method:
            params = params[1:]
        for position, arg in enumerate(expr.args):
            if isinstance(arg, ast.Starred) or position >= len(params):
                break
            self._check_one_arg(expr, callee, params[position], arg)
        for keyword in expr.keywords:
            if keyword.arg is not None and keyword.arg in params:
                self._check_one_arg(expr, callee, keyword.arg,
                                    keyword.value)

    def _check_one_arg(self, call: ast.Call, callee: FunctionInfo,
                       param: str, arg: ast.expr) -> None:
        declared = self.checker.declared_param_unit(callee, param)
        if declared is UNKNOWN:
            self.eval(arg)
            return
        unit = self.eval(arg)
        if unit is UNKNOWN or unit is ANY:
            return
        if unit != declared:
            self._report(
                call, UnitChecker.RULE_ARG,
                f"argument `{param}` of `{callee.name}` expects "
                f"`{format_unit(declared)}` but receives "
                f"`{format_unit(unit)}`")

    # -- types ---------------------------------------------------------------

    def type_of(self, expr: Optional[ast.expr]) -> Optional[ClassInfo]:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.own_class
            if expr.id in self.types:
                return self.types[expr.id]
            return self.project.lookup_class(
                self.project.resolve_name(self.fn.module_name, expr.id))
        if isinstance(expr, ast.Attribute):
            owner = self.type_of(expr.value)
            if owner is None:
                return None
            return self.project.attr_class(owner, expr.attr)
        if isinstance(expr, ast.Call):
            chain = dotted_chain(expr.func)
            if chain is not None:
                symbol = self.project.resolve_chain(
                    self.fn.module_name, chain)
                cls = self.project.lookup_class(symbol)
                if cls is not None:
                    return cls
            return None
        if isinstance(expr, ast.Subscript):
            container = expr.value
            if isinstance(container, ast.Attribute):
                owner = self.type_of(container.value)
                if owner is not None:
                    annotation = owner.attr_annotations.get(container.attr)
                    return self._elem_class(annotation)
            return None
        return None

    def _elem_class(self, annotation: Optional[ast.expr]
                    ) -> Optional[ClassInfo]:
        """Element class of List[X] / Dict[K, V] / Sequence[X]."""
        if not isinstance(annotation, ast.Subscript):
            return None
        base = annotation.value
        if not isinstance(base, ast.Name):
            return None
        inner = annotation.slice
        if base.id in ("List", "Sequence", "Iterable", "Tuple", "list",
                       "tuple", "Set", "FrozenSet"):
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return self.project.class_of_annotation(
                self.fn.module_name, inner)
        if base.id in ("Dict", "Mapping", "dict", "DefaultDict"):
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                return self.project.class_of_annotation(
                    self.fn.module_name, inner.elts[1])
        return None

    # -- reporting -----------------------------------------------------------

    def _report_mismatch(self, node: ast.AST, operation: str,
                         left, right) -> None:
        self._report(
            node, UnitChecker.RULE_MISMATCH,
            f"{operation} mixes incompatible units "
            f"`{format_unit(left)}` and `{format_unit(right)}`")

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if self.reporting:
            self.checker.report(self.fn.module, node, rule, message)


from .rules import ProjectRule, register_project


@register_project
class UnitsPass(ProjectRule):
    """Deep pass wrapper exposing the units checker to the registry."""

    name = "unit-mismatch"
    description = ("add/compare/sum mixes incompatible units "
                   "(e.g. cycles + bytes)")
    severity = "error"
    extra_rules = {
        "unit-return": ("function's inferred return unit contradicts its "
                        "declared unit (name convention, seed map, or "
                        "`# unit:` comment)"),
        "unit-arg": ("argument unit contradicts the callee's declared "
                     "parameter unit"),
    }

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(UnitChecker(project).run())
