"""Static and dynamic determinism analysis for the simulator.

Two halves, both guarding the same invariant — that a simulation run is a
pure function of its inputs and seeds (which is what makes sweep resume,
fail-stop recovery, and every speedup figure trustworthy):

- **simlint** (:mod:`repro.analysis.simlint`, :mod:`repro.analysis.rules`) —
  an AST-based lint over Python sources with simulator-specific rules:
  unseeded global RNG use, wall-clock reads, iteration over unordered sets,
  mutable default arguments, sim processes yielding non-Event values, and
  broad exception handlers that can swallow the kernel's process-kill
  exception. ``python -m repro lint`` drives it; ``# simlint:
  disable=<rule>`` suppresses a finding on its line.

- **race sanitizer** (:mod:`repro.analysis.sanitizer`) — opt-in runtime
  instrumentation of the DES kernel (``Simulator(sanitize=True)``, CLI
  ``--sanitize``) that records per-cycle read/write sets on shared
  resources and flags same-cycle write-write and read-write conflicts
  between distinct processes.

The **deep** layer (``python -m repro lint --deep``) adds project-wide
passes on a shared symbol table / call graph
(:mod:`repro.analysis.flow`): a units/dimension checker for the timing
model (:mod:`repro.analysis.units`), a nondeterminism taint pass
(:mod:`repro.analysis.taint`), a resource-protocol / deadlock analyzer
for the sim kernel (:mod:`repro.analysis.protocol`), an
error-contract checker over the exception taxonomy and exit-code
registry (:mod:`repro.analysis.contract`), an interprocedural
effect/purity inference guarding the geometry/fragment phase split
plus a per-fragment-path allocation lint
(:mod:`repro.analysis.effects`), and a cache-key soundness check over
every ArtifactStore ``cached``/``store_key`` site
(:mod:`repro.analysis.cachekey`) — with a JSON baseline
workflow (:mod:`repro.analysis.baseline`) for incremental adoption and
``--changed`` scoping (:mod:`repro.analysis.scope`) to keep the deep
pass fast on large trees.
"""

from .baseline import (filter_baselined, finding_key, load_baseline,
                       save_baseline)
from .cachekey import CacheKeyChecker
from .contract import ContractChecker
from .effects import EffectChecker, EffectSummary, HotAllocChecker
from .flow import ClassInfo, FunctionInfo, Project
from .protocol import ProtocolChecker
from .rules import (PROJECT_RULES, RULES, ProjectRule, Rule,
                    all_rule_descriptions, default_project_rules,
                    default_rules, register, register_project)
from .sanitizer import (ACCESS_ARBITRATED, ACCESS_READ, ACCESS_WRITE,
                        CONFLICT_RW, CONFLICT_WW, Conflict, RaceSanitizer)
from .simlint import (SEVERITIES, Finding, lint_file, lint_paths,
                      lint_project, lint_source)
from .reporters import render_json, render_text
from .scope import changed_scope, expand_with_dependents
from .taint import TaintChecker
from .units import UnitChecker, format_unit, parse_unit

__all__ = [
    "ACCESS_ARBITRATED",
    "ACCESS_READ",
    "ACCESS_WRITE",
    "CONFLICT_RW",
    "CONFLICT_WW",
    "CacheKeyChecker",
    "ClassInfo",
    "Conflict",
    "ContractChecker",
    "EffectChecker",
    "EffectSummary",
    "Finding",
    "FunctionInfo",
    "HotAllocChecker",
    "PROJECT_RULES",
    "Project",
    "ProjectRule",
    "ProtocolChecker",
    "RULES",
    "RaceSanitizer",
    "Rule",
    "SEVERITIES",
    "TaintChecker",
    "UnitChecker",
    "all_rule_descriptions",
    "changed_scope",
    "default_project_rules",
    "expand_with_dependents",
    "default_rules",
    "filter_baselined",
    "finding_key",
    "format_unit",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "parse_unit",
    "register",
    "register_project",
    "render_json",
    "render_text",
    "save_baseline",
]
