"""Static and dynamic determinism analysis for the simulator.

Two halves, both guarding the same invariant — that a simulation run is a
pure function of its inputs and seeds (which is what makes sweep resume,
fail-stop recovery, and every speedup figure trustworthy):

- **simlint** (:mod:`repro.analysis.simlint`, :mod:`repro.analysis.rules`) —
  an AST-based lint over Python sources with simulator-specific rules:
  unseeded global RNG use, wall-clock reads, iteration over unordered sets,
  mutable default arguments, sim processes yielding non-Event values, and
  broad exception handlers that can swallow the kernel's process-kill
  exception. ``python -m repro lint`` drives it; ``# simlint:
  disable=<rule>`` suppresses a finding on its line.

- **race sanitizer** (:mod:`repro.analysis.sanitizer`) — opt-in runtime
  instrumentation of the DES kernel (``Simulator(sanitize=True)``, CLI
  ``--sanitize``) that records per-cycle read/write sets on shared
  resources and flags same-cycle write-write and read-write conflicts
  between distinct processes.
"""

from .rules import RULES, Rule, default_rules, register
from .sanitizer import (ACCESS_ARBITRATED, ACCESS_READ, ACCESS_WRITE,
                        CONFLICT_RW, CONFLICT_WW, Conflict, RaceSanitizer)
from .simlint import Finding, lint_file, lint_paths, lint_source
from .reporters import render_json, render_text

__all__ = [
    "ACCESS_ARBITRATED",
    "ACCESS_READ",
    "ACCESS_WRITE",
    "CONFLICT_RW",
    "CONFLICT_WW",
    "Conflict",
    "Finding",
    "RULES",
    "RaceSanitizer",
    "Rule",
    "default_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
]
