"""Error-contract checker (deep).

The CLI's contract with callers is the pair (typed exception taxonomy,
exit-code ladder): every failure the library raises on purpose derives
from ``ReproError`` (:mod:`repro.errors`), and ``main()`` maps each
subclass to a deterministic exit code through the ``EXIT_CODES``
registry. This pass rebuilds that contract from the *sources* — the
class hierarchy, the registry constant, and the documented exit-code
table — and flags the ways it decays:

``contract-unmapped``
    A ``ReproError`` subclass that only matches the generic catch-all
    ladder entry and is not named (directly or via an ancestor) in the
    ``GENERIC_EXIT`` allowlist next to the registry. Every typed failure
    should either have a deliberate exit code or a recorded decision
    that the generic code is fine.

``contract-collision``
    Two ladder entries resolving to the same exit code, or an entry that
    can never match because an earlier entry's class is a superclass
    (the isinstance ladder is ordered most-specific-first).

``contract-swallowed``
    An ``except`` clause catching a taxonomy class (or bare
    ``Exception``, which swallows the whole taxonomy) whose body is
    effectively empty — no re-raise, no typed handling, just
    ``pass``/``continue``/``return``. Handlers that *do* something with
    the error (log it, mark a cell FAILED, map it to a result) are not
    flagged.

``contract-raise-generic``
    A ``raise Exception(...)`` / ``raise BaseException(...)`` in a tree
    that defines the taxonomy: untyped failures bypass the exit-code
    contract entirely.

``contract-undocumented``
    A module documenting the exit codes (a docstring with an exit-code
    section heading) that does not mention a code the registry maps.

All checks are keyed off the taxonomy root being literally named
``ReproError``; a project without one (e.g. an unrelated lint fixture
tree) produces no contract findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .flow import ClassInfo, Project, dotted_chain
from .rules import ProjectRule, register_project
from .simlint import Finding

RULE_UNMAPPED = "contract-unmapped"
RULE_COLLISION = "contract-collision"
RULE_SWALLOWED = "contract-swallowed"
RULE_GENERIC = "contract-raise-generic"
RULE_UNDOCUMENTED = "contract-undocumented"

#: the taxonomy root class name and the registry constant names
ROOT_NAME = "ReproError"
REGISTRY_NAME = "EXIT_CODES"
ALLOWLIST_NAME = "GENERIC_EXIT"
_DOC_SECTION = "Exit codes"


@dataclass
class _Entry:
    """One resolved ladder entry of an ``EXIT_CODES`` registry."""

    class_qualname: str
    class_name: str
    code: Optional[int]
    node: ast.expr


@dataclass
class _Taxonomy:
    """The ``ReproError`` hierarchy as found in the project."""

    roots: Set[str] = field(default_factory=set)
    members: Dict[str, ClassInfo] = field(default_factory=dict)
    parents: Dict[str, Set[str]] = field(default_factory=dict)

    def ancestors(self, qualname: str) -> Set[str]:
        out: Set[str] = set()
        frontier = [qualname]
        while frontier:
            node = frontier.pop()
            for parent in self.parents.get(node, ()):
                if parent not in out:
                    out.add(parent)
                    frontier.append(parent)
        return out

    def is_ancestor(self, ancestor: str, descendant: str) -> bool:
        return ancestor == descendant \
            or ancestor in self.ancestors(descendant)


class ContractChecker:
    """Runs the error-contract pass over a project."""

    severity = "error"

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        taxonomy = self._build_taxonomy()
        if not taxonomy.roots:
            return []
        registries = self._find_registries()
        for module_qual, node in registries:
            entries = self._resolve_entries(module_qual, node, taxonomy)
            self._check_collisions(module_qual, node, entries, taxonomy)
            self._check_unmapped(module_qual, entries, taxonomy)
            self._check_documented(entries)
        self._check_handlers_and_raises(taxonomy)
        return sorted(self.findings)

    def report(self, path: str, node: ast.AST, rule: str,
               message: str) -> None:
        finding = Finding(
            path=path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), rule=rule,
            message=message, severity=self.severity)
        if finding not in self.findings:
            self.findings.append(finding)

    # -- taxonomy ------------------------------------------------------------

    def _build_taxonomy(self) -> _Taxonomy:
        taxonomy = _Taxonomy()
        for qualname, info in self.project.classes.items():
            if info.name == ROOT_NAME:
                taxonomy.roots.add(qualname)
                taxonomy.members[qualname] = info
        by_name: Dict[str, str] = {
            info.name: qualname
            for qualname, info in sorted(self.project.classes.items())}
        grew = True
        while grew:
            grew = False
            for qualname, info in sorted(self.project.classes.items()):
                if qualname in taxonomy.members:
                    continue
                parents = set()
                for base in info.base_exprs:
                    base_qual = self._class_ref(
                        info.module_name, base, by_name)
                    if base_qual in taxonomy.members:
                        parents.add(base_qual)
                if parents:
                    taxonomy.members[qualname] = info
                    taxonomy.parents[qualname] = parents
                    grew = True
        return taxonomy

    def _class_ref(self, module_name: str, expr: ast.expr,
                   by_name: Dict[str, str]) -> Optional[str]:
        """Resolve a class-reference expression to a project qualname."""
        chain = dotted_chain(expr)
        if chain is None:
            return None
        resolved = self.project.resolve_chain(module_name, chain)
        info = self.project.lookup_class(resolved)
        if info is not None:
            return info.qualname
        # fixture fallback: an unimported bare name matching a known class
        if len(chain) == 1:
            return by_name.get(chain[0])
        return by_name.get(chain[-1])

    # -- the EXIT_CODES registry ---------------------------------------------

    def _find_registries(self) -> List[Tuple[str, ast.expr]]:
        out = []
        for qualname, node in sorted(self.project.constants.items()):
            if qualname.rsplit(".", 1)[-1] == REGISTRY_NAME \
                    and isinstance(node, (ast.Tuple, ast.List)):
                out.append((qualname.rsplit(".", 1)[0], node))
        return out

    def _resolve_entries(self, module_qual: str, node: ast.expr,
                         taxonomy: _Taxonomy) -> List[_Entry]:
        by_name = {info.name: qualname
                   for qualname, info in sorted(taxonomy.members.items())}
        entries: List[_Entry] = []
        for element in node.elts:
            if not isinstance(element, (ast.Tuple, ast.List)) \
                    or len(element.elts) != 2:
                continue
            class_expr, code_expr = element.elts
            class_qual = self._class_ref(module_qual, class_expr, by_name)
            if class_qual is None or class_qual not in taxonomy.members:
                continue
            entries.append(_Entry(
                class_qualname=class_qual,
                class_name=taxonomy.members[class_qual].name,
                code=self._int_value(module_qual, code_expr),
                node=element))
        return entries

    def _int_value(self, module_qual: str,
                   expr: ast.expr) -> Optional[int]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            return expr.value
        if isinstance(expr, ast.Name):
            constant = self.project.constants.get(
                f"{module_qual}.{expr.id}")
            if constant is None:
                resolved = self.project.resolve_name(module_qual, expr.id)
                if resolved is not None:
                    constant = self.project.constants.get(resolved)
            if isinstance(constant, ast.Constant) \
                    and isinstance(constant.value, int):
                return constant.value
        return None

    def _module_path(self, module_qual: str) -> str:
        module = self.project.modules.get(module_qual)
        return module.path if module is not None else "<unknown>"

    # -- mapping checks ------------------------------------------------------

    def _check_collisions(self, module_qual: str, node: ast.expr,
                          entries: List[_Entry],
                          taxonomy: _Taxonomy) -> None:
        path = self._module_path(module_qual)
        seen_codes: Dict[int, _Entry] = {}
        for entry in entries:
            if entry.code is None:
                continue
            earlier = seen_codes.get(entry.code)
            if earlier is not None:
                self.report(
                    path, entry.node, RULE_COLLISION,
                    f"exit code {entry.code} is assigned to both "
                    f"{earlier.class_name} and {entry.class_name}")
            else:
                seen_codes[entry.code] = entry
        for position, entry in enumerate(entries):
            for earlier in entries[:position]:
                if taxonomy.is_ancestor(earlier.class_qualname,
                                        entry.class_qualname):
                    self.report(
                        path, entry.node, RULE_COLLISION,
                        f"ladder entry {entry.class_name} can never "
                        f"match: {earlier.class_name} earlier in the "
                        "ladder already catches it (most-specific-first "
                        "ordering violated)")
                    break

    def _check_unmapped(self, module_qual: str, entries: List[_Entry],
                        taxonomy: _Taxonomy) -> None:
        allow = self._allowlist(module_qual)
        specific = {entry.class_qualname for entry in entries
                    if entry.class_qualname not in taxonomy.roots}
        for qualname in sorted(taxonomy.members):
            if qualname in taxonomy.roots:
                continue
            info = taxonomy.members[qualname]
            lineage = {qualname} | taxonomy.ancestors(qualname)
            if lineage & specific:
                continue
            names = {taxonomy.members[q].name
                     for q in lineage if q not in taxonomy.roots}
            if names & allow:
                continue
            self.report(
                info.module.path, info.node, RULE_UNMAPPED,
                f"error class {info.name} maps only to the generic "
                "catch-all exit code; add an EXIT_CODES ladder entry or "
                f"record it in {ALLOWLIST_NAME}")

    def _allowlist(self, module_qual: str) -> Set[str]:
        node = self.project.constants.get(
            f"{module_qual}.{ALLOWLIST_NAME}")
        if node is None:
            return set()
        if isinstance(node, ast.Call) and node.args:
            node = node.args[0]
        names: Set[str] = set()
        for element in getattr(node, "elts", ()):
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                names.add(element.value)
            elif isinstance(element, ast.Name):
                names.add(element.id)
        return names

    def _check_documented(self, entries: List[_Entry]) -> None:
        for module_qual in sorted(self.project.modules):
            module = self.project.modules[module_qual]
            docstring = ast.get_docstring(module.tree)
            if not docstring or _DOC_SECTION not in docstring:
                continue
            for entry in entries:
                if entry.code is None:
                    continue
                if not re.search(rf"(?<!\d){entry.code}(?!\d)",
                                 docstring):
                    self.report(
                        module.path, module.tree, RULE_UNDOCUMENTED,
                        f"exit code {entry.code} ({entry.class_name}) "
                        "is missing from this module's exit-code "
                        "documentation")

    # -- handlers and raises -------------------------------------------------

    def _check_handlers_and_raises(self, taxonomy: _Taxonomy) -> None:
        catch_names = {info.name for info in taxonomy.members.values()}
        by_name = {info.name: qualname
                   for qualname, info in sorted(taxonomy.members.items())}
        for module_qual in sorted(self.project.modules):
            module = self.project.modules[module_qual]
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ExceptHandler):
                    self._check_handler(module.path, module_qual, node,
                                        catch_names, by_name)
                elif isinstance(node, ast.Raise):
                    self._check_raise(module.path, node)

    def _check_handler(self, path: str, module_qual: str,
                       handler: ast.ExceptHandler,
                       catch_names: Set[str],
                       by_name: Dict[str, str]) -> None:
        caught = self._caught_taxonomy_name(module_qual, handler.type,
                                            catch_names, by_name)
        if caught is None:
            return
        if not _is_silent_body(handler.body):
            return
        self.report(
            path, handler, RULE_SWALLOWED,
            f"except {caught}: swallows a typed library error without "
            "re-raise or handling — the failure (and its exit code) "
            "disappears silently")

    def _caught_taxonomy_name(self, module_qual: str,
                              type_expr: Optional[ast.expr],
                              catch_names: Set[str],
                              by_name: Dict[str, str]) -> Optional[str]:
        if type_expr is None:
            return None
        if isinstance(type_expr, ast.Tuple):
            for element in type_expr.elts:
                name = self._caught_taxonomy_name(
                    module_qual, element, catch_names, by_name)
                if name is not None:
                    return name
            return None
        chain = dotted_chain(type_expr)
        if chain is None:
            return None
        if len(chain) == 1 and chain[0] == "Exception":
            return "Exception"
        qualname = self._class_ref(module_qual, type_expr, by_name)
        if qualname is not None and qualname in by_name.values():
            return qualname.rsplit(".", 1)[-1]
        if chain[-1] in catch_names:
            return chain[-1]
        return None

    def _check_raise(self, path: str, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) \
                and exc.id in ("Exception", "BaseException"):
            self.report(
                path, node, RULE_GENERIC,
                f"raise of bare {exc.id} bypasses the typed error "
                "taxonomy and the exit-code contract; raise a "
                f"{ROOT_NAME} subclass instead")


def _is_silent_body(stmts: List[ast.stmt]) -> bool:
    """True when a handler body neither re-raises nor handles."""
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return False
    for stmt in stmts:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Constant):
            continue
        if isinstance(stmt, ast.Return) and (
                stmt.value is None
                or (isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None)):
            continue
        return False
    return True


@register_project
class ContractPass(ProjectRule):
    """Deep pass wrapper exposing the contract checker to the registry."""

    name = RULE_UNMAPPED
    description = ("ReproError subclass with no deterministic exit-code "
                   "mapping in the EXIT_CODES registry")
    severity = "error"
    extra_rules: Dict[str, str] = {
        RULE_COLLISION: ("duplicate or unreachable (shadowed) entries "
                         "in the EXIT_CODES ladder"),
        RULE_SWALLOWED: ("except clause that silently swallows a typed "
                         "library error"),
        RULE_GENERIC: ("raise of bare Exception/BaseException instead "
                       "of a taxonomy class"),
        RULE_UNDOCUMENTED: ("registered exit code missing from the "
                            "documented exit-code table"),
    }

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(ContractChecker(project).run())
