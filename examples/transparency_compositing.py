#!/usr/bin/env python
"""Associativity of image composition — the property CHOPIN exploits.

Builds a stack of overlapping transparent layers, then composes them

- sequentially (the reference ordered reduction),
- as an adjacent-pair tree (CHOPIN's asynchronous schedule),
- with binary-swap and radix-k (the classic parallel compositors),

verifying all agree to floating-point tolerance; then demonstrates that
*reordering* the layers changes the image (blending is associative but not
commutative — the drop of pink water above the glass, §II-D).

Run:  python examples/transparency_compositing.py
"""

import numpy as np

from repro.composition import (SubImage, binary_swap, composite_transparent,
                               composite_transparent_tree, direct_send,
                               radix_k)
from repro.geometry import BlendOp


def make_layers(count: int, size: int = 64, seed: int = 0):
    """Overlapping translucent discs, one per simulated GPU."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size]
    layers = []
    for index in range(count):
        cx, cy = rng.uniform(size * 0.25, size * 0.75, 2)
        radius = rng.uniform(size * 0.15, size * 0.3)
        mask = (xs - cx) ** 2 + (ys - cy) ** 2 < radius ** 2
        alpha = rng.uniform(0.3, 0.6)
        tint = rng.uniform(0.2, 1.0, 3)
        color = np.zeros((size, size, 4), dtype=np.float32)
        color[mask, :3] = tint * alpha      # premultiplied
        color[mask, 3] = alpha
        layers.append(SubImage(color=color,
                               depth=np.full((size, size), 0.5, np.float32),
                               touched=mask))
    return layers


def max_diff(a: SubImage, b: SubImage) -> float:
    return float(np.abs(a.color - b.color).max())


def main() -> None:
    layers = make_layers(8)
    sequential = composite_transparent(layers, BlendOp.OVER)

    tree = composite_transparent_tree(layers, BlendOp.OVER)
    ds, ds_log = direct_send(layers, op=BlendOp.OVER)
    bs, bs_log = binary_swap(layers, op=BlendOp.OVER)
    rk, rk_log = radix_k(layers, k_vector=[2, 4], op=BlendOp.OVER)

    print("max deviation from the sequential ordered reduction:")
    print(f"  adjacent-pair tree (CHOPIN): {max_diff(sequential, tree):.2e}")
    print(f"  direct-send                : {max_diff(sequential, ds):.2e}"
          f"   ({len(ds_log)} messages)")
    print(f"  binary-swap                : {max_diff(sequential, bs):.2e}"
          f"   ({len(bs_log)} messages)")
    print(f"  radix-k [2,4]              : {max_diff(sequential, rk):.2e}"
          f"   ({len(rk_log)} messages)")

    reversed_order = composite_transparent(list(reversed(layers)),
                                           BlendOp.OVER)
    print(f"\nreversed layer order deviates by "
          f"{max_diff(sequential, reversed_order):.3f} "
          f"-> blending is NOT commutative (order must be preserved)")

    assert max_diff(sequential, tree) < 1e-4
    assert max_diff(sequential, bs) < 1e-4
    assert max_diff(sequential, rk) < 1e-4
    print("\nassociativity verified: any adjacent pairing is safe.")


if __name__ == "__main__":
    main()
