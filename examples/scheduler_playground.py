#!/usr/bin/env python
"""Scheduling ablations: CHOPIN's two schedulers under the microscope.

1. Draw-command scheduling: round-robin vs least-remaining-triangles, per
   benchmark, plus the per-GPU load balance each achieves on the largest
   composition group.
2. Image-composition scheduling: naive direct-send vs the composition
   scheduler across link bandwidths — congestion matters more when links
   are slow and GPU finish times are staggered.

Run:  python examples/scheduler_playground.py [bench]
"""

import sys

import numpy as np

from repro.core import split_into_groups
from repro.harness import make_setup, run
from repro.sfr import ChopinRoundRobin, ChopinWithScheduler
from repro.traces import load_benchmark


def load_balance_demo(bench: str) -> None:
    setup = make_setup("tiny", num_gpus=8)
    trace = load_benchmark(bench, "tiny")
    groups = split_into_groups(trace.frame)
    biggest = max(groups, key=lambda g: g.num_triangles)
    print(f"largest composition group: {biggest.num_draws} draws, "
          f"{biggest.num_triangles} triangles")

    for label, scheme in (
            ("round-robin    ", ChopinRoundRobin(setup.config, setup.costs)),
            ("least-remaining", ChopinWithScheduler(setup.config,
                                                    setup.costs))):
        assignment, _ = scheme._assign_group(biggest.draws)
        loads = [0] * 8
        for draw, gpu in zip(biggest.draws, assignment):
            loads[gpu] += draw.num_triangles
        imbalance = max(loads) / (sum(loads) / len(loads))
        print(f"  {label}: per-GPU triangles {loads}  "
              f"(max/mean = {imbalance:.2f})")


def composition_scheduler_demo(bench: str) -> None:
    trace = load_benchmark(bench, "tiny")
    print("\ncomposition scheduler effect vs link bandwidth "
          "(frame cycles, lower is better):")
    print(f"  {'GB/s':>6}  {'naive direct-send':>18}  "
          f"{'with scheduler':>15}  {'gain':>6}")
    for bandwidth in (4.0, 16.0, 64.0):
        setup = make_setup("tiny", num_gpus=8,
                           bandwidth_gb_per_s=bandwidth)
        naive = run("chopin", trace, setup).frame_cycles
        scheduled = run("chopin+sched", trace, setup).frame_cycles
        print(f"  {bandwidth:>6.0f}  {naive:>18,.0f}  {scheduled:>15,.0f}"
              f"  {naive / scheduled:>5.3f}x")


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "cod2"
    print(f"benchmark: {bench} (tiny scale, 8 GPUs)\n")
    load_balance_demo(bench)
    composition_scheduler_demo(bench)

    setup = make_setup("tiny", num_gpus=8)
    rr = run("chopin-rr", load_benchmark(bench, "tiny"), setup)
    lr = run("chopin+sched", load_benchmark(bench, "tiny"), setup)
    print(f"\nend-to-end: round-robin {rr.frame_cycles:,.0f} cycles vs "
          f"least-remaining {lr.frame_cycles:,.0f} cycles "
          f"({rr.frame_cycles / lr.frame_cycles:.3f}x slower)")


if __name__ == "__main__":
    main()
