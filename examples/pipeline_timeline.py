#!/usr/bin/env python
"""Visualize what each scheme's GPUs are doing, cycle by cycle.

Records the discrete-event execution of three SFR schemes on the same
benchmark and renders per-GPU ASCII occupancy charts. The structural
differences jump out:

- duplication: long geometry (G) runs on *every* GPU;
- GPUpd: projection (p) up front, then rendering gated by the sequential
  distribution (idle gaps);
- CHOPIN: short geometry, fragments dominate, composition (C) overlapping
  the next group's rendering.

Run:  python examples/pipeline_timeline.py [benchmark] [gpus]
"""

import sys

from repro.harness import build_scheme, make_setup
from repro.timing import record_timeline
from repro.traces import load_benchmark


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "wolf"
    num_gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    setup = make_setup("tiny", num_gpus=num_gpus)
    trace = load_benchmark(bench, "tiny")
    lanes = [f"gpu{i}" for i in range(num_gpus)]

    for scheme in ("duplication", "gpupd", "chopin+sched"):
        with record_timeline() as timeline:
            result = build_scheme(scheme, setup).run(trace)
        print(f"\n=== {scheme} on {bench} "
              f"({result.frame_cycles:,.0f} cycles) ===")
        print(timeline.render(width=100, lanes=lanes))


if __name__ == "__main__":
    main()
