#!/usr/bin/env python
"""A true 3D scene: world-space geometry, a perspective camera, multi-GPU.

Everything else in this repo uses NDC geometry (the synthetic traces'
convention); this example drives the full vertex path — world space through
``look_at`` + ``perspective`` to the screen, with near-plane clipping — and
renders a field of pyramids on the simulated 8-GPU system.

Run:  python examples/camera_scene_3d.py
"""

import math

import numpy as np

from repro.api import CommandRecorder
from repro.geometry import vec
from repro.harness import make_setup, run


def pyramid(base_center, size, color):
    """Five triangles: four sides and a square base (as two)."""
    x, y, z = base_center
    apex = [x, y + size * 1.5, z]
    c0, c1 = [x - size, y, z - size], [x + size, y, z - size]
    c2, c3 = [x + size, y, z + size], [x - size, y, z + size]
    faces = np.array([
        [c0, c1, apex], [c1, c2, apex], [c2, c3, apex], [c3, c0, apex],
        [c0, c2, c1], [c0, c3, c2],
    ], dtype=np.float32)
    colors = np.empty((6, 3, 4), dtype=np.float32)
    colors[..., :3] = color
    # shade side faces differently so the geometry reads in the image
    colors[1::2, :, :3] *= 0.6
    colors[..., 3] = 1.0
    return faces, colors


def main() -> None:
    rng = np.random.default_rng(11)
    rec = CommandRecorder(width=200, height=150)

    view = vec.look_at(eye=(0.0, 3.0, 8.0), target=(0.0, 0.5, 0.0))
    proj = vec.perspective(math.radians(60), 200 / 150, near=0.5, far=50.0)
    rec.set_camera(proj @ view)

    # ground plane (world space, large, cheap shader)
    ground = np.array([
        [[-20, 0, -20], [20, 0, -20], [20, 0, 20]],
        [[-20, 0, -20], [20, 0, 20], [-20, 0, 20]],
    ], dtype=np.float32)
    ground_color = np.tile(np.array([0.25, 0.4, 0.2, 1.0], np.float32),
                           (2, 3, 1))
    rec.draw_triangles(ground, ground_color, pixel_cost=2.0)

    # a grid of pyramids, nearest first (front-to-back for early-Z)
    spots = [(x, 0.0, z) for z in range(7, -8, -2)
             for x in range(-7, 8, 2)]
    spots.sort(key=lambda p: abs(p[2] - 8))  # distance from the camera
    for spot in spots:
        faces, colors = pyramid(spot, size=0.9,
                                color=rng.uniform(0.3, 0.95, 3))
        rec.draw_triangles(faces, colors, pixel_cost=40.0)

    trace = rec.finish("pyramids")
    print(f"{trace.num_draws} draws, {trace.num_triangles} world-space "
          f"triangles through a perspective camera")

    setup = make_setup("tiny", num_gpus=8)
    dup = run("duplication", trace, setup)
    chopin = run("chopin+sched", trace, setup)
    assert dup.image.same_image(chopin.image)
    print(f"duplication : {dup.frame_cycles:10,.0f} cycles")
    print(f"chopin+sched: {chopin.frame_cycles:10,.0f} cycles "
          f"({dup.frame_cycles / chopin.frame_cycles:.2f}x)")
    print("(small scenes under-amortize composition; see the Table III "
          "benchmarks for CHOPIN's operating point)")
    chopin.image.write_ppm("pyramids.ppm")
    print("frame written to pyramids.ppm")


if __name__ == "__main__":
    main()
