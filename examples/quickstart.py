#!/usr/bin/env python
"""Quickstart: render a game trace on a simulated 8-GPU system.

Loads one of the paper's benchmark traces (synthesized at reduced scale),
runs the primitive-duplication baseline and CHOPIN with its composition
scheduler, verifies both produce the identical image, and reports the
speedup. Saves the rendered frame as a PPM next to this script.

Run:  python examples/quickstart.py [benchmark] [num_gpus]
"""

import pathlib
import sys

import numpy as np

from repro import load_benchmark, make_setup, run


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "cod2"
    num_gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    setup = make_setup(scale="tiny", num_gpus=num_gpus)
    trace = load_benchmark(bench, "tiny")
    print(f"trace {trace.name}: {trace.resolution}, {trace.num_draws} draws,"
          f" {trace.num_triangles} triangles  ({num_gpus} GPUs)")

    baseline = run("duplication", trace, setup)
    chopin = run("chopin+sched", trace, setup)

    error = float(np.abs(baseline.image.color - chopin.image.color).max())
    print(f"duplication : {baseline.frame_cycles:12,.0f} cycles")
    print(f"chopin+sched: {chopin.frame_cycles:12,.0f} cycles")
    print(f"speedup     : {baseline.frame_cycles / chopin.frame_cycles:.3f}x")
    print(f"max image difference vs baseline: {error:.2e} (must be ~0)")

    out = pathlib.Path(__file__).with_name(f"{bench}_{num_gpus}gpu.ppm")
    chopin.image.write_ppm(str(out))
    print(f"frame written to {out}")


if __name__ == "__main__":
    main()
