#!/usr/bin/env python
"""One-shot reproduction: regenerate the paper's key results as a report.

For users who want the numbers without pytest: runs the headline figures
(2, 13, 15, 17, 19) on a configurable benchmark subset and writes a single
markdown-ish report with paper-vs-measured context.

Run:  python examples/full_reproduction.py [output.txt] [bench ...]
      (defaults: report to stdout, four benchmarks)
"""

import sys

from repro.harness import experiments as E
from repro.harness import report as R
from repro.traces import BENCHMARK_NAMES


def build_report(benchmarks) -> str:
    sections = [
        "CHOPIN reproduction report",
        "==========================",
        f"benchmarks: {', '.join(benchmarks)} (tiny scale, 8 GPUs; "
        "see EXPERIMENTS.md for the full suite)",
        "",
        R.render_fig2(E.fig2_geometry_share(benchmarks=benchmarks)),
        "paper: ~20% at 1 GPU rising to 60-80% at 8 GPUs",
        "",
        R.render_speedups(E.fig13_performance(benchmarks=benchmarks),
                          "Fig 13: speedup vs primitive duplication"),
        "paper gmean: CHOPIN+CompSched 1.25x, IdealCHOPIN 1.31x, "
        "GPUpd ~1.0x",
        "",
        R.render_fig15(E.fig15_depth_test(benchmarks=benchmarks)),
        "paper: +7.1% fragments on average, +18% worst case (ut3)",
        "",
        R.render_fig17(E.fig17_traffic(benchmarks=benchmarks)),
        "paper: 51.66 MB average, 131.92 MB for grid",
        "",
        R.render_sweep(E.fig19_gpu_scaling(benchmarks=benchmarks,
                                           gpu_counts=(2, 4, 8)),
                       "GPUs", "Fig 19: scaling with GPU count"),
        "paper: CHOPIN's advantage grows with GPU count; GPUpd's does not",
    ]
    return "\n".join(sections)


def main() -> None:
    args = sys.argv[1:]
    output = None
    if args and args[0].endswith(".txt"):
        output = args[0]
        args = args[1:]
    benchmarks = tuple(args) or BENCHMARK_NAMES[:4]
    report = build_report(benchmarks)
    if output:
        with open(output, "w") as handle:
            handle.write(report + "\n")
        print(f"report written to {output}")
    else:
        print(report)


if __name__ == "__main__":
    main()
