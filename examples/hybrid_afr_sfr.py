#!/usr/bin/env python
"""Hybrid AFR+SFR for massive multi-GPU systems (paper §VI-H future work).

The paper notes that rendering a single frame with very many GPUs under-
utilizes hardware (each GPU gets too few draws, and unnecessary fragments
grow), and suggests combining AFR across *groups* of GPUs with SFR inside
each group. This example sketches that design: for a 16-GPU system it
sweeps the split between AFR groups and SFR GPUs per group, reporting
throughput and frame latency for each point.

Run:  python examples/hybrid_afr_sfr.py
"""

import numpy as np

from repro.harness import make_setup, run
from repro.traces import TraceSpec, synthesize
from repro.traces.trace import Trace


def frames(count: int = 8):
    rng = np.random.default_rng(21)
    out = []
    for index in range(count):
        spec = TraceSpec(name=f"f{index}", width=96, height=96,
                         num_draws=40,
                         num_triangles=int(rng.uniform(1500, 3000)),
                         seed=900 + index, cost_multiplier=4.0)
        out.append(synthesize(spec))
    return out


def main() -> None:
    total_gpus = 16
    sequence = frames()

    print(f"{total_gpus}-GPU system, {len(sequence)} frames "
          "(CHOPIN SFR inside each AFR group)\n")
    print(f"  {'AFR groups':>10} x {'SFR GPUs':>8}  {'latency':>12}  "
          f"{'throughput':>12}")

    for sfr_gpus in (1, 2, 4, 8, 16):
        afr_groups = total_gpus // sfr_gpus
        setup = make_setup("tiny", num_gpus=sfr_gpus)
        # per-frame latency under SFR with sfr_gpus GPUs
        latencies = []
        for trace in sequence:
            scheme = "chopin+sched" if sfr_gpus > 1 else "duplication"
            latencies.append(run(scheme, trace, setup).frame_cycles)
        # AFR across groups: group g renders frames g, g+G, ...
        group_time = [0.0] * afr_groups
        for index, latency in enumerate(latencies):
            group_time[index % afr_groups] += latency
        total_time = max(group_time)
        throughput = len(sequence) / total_time * 1e6  # frames / Mcycle
        print(f"  {afr_groups:>10} x {sfr_gpus:>8}  "
              f"{np.mean(latencies):>12,.0f}  {throughput:>10.2f} f/Mcyc")

    print("\nsmall SFR groups maximize throughput (AFR parallelism), large "
          "groups minimize latency; the hybrid exposes the whole frontier.")


if __name__ == "__main__":
    main()
