#!/usr/bin/env python
"""Author a scene with the §IV-A command API and run it through CHOPIN.

Demonstrates the paper's software layer: record draw commands with state
changes and explicit CompGroupStart()/CompGroupEnd() markers, inspect the
driver's grouping, and render the scene on the simulated multi-GPU system.

Run:  python examples/custom_scene_api.py
"""

import numpy as np

from repro.api import CommandRecorder, driver_groups
from repro.geometry import BlendOp
from repro.harness import make_setup, run


def rock(rng, count, center, depth, spread=0.12, size=0.05):
    """One localized mesh: triangles clustered around ``center``."""
    centers = center + rng.uniform(-spread, spread, (count, 2))
    offsets = rng.normal(0.0, size, (count, 2, 2))
    positions = np.empty((count, 3, 3), dtype=np.float32)
    positions[:, 0, :2] = centers
    positions[:, 1, :2] = centers + offsets[:, 0]
    positions[:, 2, :2] = centers + offsets[:, 1]
    positions[..., 2] = depth + rng.normal(0, 0.005, (count, 1))
    colors = np.empty((count, 3, 4), dtype=np.float32)
    colors[..., :3] = rng.uniform(0.3, 0.8, 3)
    colors[..., 3] = 1.0
    return positions, colors


def main() -> None:
    rng = np.random.default_rng(5)
    rec = CommandRecorder(width=160, height=120)

    # Sky: cheap pixel shader. (Worth knowing: sort-last distributes whole
    # draws, so a single full-screen draw with an *expensive* shader lands
    # on one GPU and cannot be split — unlike region-split SFR. Games keep
    # full-screen passes cheap; so does this scene.)
    rec.draw_quad(-1, -1, 1, 1, 0.998, (0.25, 0.45, 0.75, 1.0),
                  pixel_cost=2.0)

    # a field of localized rocks, submitted front to back, as one explicit
    # composition group (each mesh occupies its own patch of screen)
    rec.comp_group_start()
    for depth in np.linspace(0.2, 0.9, 36):
        center = rng.uniform(-0.8, 0.8, 2)
        rec.draw_triangles(*rock(rng, 24, center, float(depth)))
    rec.comp_group_end()

    # glass pane, blended over the scene
    rec.set_blend(BlendOp.OVER)
    pane = np.array([[[-0.5, -0.5, 0.15], [0.5, -0.5, 0.15],
                      [0.5, 0.5, 0.15]],
                     [[-0.5, -0.5, 0.15], [0.5, 0.5, 0.15],
                      [-0.5, 0.5, 0.15]]], dtype=np.float32)
    glass = np.tile(np.array([0.1, 0.25, 0.1, 0.45], np.float32), (2, 3, 1))
    rec.draw_triangles(pane, glass)

    trace = rec.finish("custom-scene")
    print(f"recorded {trace.num_draws} draws, "
          f"{trace.num_triangles} triangles")
    for group in driver_groups(trace):
        print(f"  driver group {group.index}: {group.num_draws} draws, "
              f"{group.num_triangles} tris, "
              f"{'transparent' if group.transparent else 'opaque'}")

    setup = make_setup("tiny", num_gpus=4)
    dup = run("duplication", trace, setup)
    chopin = run("chopin+sched", trace, setup)
    assert dup.image.same_image(chopin.image)
    print(f"\nduplication : {dup.frame_cycles:10,.0f} cycles")
    print(f"chopin+sched: {chopin.frame_cycles:10,.0f} cycles "
          f"({dup.frame_cycles / chopin.frame_cycles:.2f}x)")
    print("(a scene this small doesn't amortize composition — cf. Fig 19's "
          "2-4 GPU points; the Table III-sized benchmarks do)")
    chopin.image.write_ppm("custom_scene.ppm")
    print("frame written to custom_scene.ppm")


if __name__ == "__main__":
    main()
