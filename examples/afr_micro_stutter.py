#!/usr/bin/env python
"""AFR micro-stutter vs SFR frame-latency scaling (paper §I motivation).

Renders an animated sequence whose per-frame cost varies (as real gameplay
does), under Alternate Frame Rendering on 4 GPUs, and contrasts:

- throughput: AFR scales nearly linearly,
- latency: each AFR frame still takes a full single-GPU render,
- pacing: display intervals jitter (micro-stutter), quantified as the
  coefficient of variation of display intervals,

against CHOPIN-style SFR, which improves the latency of every single frame.

Run:  python examples/afr_micro_stutter.py
"""

import numpy as np

from repro.config import SystemConfig
from repro.harness import make_setup, run
from repro.sfr import AlternateFrameRendering
from repro.traces import TraceSpec, synthesize
from repro.traces.trace import Trace


def animated_trace(frames: int = 12) -> Trace:
    """Frames alternate between light and heavy scenes."""
    rng = np.random.default_rng(9)
    parts = []
    for index in range(frames):
        triangles = int(rng.choice([400, 900, 2200]))
        spec = TraceSpec(name=f"frame{index}", width=96, height=96,
                         num_draws=20, num_triangles=triangles,
                         seed=500 + index, cost_multiplier=4.0)
        parts.append(synthesize(spec).frame)
    return Trace(name="gameplay", width=96, height=96, frames=parts)


def main() -> None:
    trace = animated_trace()
    afr = AlternateFrameRendering(SystemConfig(num_gpus=4)).run(trace)

    intervals = afr.display_intervals
    print("AFR on 4 GPUs:")
    print(f"  throughput speedup : {afr.throughput_speedup:.2f}x")
    print(f"  mean frame latency : {np.mean(afr.frame_cycles):,.0f} cycles "
          "(unchanged vs 1 GPU)")
    print(f"  display intervals  : min {intervals.min():,.0f}  "
          f"max {intervals.max():,.0f} cycles")
    print(f"  micro-stutter (CV) : {afr.micro_stutter:.3f}")

    # SFR on the same hardware: per-frame latency actually drops.
    single_frame = Trace(name="one", width=96, height=96,
                         frames=[trace.frames[2]])
    setup1 = make_setup("tiny", num_gpus=1)
    setup4 = make_setup("tiny", num_gpus=4)
    lat1 = run("chopin+sched", single_frame, setup1).frame_cycles
    lat4 = run("chopin+sched", single_frame, setup4).frame_cycles
    print("\nCHOPIN SFR on the same frame:")
    print(f"  1 GPU latency : {lat1:,.0f} cycles")
    print(f"  4 GPU latency : {lat4:,.0f} cycles "
          f"({lat1 / lat4:.2f}x faster single-frame latency)")
    print("\nAFR raises average FPS but not responsiveness; SFR improves "
          "both — which is why the paper (and CHOPIN) target SFR.")


if __name__ == "__main__":
    main()
