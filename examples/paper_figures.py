#!/usr/bin/env python
"""Regenerate the paper's headline evaluation figures from the library API.

Prints Fig 2 (why duplication doesn't scale), Fig 13 (the main result), and
Fig 17 (composition traffic) for a configurable benchmark subset. The full
per-figure harness lives in benchmarks/ (pytest-benchmark targets); this
example shows how to drive the same experiment functions directly.

Run:  python examples/paper_figures.py [bench ...]
"""

import sys

from repro.harness import experiments as E
from repro.harness import report as R
from repro.traces import BENCHMARK_NAMES


def main() -> None:
    benchmarks = tuple(sys.argv[1:]) or BENCHMARK_NAMES[:4]
    print(f"benchmarks: {', '.join(benchmarks)}  (tiny scale)\n")

    shares = E.fig2_geometry_share(benchmarks=benchmarks)
    print(R.render_fig2(shares))
    print()

    table = E.fig13_performance(benchmarks=benchmarks)
    print(R.render_speedups(
        table, "Fig 13: 8-GPU speedup vs primitive duplication"))
    print()

    traffic = E.fig17_traffic(benchmarks=benchmarks)
    print(R.render_fig17(traffic))

    means = table["GMean"]
    print(f"\nCHOPIN+CompSched gmean speedup: {means['chopin+sched']:.3f}x "
          f"(paper: 1.25x); IdealCHOPIN: {means['chopin-ideal']:.3f}x "
          f"(paper: 1.31x)")


if __name__ == "__main__":
    main()
