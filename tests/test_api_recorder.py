"""The command-recording API (§IV-A software extension)."""

import numpy as np
import pytest

from repro.api import CommandRecorder, driver_groups
from repro.errors import PipelineError, TraceError
from repro.geometry import BlendOp, DepthFunc
from repro.harness import make_setup, run


def triangles(count, depth=0.5, seed=0):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-0.9, 0.9, (count, 3, 3)).astype(np.float32)
    positions[..., 2] = depth
    colors = rng.random((count, 3, 4), dtype=np.float32)
    colors[..., 3] = 1.0
    return positions, colors


class TestRecording:
    def test_simple_scene(self):
        rec = CommandRecorder(64, 64)
        rec.draw_quad(-1, -1, 1, 1, 0.99, (0.1, 0.1, 0.2, 1.0))
        rec.draw_triangles(*triangles(20, depth=0.4))
        trace = rec.finish("scene")
        assert trace.num_draws == 2
        assert trace.num_triangles == 22

    def test_draw_ids_sequential(self):
        rec = CommandRecorder(64, 64)
        ids = [rec.draw_quad(-1, -1, 0, 0, 0.5, (1, 1, 1, 1))
               for _ in range(3)]
        assert ids == [0, 1, 2]

    def test_state_carried_into_draws(self):
        rec = CommandRecorder(64, 64)
        rec.set_render_target(2)
        rec.set_depth_func(DepthFunc.LEQUAL)
        rec.draw_triangles(*triangles(4))
        trace = rec.finish("t")
        state = trace.frame.draws[0].state
        assert state.render_target == 2
        assert state.depth_buffer == 2
        assert state.depth_func is DepthFunc.LEQUAL

    def test_set_blend_disables_depth_write(self):
        rec = CommandRecorder(64, 64)
        rec.set_blend(BlendOp.OVER)
        rec.draw_triangles(*triangles(4))
        trace = rec.finish("t")
        assert not trace.frame.draws[0].state.depth_write
        assert trace.frame.draws[0].transparent

    def test_multi_frame(self):
        rec = CommandRecorder(64, 64)
        rec.draw_quad(-1, -1, 1, 1, 0.5, (1, 0, 0, 1))
        rec.end_frame()
        rec.draw_quad(-1, -1, 1, 1, 0.5, (0, 1, 0, 1))
        trace = rec.finish("anim")
        assert len(trace.frames) == 2

    def test_empty_frame_rejected(self):
        rec = CommandRecorder(64, 64)
        with pytest.raises(TraceError):
            rec.end_frame()

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            CommandRecorder(64, 64).finish("empty")


class TestGroupMarkers:
    def test_well_placed_markers_accepted(self):
        rec = CommandRecorder(64, 64)
        rec.comp_group_start()
        rec.draw_triangles(*triangles(10))
        rec.draw_triangles(*triangles(10, seed=1))
        rec.comp_group_end()
        rec.set_render_target(1)
        rec.comp_group_start()
        rec.draw_triangles(*triangles(10, seed=2))
        rec.comp_group_end()
        trace = rec.finish("ok")
        assert len(driver_groups(trace)) == 2

    def test_marker_spanning_rt_switch_rejected(self):
        rec = CommandRecorder(64, 64)
        rec.comp_group_start()
        rec.draw_triangles(*triangles(10))
        rec.set_render_target(1)
        rec.draw_triangles(*triangles(10, seed=1))
        with pytest.raises(PipelineError):
            rec.validate_markers()

    def test_marker_spanning_blend_change_rejected(self):
        rec = CommandRecorder(64, 64)
        rec.comp_group_start()
        rec.draw_triangles(*triangles(10))
        rec.set_blend(BlendOp.OVER)
        rec.draw_triangles(*triangles(10, seed=1))
        rec.comp_group_end()
        with pytest.raises(PipelineError):
            rec.finish("bad")

    def test_nested_group_rejected(self):
        rec = CommandRecorder(64, 64)
        rec.comp_group_start()
        with pytest.raises(TraceError):
            rec.comp_group_start()

    def test_unopened_end_rejected(self):
        rec = CommandRecorder(64, 64)
        with pytest.raises(TraceError):
            rec.comp_group_end()

    def test_open_group_at_frame_end_rejected(self):
        rec = CommandRecorder(64, 64)
        rec.comp_group_start()
        rec.draw_triangles(*triangles(4))
        with pytest.raises(TraceError):
            rec.end_frame()


class TestEndToEnd:
    def test_recorded_scene_runs_through_schemes(self):
        rec = CommandRecorder(128, 128)
        rec.draw_quad(-1, -1, 1, 1, 0.99, (0.1, 0.1, 0.2, 1.0))
        for layer, depth in enumerate((0.2, 0.4, 0.6)):
            rec.draw_triangles(*triangles(120, depth=depth, seed=layer))
        rec.set_blend(BlendOp.OVER)
        positions, colors = triangles(40, depth=0.3, seed=9)
        colors[..., :3] *= 0.4
        colors[..., 3] = 0.4
        rec.draw_triangles(positions, colors)
        trace = rec.finish("recorded")

        setup = make_setup("tiny", num_gpus=4)
        dup = run("duplication", trace, setup)
        chopin = run("chopin+sched", trace, setup)
        assert np.abs(dup.image.color - chopin.image.color).max() < 3e-3
