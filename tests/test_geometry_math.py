"""Vector/matrix toolkit and vertex transformation."""

import math

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.geometry import vec
from repro.geometry.transform import (perspective_divide, to_screen,
                                      transform_positions,
                                      triangle_screen_bounds)


class TestVec:
    def test_normalize_unit_length(self):
        v = vec.normalize(vec.vec3(3, 4, 0))
        assert np.allclose(np.linalg.norm(v), 1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            vec.normalize(vec.vec3(0, 0, 0))

    def test_translate_moves_point(self):
        m = vec.translate((1, 2, 3))
        p = m @ vec.vec4(0, 0, 0, 1)
        assert np.allclose(p[:3], [1, 2, 3])

    def test_scale(self):
        m = vec.scale((2, 3, 4))
        p = m @ vec.vec4(1, 1, 1, 1)
        assert np.allclose(p[:3], [2, 3, 4])

    def test_rotate_z_quarter_turn(self):
        m = vec.rotate_z(math.pi / 2)
        p = m @ vec.vec4(1, 0, 0, 1)
        assert np.allclose(p[:3], [0, 1, 0], atol=1e-6)

    def test_rotations_preserve_length(self):
        for rot in (vec.rotate_x, vec.rotate_y, vec.rotate_z):
            m = rot(0.7)
            p = m @ vec.vec4(1, 2, 3, 1)
            assert np.allclose(np.linalg.norm(p[:3]),
                               np.linalg.norm([1, 2, 3]), atol=1e-5)

    def test_look_at_centers_target(self):
        view = vec.look_at(eye=(0, 0, 5), target=(0, 0, 0))
        p = view @ vec.vec4(0, 0, 0, 1)
        # target lies straight ahead on -Z at distance 5
        assert np.allclose(p[:3], [0, 0, -5], atol=1e-5)

    def test_perspective_maps_near_to_zero_far_to_one(self):
        proj = vec.perspective(math.pi / 2, 1.0, near=1.0, far=100.0)
        near_clip = proj @ vec.vec4(0, 0, -1.0, 1)
        far_clip = proj @ vec.vec4(0, 0, -100.0, 1)
        assert near_clip[2] / near_clip[3] == pytest.approx(0.0, abs=1e-5)
        assert far_clip[2] / far_clip[3] == pytest.approx(1.0, abs=1e-5)

    def test_perspective_rejects_bad_planes(self):
        with pytest.raises(ValueError):
            vec.perspective(1.0, 1.0, near=5.0, far=2.0)

    def test_orthographic_unit_box(self):
        m = vec.orthographic(-1, 1, -1, 1, 0, -1)
        p = m @ vec.vec4(0.5, -0.5, -0.5, 1)
        assert np.allclose(p[:2], [0.5, -0.5], atol=1e-6)


class TestTransform:
    def test_identity_transform_appends_w(self):
        positions = np.zeros((2, 3, 3), dtype=np.float32)
        clip = transform_positions(positions, np.eye(4))
        assert clip.shape == (2, 3, 4)
        assert np.allclose(clip[..., 3], 1.0)

    def test_bad_matrix_shape_rejected(self):
        with pytest.raises(PipelineError):
            transform_positions(np.zeros((1, 3, 3)), np.eye(3))

    def test_perspective_divide_clamps_tiny_w(self):
        clip = np.array([[[0, 0, 0, 0.0], [0, 0, 0, 1.0],
                          [0, 0, 0, 1.0]]], dtype=np.float32)
        ndc = perspective_divide(clip)
        assert np.isfinite(ndc).all()

    def test_to_screen_corners(self):
        ndc = np.array([[[-1, 1, 0.5], [1, -1, 0.5], [0, 0, 0.5]]],
                       dtype=np.float32)
        xy, depth = to_screen(ndc, 100, 50)
        assert np.allclose(xy[0, 0], [0, 0])        # top-left
        assert np.allclose(xy[0, 1], [100, 50])     # bottom-right
        assert np.allclose(xy[0, 2], [50, 25])      # centre
        assert np.allclose(depth, 0.5)

    def test_to_screen_rejects_empty_viewport(self):
        with pytest.raises(PipelineError):
            to_screen(np.zeros((1, 3, 3), dtype=np.float32), 0, 10)

    def test_triangle_screen_bounds(self):
        xy = np.array([[[1, 2], [5, 9], [3, 4]]], dtype=np.float32)
        bounds = triangle_screen_bounds(xy)
        assert np.allclose(bounds[0], [1, 2, 5, 9])
